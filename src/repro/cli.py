"""Command-line interface: run demos and regenerate the paper's figures.

Installed as ``scotch-repro`` (or run via ``python -m repro.cli``)::

    scotch-repro list                 # what can be run
    scotch-repro profiles             # the calibrated switch models
    scotch-repro demo                 # quickstart: flood with/without Scotch
    scotch-repro fig 3                # regenerate a figure's table
    scotch-repro fig 13 --quick       # smaller/faster variant
    scotch-repro ablation             # Scotch vs the §4 baselines
    scotch-repro tcam                 # the §3.3 TCAM-bottleneck scenario
    scotch-repro chaos --seed 3       # fault injection + recovery report
    scotch-repro report -o REPORT.md  # every figure + ablation, one file

Every run command also takes the observability flags (docs/observability.md)::

    scotch-repro fig 3 --quick --trace fig3.trace.jsonl --metrics fig3.metrics.jsonl
    scotch-repro inspect fig3.trace.jsonl   # per-stage p50/p99 summary
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.testbed.report import format_table

FIGURES = {
    "3": "client flow failure vs attack rate (3 switch models)",
    "4": "control-path profiling: Packet-In is the bottleneck",
    "9": "maximum flow-rule insertion rate",
    "10": "data-path loss vs rule insertion rate",
    "11": "ingress-port differentiation (reconstructed)",
    "12": "large-flow migration (reconstructed)",
    "13": "overlay capacity vs mesh size (reconstructed)",
    "14": "overlay relay delay (reconstructed)",
    "15": "trace-driven application performance (reconstructed)",
}


def _print(text: str) -> None:
    print(text)
    print()


# ----------------------------------------------------------------------
# Figure text producers (shared by `fig` and `report`)
# ----------------------------------------------------------------------
def figure_text(number: str, quick: bool) -> str:
    from repro.testbed import experiments as ex

    if number == "3":
        duration = 4.0 if quick else 10.0
        series = ex.fig3_series(duration=duration)
        rows = []
        for index, rate in enumerate(ex.FIG3_ATTACK_RATES):
            rows.append([rate] + [series[p.name][index][1] for p in ex.FIG3_PROFILES])
        return format_table(
            ["attack f/s"] + [p.name for p in ex.FIG3_PROFILES], rows,
            title="Fig. 3 — client flow failure fraction")
    if number == "4":
        duration = 4.0 if quick else 10.0
        points = [ex.fig4_point(r, duration=duration) for r in (50, 100, 200, 500, 800)]
        return format_table(
            ["new flows/s", "Packet-In/s", "inserts/s", "successful/s"],
            [[p.new_flow_rate, p.packet_in_rate, p.rule_insertion_rate,
              p.successful_flow_rate] for p in points],
            title="Fig. 4 — control path profiling (Pica8)")
    if number == "9":
        duration = 3.0 if quick else 6.0
        rates = (100, 200, 400, 800, 1500, 3000)
        return format_table(
            ["attempted/s", "successful/s"],
            [[r, ex.fig9_point(r, duration=duration)] for r in rates],
            title="Fig. 9 — flow rule insertion rate (Pica8)")
    if number == "10":
        duration = 2.0 if quick else 5.0
        rows = []
        for ir in (600, 1000, 1250, 1400, 2000):
            rows.append([ir] + [ex.fig10_point(ir, dr, duration=duration)
                                for dr in (500, 1000, 2000)])
        return format_table(
            ["insert/s", "loss@500pps", "loss@1000pps", "loss@2000pps"], rows,
            title="Fig. 10 — data path vs control path (Pica8)")
    if number == "11":
        duration = 6.0 if quick else 10.0
        results = [ex.fig11_run(s, duration=duration) for s in ("vanilla", "scotch")]
        return format_table(
            ["scheme", "clean-port failure", "attacked-port failure"],
            [[r.scheme, r.clean_port_failure, r.attacked_port_failure] for r in results],
            title="Fig. 11 — ingress-port differentiation")
    if number == "12":
        result = ex.fig12_run(elephant_packets=2000 if quick else 6000)
        return format_table(
            ["migrated", "time (s)", "delivered", "rules cleaned"],
            [[result.migrated, result.migration_time,
              f"{result.delivered_packets}/{result.total_packets}",
              result.overlay_rules_cleaned]],
            title="Fig. 12 — large-flow migration")
    if number == "13":
        sizes = (1, 2) if quick else (1, 2, 3, 4)
        offered = 9000.0 if quick else 20000.0
        duration = 3.0 if quick else 5.0
        rows = [[n, ex.fig13_point(n, offered_rate=offered, duration=duration)]
                for n in sizes]
        return format_table(
            ["vSwitches", "successful flows/s"], rows,
            title=f"Fig. 13 — overlay capacity (offered {offered:.0f} f/s)")
    if number == "14":
        result = ex.fig14_run(flows=60 if quick else 100)
        summary = result.summary()
        return format_table(
            ["path", "mean (ms)", "p99 (ms)"],
            [["direct", summary["direct_mean"] * 1e3, summary["direct_p99"] * 1e3],
             ["overlay", summary["overlay_mean"] * 1e3, summary["overlay_p99"] * 1e3]],
            title=f"Fig. 14 — relay delay (stretch {summary['stretch_mean']:.2f}x)")
    if number == "15":
        duration = 10.0 if quick else 20.0
        results = [ex.fig15_run(s, duration=duration) for s in ("vanilla", "scotch")]
        return format_table(
            ["scheme", "flows", "failure", "mean FCT (s)", "p99 FCT (s)"],
            [[r.scheme, r.flows_measured, r.failure_fraction, r.mean_fct, r.p99_fct]
             for r in results],
            title="Fig. 15 — trace-driven run")
    raise KeyError(number)


def ablation_text(quick: bool) -> str:
    from repro.testbed import experiments as ex

    duration = 5.0 if quick else 10.0
    rows = []
    for scheme in ("vanilla", "proactive", "drop", "dedicated", "scotch"):
        result = ex.ablation_run(scheme, duration=duration)
        rows.append([result.scheme, result.client_failure,
                     result.total_success_rate, result.flows_visible])
    return format_table(
        ["scheme", "client failure", "delivered flows/s", "controller visibility"],
        rows,
        title="Ablation — Scotch vs baselines (flood 2000 f/s)")


def tcam_text(quick: bool) -> str:
    from repro.testbed.experiments import tcam_run

    rows = []
    for name, with_scotch in (("vanilla", False), ("scotch", True)):
        dep, failure = tcam_run(with_scotch, until=15.0 if quick else 25.0)
        overlay = dep.scotch.flow_db.counts().get("overlay", 0) if dep.scotch else 0
        rows.append([name, failure, dep.edge.ofa.table_full_failures, overlay])
    return format_table(
        ["scheme", "flow failure", "TABLE_FULL errors", "flows via overlay"],
        rows,
        title="TCAM bottleneck (200-entry table, 100 f/s of 10-pkt flows)")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_list(_args) -> int:
    rows = [[f"fig {num}", desc] for num, desc in FIGURES.items()]
    rows.append(["ablation", "Scotch vs vanilla / proactive / drop / dedicated-port"])
    rows.append(["tcam", "the §3.3 TCAM-bottleneck scenario"])
    rows.append(["report", "run everything, write one markdown report"])
    rows.append(["demo", "quickstart flood demo"])
    rows.append(["chaos", "fault-injection run with recovery report (docs/robustness.md)"])
    rows.append(["health", "chaos-verified alert detection scorecard (docs/observability.md)"])
    rows.append(["telemetry", "sampled-telemetry accuracy/overhead scorecard"])
    rows.append(["scale", "500+-vSwitch overlay flash crowd (engine throughput)"])
    rows.append(["pool", "elastic controller pool: chaos gauntlet or autoscale "
                         "demo (docs/cluster.md)"])
    rows.append(["profiles", "calibrated switch models"])
    _print(format_table(["target", "description"], rows, title="Available runs"))
    return 0


def cmd_profiles(_args) -> int:
    from repro.switch.profiles import HP_PROCURVE_6600, OPEN_VSWITCH, PICA8_PRONTO_3780

    rows = []
    for profile in (PICA8_PRONTO_3780, HP_PROCURVE_6600, OPEN_VSWITCH):
        rows.append([
            profile.name,
            profile.packet_in_rate,
            profile.install_lossless_rate,
            profile.install_saturated_rate,
            profile.degradation_knee,
            profile.tcam_capacity,
        ])
    _print(format_table(
        ["switch", "Packet-In/s", "lossless ins/s", "saturated ins/s",
         "degrade knee", "TCAM"],
        rows,
        title="Calibrated device models (provenance: DESIGN.md §7)",
    ))
    return 0


def cmd_demo(args) -> int:
    from repro.controller.reactive_app import ReactiveForwardingApp
    from repro.metrics import client_flow_failure_fraction
    from repro.testbed.deployment import build_deployment
    from repro.traffic import NewFlowSource, SpoofedFlood

    results = []
    for with_scotch in (False, True):
        dep = build_deployment(seed=args.seed, add_scotch_app=with_scotch)
        if not with_scotch:
            dep.controller.add_app(ReactiveForwardingApp())
        server_ip = dep.servers[0].ip
        NewFlowSource(dep.sim, dep.client, server_ip, rate_fps=100.0).start(
            at=0.5, stop_at=12.0)
        SpoofedFlood(dep.sim, dep.attacker, server_ip, rate_fps=args.attack_rate).start(
            at=2.0, stop_at=12.0)
        dep.sim.run(until=14.0)
        failure = client_flow_failure_fraction(
            dep.client.sent_tap, dep.servers[0].recv_tap, start=4.0, end=11.0)
        results.append(["scotch" if with_scotch else "vanilla", failure])
    _print(format_table(
        ["scheme", "client failure"],
        results,
        title=f"Flood demo ({args.attack_rate:.0f} spoofed flows/s, client 100 f/s)",
    ))
    return 0


def cmd_fig(args) -> int:
    try:
        _print(figure_text(args.number, args.quick))
    except KeyError:
        print(f"unknown figure {args.number!r}; try: {', '.join(sorted(FIGURES))}",
              file=sys.stderr)
        return 2
    return 0


def cmd_ablation(args) -> int:
    _print(ablation_text(args.quick))
    return 0


def cmd_tcam(args) -> int:
    _print(tcam_text(args.quick))
    return 0


def _load_rules(path: Optional[str]):
    """Parse an alert-rule file (docs/observability.md#alert-rules);
    None means the built-in rule set."""
    if not path:
        return None
    from repro.obs.rules import parse_rules

    with open(path) as handle:
        return parse_rules(handle.read())


def _write_health_outputs(args, report) -> None:
    """Shared by `chaos` and `health`: the optional alert-timeline JSONL
    and HTML report files."""
    from repro.obs.schema import write_schema_header

    if getattr(args, "alert_log", None):
        with open(args.alert_log, "w") as handle:
            write_schema_header(handle, "alert_timeline")
            text = report.alert_timeline_jsonl
            if text:
                handle.write(text + "\n")
        print(f"alert timeline: {len(report.alert_timeline)} transitions "
              f"-> {args.alert_log}")
    if getattr(args, "health_report", None):
        from repro.obs.scorecard import render_html_report

        render_html_report(
            args.health_report, report.sli_series, report.alert_timeline,
            run_end=report.duration, truth=report.truth,
            scorecard=report.scorecard,
            title=f"Scotch health — seed {report.seed}")
        print(f"health report -> {args.health_report}")
    if getattr(args, "scorecard_json", None) and report.scorecard is not None:
        from repro.obs.scorecard import scorecard_json

        with open(args.scorecard_json, "w") as handle:
            handle.write(scorecard_json(report.scorecard) + "\n")
        print(f"scorecard -> {args.scorecard_json}")
    if getattr(args, "postmortem_dir", None) and report.postmortem_enabled:
        from repro.obs.postmortem import export_bundles

        paths = export_bundles(report.postmortems, args.postmortem_dir)
        dropped = (f" ({report.postmortems_dropped} past the cap dropped)"
                   if report.postmortems_dropped else "")
        print(f"postmortems: {len(paths)} bundles -> "
              f"{args.postmortem_dir}{dropped}")


def cmd_chaos(args) -> int:
    """Run the chaos scenario (docs/robustness.md) and print the
    fault/recovery report (with the health engine's detection scorecard
    unless --no-health)."""
    from repro.faults import default_plan, format_report, run_chaos

    if args.duration < 16.0:
        print("chaos needs --duration >= 16 (the default fault timeline "
              "ends at 12.5s and the report wants a clean recovery window)",
              file=sys.stderr)
        return 2
    if args.no_health and (args.alert_log or args.health_report
                           or args.scorecard_json or args.rules):
        print("--alert-log/--health-report/--scorecard-json/--rules need "
              "the health engine (drop --no-health)", file=sys.stderr)
        return 2
    try:
        rules = _load_rules(args.rules)
    except (OSError, ValueError) as exc:
        print(f"cannot load alert rules: {exc}", file=sys.stderr)
        return 2
    report = run_chaos(
        seed=args.seed,
        duration=args.duration,
        client_rate=args.client_rate,
        attack_rate=args.attack_rate,
        plan=default_plan(args.duration),
        health=not args.no_health,
        rules=rules,
        postmortem=bool(args.postmortem_dir),
    )
    _print(format_report(report))
    if args.fault_log:
        from repro.obs.schema import write_schema_header

        with open(args.fault_log, "w") as handle:
            write_schema_header(handle, "fault_log")
            if report.fault_log_jsonl:
                handle.write(report.fault_log_jsonl + "\n")
        print(f"fault log: {len(report.fault_log)} actions -> {args.fault_log}")
    _write_health_outputs(args, report)
    return 0 if report.healthy else 1


def cmd_pool(args) -> int:
    """Run the elastic controller pool (docs/cluster.md): the chaos
    gauntlet (member crash + election loss + split-brain) or, with
    --autoscale, the flash-crowd scale-up/down demo.  Exit 0 iff the
    run is healthy (no invariant violations, no double installs, every
    switch mastered)."""
    from repro.cluster import (
        format_pool_report,
        peak_live_members,
        run_pool_autoscale,
        run_pool_chaos,
    )

    if args.autoscale:
        report = run_pool_autoscale(seed=args.seed, switches=args.switches)
        _print(format_pool_report(report))
        print(f"autoscale: peak {peak_live_members(report)} members, "
              f"final {report.members_live}")
    else:
        if args.duration < 22.0:
            print("pool chaos needs --duration >= 22 (the default fault "
                  "timeline ends at 18s and the report wants a clean "
                  "recovery window)", file=sys.stderr)
            return 2
        report = run_pool_chaos(
            seed=args.seed,
            duration=args.duration,
            controllers=args.controllers,
            switches=args.switches,
            rate_fps=args.rate,
            health=args.health,
        )
        _print(format_pool_report(report))
    if args.events:
        from repro.obs.schema import write_schema_header

        with open(args.events, "w") as handle:
            write_schema_header(handle, "pool_events")
            if report.pool_events_jsonl:
                handle.write(report.pool_events_jsonl + "\n")
        print(f"pool events: {len(report.pool_events)} -> {args.events}")
    if args.fault_log:
        from repro.obs.schema import write_schema_header

        with open(args.fault_log, "w") as handle:
            write_schema_header(handle, "fault_log")
            if report.fault_log_jsonl:
                handle.write(report.fault_log_jsonl + "\n")
        print(f"fault log: {len(report.fault_log_jsonl.splitlines())} actions "
              f"-> {args.fault_log}")
    if args.scorecard_json:
        if report.scorecard is None:
            print("--scorecard-json needs --health", file=sys.stderr)
            return 2
        from repro.obs.scorecard import scorecard_json

        with open(args.scorecard_json, "w") as handle:
            handle.write(scorecard_json(report.scorecard) + "\n")
        print(f"scorecard -> {args.scorecard_json}")
    return 0 if report.healthy else 1


def cmd_health(args) -> int:
    """Chaos-verified detection: run the chaos scenario with the health
    engine streaming SLIs/alerts, print the ASCII health report and the
    scorecard joining alerts against injected ground truth.  Exit 0 iff
    every fault class was detected with no false positives (with
    --no-faults: iff there were no false positives at all)."""
    from repro.faults import FaultPlan, default_plan, run_chaos
    from repro.obs.scorecard import format_health_report, format_scorecard

    if args.duration < 16.0:
        print("health needs --duration >= 16 (it runs the chaos scenario; "
              "the default fault timeline ends at 12.5s)", file=sys.stderr)
        return 2
    try:
        rules = _load_rules(args.rules)
    except (OSError, ValueError) as exc:
        print(f"cannot load alert rules: {exc}", file=sys.stderr)
        return 2
    plan = FaultPlan() if args.no_faults else default_plan(args.duration)
    report = run_chaos(
        seed=args.seed,
        duration=args.duration,
        client_rate=args.client_rate,
        attack_rate=args.attack_rate,
        plan=plan,
        health=True,
        rules=rules,
        detection_tolerance=args.tolerance,
        postmortem=bool(args.postmortem_dir),
    )
    _print(format_health_report(report.sli_series, report.alert_timeline,
                                run_end=report.duration, truth=report.truth))
    _print(format_scorecard(report.scorecard))
    _write_health_outputs(args, report)
    card = report.scorecard
    ok = card.clean if args.no_faults else (card.all_detected and card.clean)
    print(f"detection: recall {card.recall:.2f}  precision {card.precision:.2f}  "
          f"false positives {len(card.false_positives)}  "
          f"-> {'OK' if ok else 'MISSED' if not card.all_detected else 'NOISY'}")
    return 0 if ok else 1


def cmd_telemetry(args) -> int:
    """Run the sampled-telemetry accuracy/overhead scorecard: one flood
    + elephant scenario per stats mode (poll baseline, then sampling at
    each --periods rate), scored on elephant-detection recall/precision
    and monitoring cost (docs/observability.md#sampled-telemetry)."""
    from repro.telemetry.scorecard import (
        format_telemetry_scorecard,
        render_telemetry_html,
        run_telemetry_scorecard,
        telemetry_scorecard_json,
    )

    try:
        periods = tuple(int(p) for p in args.periods.split(",") if p)
    except ValueError:
        print(f"--periods wants comma-separated integers, got {args.periods!r}",
              file=sys.stderr)
        return 2
    if not periods or any(p < 1 for p in periods):
        print("--periods needs at least one period >= 1", file=sys.stderr)
        return 2
    card = run_telemetry_scorecard(
        seed=args.seed,
        duration=args.duration,
        attack_rate=args.attack_rate,
        elephants=args.elephants,
        mice=args.mice,
        periods=periods,
        include_hybrid=args.hybrid,
    )
    _print(format_telemetry_scorecard(card))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(telemetry_scorecard_json(card) + "\n")
        print(f"scorecard -> {args.json}")
    if args.html:
        render_telemetry_html(args.html, card)
        print(f"telemetry report -> {args.html}")
    worst = min((run.recall for run in card.runs), default=1.0)
    print(f"telemetry: worst recall {worst:.2f} across {len(card.runs)} runs "
          f"-> {'OK' if worst >= 0.9 else 'DEGRADED'}")
    return 0 if worst >= 0.9 else 1


def cmd_scale(args) -> int:
    """Run the scale scenario: a several-hundred-vSwitch overlay under
    flash-crowd load, reporting engine throughput (events/sec), wall
    time per phase and client impact."""
    import dataclasses
    import json as json_module

    from repro.core.config import ScotchConfig
    from repro.testbed.scale import run_scale

    if args.host_vswitches + args.mesh < 2:
        print("need at least 2 vSwitches", file=sys.stderr)
        return 2
    try:
        config = ScotchConfig(stats_mode=args.stats_mode,
                              sampling_period=args.sampling_period)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_scale(
        seed=args.seed,
        host_vswitches=args.host_vswitches,
        mesh=args.mesh,
        tors=args.tors,
        targets=args.targets,
        duration=args.duration,
        base_rate_fps=args.base_rate,
        crowd_multiplier=args.crowd_multiplier,
        config=config,
    )
    _print(result.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(dataclasses.asdict(result), handle,
                             indent=2, sort_keys=True)
            handle.write("\n")
        _print(f"wrote {args.json}")
    return 0


def _print_postmortem_summary(path: str, summary) -> None:
    from repro.obs.critpath import attribution_rows, format_tree

    trigger = summary["trigger"]
    rows = [["time (s)", trigger.get("t")], ["kind", trigger.get("kind")],
            ["name", trigger.get("name")], ["event", trigger.get("event")]]
    rows += sorted(trigger.get("detail", {}).items())
    rows += sorted(summary["context"].items())
    _print(format_table(["field", "value"], rows,
                        title=f"Postmortem bundle — {path}"))
    if summary["alerts_firing"]:
        _print(format_table(
            ["alert", "since (s)"],
            [[a["alert"], a["since"]] for a in summary["alerts_firing"]],
            title="Alerts firing at trigger"))
    if summary["faults_open"]:
        _print(format_table(
            ["fault", "target", "since (s)"],
            [[f["kind"], f["target"], f["since"]]
             for f in summary["faults_open"]],
            title="Faults open at trigger"))
    if summary["bundle"]["ancestry"]:
        _print(format_table(
            ["depth", "event", "t (s)", "callback"],
            [[depth, f"({a['run']},{a['seq']})", a["t"], a["callback"]]
             for depth, a in enumerate(summary["bundle"]["ancestry"])],
            title="Causal ancestry (newest first)"))
    if summary["metric_deltas"]:
        _print(format_table(
            ["counter", "delta"], sorted(summary["metric_deltas"].items()),
            title="Metric deltas (flight window)"))
    if summary["attribution"]["journeys"]:
        _print(format_table(
            ["stage", "count", "total (s)", "share", "p50 (ms)", "p95 (ms)",
             "p99 (ms)", "max (ms)"],
            attribution_rows(summary["attribution"]),
            title="Flight-window latency attribution"))
        if summary["longest"] is not None:
            _print(format_tree(summary["longest"]))
    print(f"ancestry: {summary['ancestry_depth']} events  "
          f"flight: {summary['flight_events']} events, "
          f"{summary['flight_spans']} spans")


def cmd_inspect(args) -> int:
    """Summarize a JSONL file: traces get per-stage latency percentiles
    and routes (plus critical-path attribution when the trace carries
    causality ids), metrics files get final instrument values and
    histogram quantiles; fault logs, alert timelines and postmortem
    bundles are sniffed from their schema headers."""
    from repro.obs.inspect import (
        histogram_rows,
        instrument_rows,
        sniff_kind,
        stage_rows,
        summarize_alert_timeline,
        summarize_fault_log,
        summarize_metrics,
        summarize_postmortem,
        summarize_telemetry_scorecard,
        summarize_trace,
        telemetry_run_rows,
    )

    summarizers = {
        "metrics": summarize_metrics,
        "fault_log": summarize_fault_log,
        "alert_timeline": summarize_alert_timeline,
        "postmortem": summarize_postmortem,
        "telemetry_scorecard": summarize_telemetry_scorecard,
    }
    try:
        kind = sniff_kind(args.trace)
        summary = summarizers.get(kind, summarize_trace)(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as exc:
        print(f"not a JSONL trace file: {args.trace} ({exc})", file=sys.stderr)
        return 2
    if kind == "metrics":
        _print(format_table(
            ["instrument", "kind", "value"],
            instrument_rows(summary),
            title=f"Metrics summary — {args.trace}",
        ))
        if summary["histograms"]:
            _print(format_table(
                ["histogram", "count", "mean", "p50", "p99", "min", "max"],
                histogram_rows(summary),
                title="Histograms",
            ))
        span = summary["sample_span"]
        span_text = ("-" if span is None
                     else f"{span[0]:.2f}s .. {span[1]:.2f}s")
        print(f"records: {summary['records']}  samples: {summary['samples']} "
              f"({summary['sampled_names']} instruments, {span_text})")
        return 0
    if kind == "fault_log":
        rows = [[kind_, phase, count]
                for kind_, phases in summary["kinds"].items()
                for phase, count in phases.items()]
        _print(format_table(["fault", "phase", "count"], rows,
                            title=f"Fault log — {args.trace}"))
        span = summary["span"]
        span_text = "-" if span is None else f"{span[0]:.2f}s .. {span[1]:.2f}s"
        print(f"actions: {summary['records']}  ({span_text})")
        return 0
    if kind == "alert_timeline":
        rows = [[alert, state, count]
                for alert, states in summary["alerts"].items()
                for state, count in states.items()]
        _print(format_table(["alert", "state", "count"], rows,
                            title=f"Alert timeline — {args.trace}"))
        span = summary["span"]
        span_text = "-" if span is None else f"{span[0]:.2f}s .. {span[1]:.2f}s"
        print(f"transitions: {summary['records']}  ({span_text})")
        return 0
    if kind == "postmortem":
        _print_postmortem_summary(args.trace, summary)
        return 0
    if kind == "telemetry_scorecard":
        _print(format_table(
            ["mode", "recall", "precision", "bytes", "reduction", "cpu share"],
            telemetry_run_rows(summary),
            title=f"Telemetry scorecard — {args.trace}"))
        print(f"runs: {summary['runs']}  seed: {summary['seed']}  "
              f"elephants: {summary['elephants']}  "
              f"(schema v{summary['version']})")
        return 0
    _print(format_table(
        ["stage", "count", "mean (ms)", "p50 (ms)", "p99 (ms)", "max (ms)"],
        stage_rows(summary),
        title=f"Trace summary — {args.trace}",
    ))
    if summary["causality"]:
        from repro.obs.critpath import attribution_rows, format_tree

        _print(format_table(
            ["stage", "count", "total (s)", "share", "p50 (ms)", "p95 (ms)",
             "p99 (ms)", "max (ms)"],
            attribution_rows(summary["attribution"]),
            title="Packet-In latency attribution (causality trace)",
        ))
        if summary["longest"] is not None:
            _print(format_tree(summary["longest"]))
        recon = summary["attribution"]["reconciliation"]
        print(f"attribution: {summary['attribution']['journeys']} journeys, "
              f"{summary['attribution']['total_s']:.6f} s total, "
              f"reconciliation max gap {recon['max_abs_gap_s']:.3e} s")
    pktin = summary["packet_in"]
    routes = ", ".join(f"{route}={count}" for route, count in pktin["routes"].items())
    print(f"records: {summary['records']}  spans: {summary['spans']}  "
          f"instants: {summary['instants']}  open spans: {summary['open_spans']}")
    print(f"Packet-In journeys: {pktin['count']}  via overlay relay: "
          f"{pktin['relayed']}  routes: {routes or '-'}")
    return 0


def cmd_postmortem(args) -> int:
    """Render a postmortem bundle (or a causality trace): console
    summary plus optional critical-path JSONL and a self-contained HTML
    page (trigger context, ancestry, per-stage attribution)."""
    from repro.obs.critpath import (
        attribute,
        longest_chain,
        render_html,
        report_jsonl,
    )
    from repro.obs.inspect import sniff_kind, summarize_postmortem

    try:
        kind = sniff_kind(args.bundle)
    except OSError as exc:
        print(f"cannot read bundle: {exc}", file=sys.stderr)
        return 2
    bundle = None
    try:
        if kind == "postmortem":
            summary = summarize_postmortem(args.bundle)
            bundle = summary["bundle"]
            report, chain = summary["attribution"], summary["longest"]
            title = (f"Postmortem — {bundle['trigger'].get('kind')} "
                     f"{bundle['trigger'].get('name')}")
            _print_postmortem_summary(args.bundle, summary)
        elif kind == "trace":
            from repro.obs.tracer import read_jsonl

            records = read_jsonl(args.bundle)
            report, chain = attribute(records), longest_chain(records)
            title = f"Critical path — {args.bundle}"
            print(f"{args.bundle}: trace with {report['journeys']} "
                  f"Packet-In journeys")
        else:
            print(f"{args.bundle} is a {kind} file; postmortem wants a "
                  f"bundle (chaos/health --postmortem-dir) or a "
                  f"causality trace", file=sys.stderr)
            return 2
    except (KeyError, TypeError, ValueError) as exc:
        print(f"not a postmortem bundle: {args.bundle} ({exc})",
              file=sys.stderr)
        return 2
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(report_jsonl(report, chain))
        print(f"critical-path report -> {args.jsonl}")
    if args.html:
        with open(args.html, "w") as handle:
            handle.write(render_html(report, chain, bundle, title=title))
        print(f"postmortem page -> {args.html}")
    return 0


def cmd_report(args) -> int:
    """Run every figure + ablation and write one markdown report."""
    sections: List[str] = [
        "# Scotch reproduction report",
        "",
        "Generated by `scotch-repro report" + (" --quick" if args.quick else "") + "`.",
        "Shapes (orderings, knees, scaling) are the reproduction target;",
        "see EXPERIMENTS.md for paper-vs-measured discussion.",
        "",
    ]
    for number, description in FIGURES.items():
        print(f"running fig {number} ({description}) ...", flush=True)
        sections += [f"## Figure {number} — {description}", "",
                     "```", figure_text(number, args.quick), "```", ""]
    print("running ablation ...", flush=True)
    sections += ["## Ablation — baselines", "", "```", ablation_text(args.quick), "```", ""]
    print("running tcam ...", flush=True)
    sections += ["## Ablation — TCAM bottleneck", "", "```", tcam_text(args.quick), "```", ""]
    with open(args.output, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {args.output}")
    return 0


def _add_health_output_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("health engine")
    group.add_argument("--rules", metavar="FILE",
                       help="alert-rule file (docs/observability.md"
                            "#alert-rules); default: built-in rules")
    group.add_argument("--alert-log", metavar="FILE",
                       help="write the deterministic alert timeline (JSONL); "
                            "byte-identical across runs with equal seeds")
    group.add_argument("--health-report", metavar="FILE",
                       help="write a self-contained HTML health report "
                            "(SLI time series with alert/truth bands)")
    group.add_argument("--scorecard-json", metavar="FILE",
                       help="write the detection scorecard as JSON")
    group.add_argument("--postmortem-dir", metavar="DIR",
                       help="capture a postmortem bundle (causal ancestry, "
                            "flight-recorder window, active alert/fault "
                            "context) on every alert firing / invariant "
                            "violation and write them under DIR; "
                            "byte-identical across runs with equal seeds")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.set_defaults(obs_capable=True)
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE",
        help="record a control-path trace; writes FILE (JSONL) plus a "
             "Chrome trace_event twin (open in chrome://tracing / Perfetto)")
    group.add_argument(
        "--metrics", metavar="FILE",
        help="record counters/gauges/histograms to FILE (JSONL)")
    group.add_argument(
        "--prom", metavar="FILE",
        help="also write final instrument states to FILE in the "
             "Prometheus text exposition format (implies metrics "
             "collection)")
    group.add_argument(
        "--sample-interval", type=float, default=None, metavar="SEC",
        help="with --metrics: also sample every gauge/counter each SEC "
             "simulation seconds (adds daemon events to the calendar)")
    group.add_argument(
        "--profile", action="store_true",
        help="profile the engine (per-callback wall time, heap depth) "
             "and print the hot-callback table")
    group.add_argument(
        "--causality", action="store_true",
        help="record causal provenance (event parent ids) and stamp "
             "span/journey ids on the trace, enabling per-stage "
             "latency attribution in `inspect` / `postmortem`")
    group.add_argument(
        "--manifest", metavar="FILE",
        help="write a reproducibility manifest (command, seed, config, "
             "switch profiles, output paths) to FILE")


def chrome_trace_path(trace_path: str) -> str:
    """`x.trace.jsonl` -> `x.trace.chrome.json` (else just append)."""
    if trace_path.endswith(".jsonl"):
        return trace_path[: -len(".jsonl")] + ".chrome.json"
    return trace_path + ".chrome.json"


def _wants_obs(args) -> bool:
    return getattr(args, "obs_capable", False) and bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "prom", None)
        or getattr(args, "profile", False)
        or getattr(args, "causality", False)
        or getattr(args, "manifest", None)
    )


def _run_observed(args, argv: Optional[List[str]]) -> int:
    """Run ``args.func`` with a live Observability installed as the
    process default (so experiment runners that build their own
    simulators are instrumented too), then export what was asked for."""
    from repro.obs import Observability, observed

    obs = Observability(
        trace=bool(args.trace),
        metrics=bool(args.metrics or args.prom),
        profile=args.profile,
        sample_interval=args.sample_interval,
        causality=args.causality,
    )
    with observed(obs):
        status = args.func(args)
    if args.trace:
        lines = obs.tracer.export_jsonl(args.trace)
        chrome = chrome_trace_path(args.trace)
        events = obs.tracer.export_chrome(chrome)
        print(f"trace: {lines} records -> {args.trace}; "
              f"{events} Chrome events -> {chrome}")
    if args.metrics:
        lines = obs.metrics.export_jsonl(args.metrics)
        print(f"metrics: {lines} lines -> {args.metrics}")
    if args.prom:
        lines = obs.metrics.export_prometheus(args.prom)
        print(f"prometheus: {lines} lines -> {args.prom}")
    if args.profile and obs.profiler is not None:
        print()
        _print(format_table(
            ["callback", "events", "total (ms)", "mean (us)", "max (us)"],
            obs.profiler.report_rows(top=15),
            title="Engine profile — hottest callbacks",
        ))
        print(f"profile: {obs.profiler.summary()}")
    if args.manifest:
        from repro.core.config import ScotchConfig
        from repro.obs.manifest import build_manifest, write_manifest
        from repro.switch.profiles import (
            HP_PROCURVE_6600,
            OPEN_VSWITCH,
            PICA8_PRONTO_3780,
        )

        manifest = build_manifest(
            command=["scotch-repro"] + list(argv if argv is not None else sys.argv[1:]),
            seed=getattr(args, "seed", None),
            config=ScotchConfig(),
            profiles=[PICA8_PRONTO_3780, HP_PROCURVE_6600, OPEN_VSWITCH],
            trace_path=args.trace,
            chrome_trace_path=chrome_trace_path(args.trace) if args.trace else None,
            metrics_path=args.metrics,
            extra={"simulators": obs.runs, "exit_status": status},
        )
        write_manifest(args.manifest, manifest)
        print(f"manifest -> {args.manifest}")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scotch-repro",
        description="Scotch (CoNEXT 2014) reproduction: demos and figure runners.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available runs").set_defaults(func=cmd_list)
    sub.add_parser("profiles", help="show calibrated switch models").set_defaults(
        func=cmd_profiles)

    demo = sub.add_parser("demo", help="flood demo with/without Scotch")
    demo.add_argument("--attack-rate", type=float, default=2000.0)
    demo.add_argument("--seed", type=int, default=1)
    _add_obs_flags(demo)
    demo.set_defaults(func=cmd_demo)

    fig = sub.add_parser("fig", help="regenerate one paper figure")
    fig.add_argument("number", help="figure number (3,4,9,10,11,12,13,14,15)")
    fig.add_argument("--quick", action="store_true", help="smaller, faster variant")
    _add_obs_flags(fig)
    fig.set_defaults(func=cmd_fig)

    ablation = sub.add_parser("ablation", help="Scotch vs the baseline schemes")
    ablation.add_argument("--quick", action="store_true")
    _add_obs_flags(ablation)
    ablation.set_defaults(func=cmd_ablation)

    tcam = sub.add_parser("tcam", help="the §3.3 TCAM-bottleneck scenario")
    tcam.add_argument("--quick", action="store_true")
    _add_obs_flags(tcam)
    tcam.set_defaults(func=cmd_tcam)

    report = sub.add_parser("report", help="run everything, write a markdown report")
    report.add_argument("--quick", action="store_true")
    report.add_argument("-o", "--output", default="REPORT.md")
    _add_obs_flags(report)
    report.set_defaults(func=cmd_report)

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection run + recovery report")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--duration", type=float, default=18.0,
                       help="simulated seconds (>= 16)")
    chaos.add_argument("--client-rate", type=float, default=100.0,
                       help="legitimate new flows per second")
    chaos.add_argument("--attack-rate", type=float, default=2000.0,
                       help="spoofed flood rate keeping the overlay active")
    chaos.add_argument("--fault-log", metavar="FILE",
                       help="write the deterministic fault log (JSONL); "
                            "byte-identical across runs with equal seeds")
    chaos.add_argument("--no-health", action="store_true",
                       help="skip the streaming health engine and the "
                            "detection scorecard")
    _add_health_output_flags(chaos)
    _add_obs_flags(chaos)
    chaos.set_defaults(func=cmd_chaos)

    pool = sub.add_parser(
        "pool",
        help="elastic controller pool: chaos gauntlet or autoscale demo "
             "(docs/cluster.md)")
    pool.add_argument("--seed", type=int, default=1)
    pool.add_argument("--duration", type=float, default=24.0,
                      help="simulated seconds (>= 22; chaos mode only)")
    pool.add_argument("--controllers", type=int, default=3,
                      help="pool size for the chaos gauntlet (default 3)")
    pool.add_argument("--switches", type=int, default=6,
                      help="managed switches (default 6)")
    pool.add_argument("--rate", type=float, default=300.0,
                      help="Packet-In rate driven at the pool (default 300)")
    pool.add_argument("--autoscale", action="store_true",
                      help="run the flash-crowd autoscale demo instead of "
                           "the chaos gauntlet")
    pool.add_argument("--health", action="store_true",
                      help="run the health engine with the pool alert rules "
                           "and print the detection scorecard (chaos mode)")
    pool.add_argument("--events", metavar="FILE",
                      help="write the pool event log (JSONL); byte-identical "
                           "across runs with equal seeds")
    pool.add_argument("--fault-log", metavar="FILE",
                      help="write the deterministic fault log (JSONL)")
    pool.add_argument("--scorecard-json", metavar="FILE",
                      help="write the detection scorecard as JSON "
                           "(needs --health)")
    pool.set_defaults(func=cmd_pool)

    health = sub.add_parser(
        "health",
        help="chaos-verified detection: SLI report + alert scorecard "
             "(docs/observability.md#health)")
    health.add_argument("--seed", type=int, default=1)
    health.add_argument("--duration", type=float, default=18.0,
                        help="simulated seconds (>= 16)")
    health.add_argument("--client-rate", type=float, default=100.0)
    health.add_argument("--attack-rate", type=float, default=2000.0)
    health.add_argument("--no-faults", action="store_true",
                        help="fault-free baseline: keep traffic and rules "
                             "but inject nothing; exit 0 iff zero false "
                             "positives")
    health.add_argument("--tolerance", type=float, default=1.0,
                        help="detection-latency tolerance (s) when joining "
                             "alerts to truth windows")
    _add_health_output_flags(health)
    _add_obs_flags(health)
    health.set_defaults(func=cmd_health)

    telemetry = sub.add_parser(
        "telemetry",
        help="sampled-telemetry accuracy/overhead scorecard: elephant "
             "recall/precision and monitoring cost per stats mode "
             "(docs/observability.md#sampled-telemetry)")
    telemetry.add_argument("--seed", type=int, default=1)
    telemetry.add_argument("--duration", type=float, default=8.0,
                           help="simulated seconds (default 8)")
    telemetry.add_argument("--attack-rate", type=float, default=800.0,
                           help="spoofed flood rate keeping the overlay "
                                "active (default 800)")
    telemetry.add_argument("--elephants", type=int, default=8,
                           help="injected ground-truth elephants (default 8)")
    telemetry.add_argument("--mice", type=int, default=10,
                           help="decoy mid-size flows (default 10)")
    telemetry.add_argument("--periods", default="10",
                           help="comma-separated sampling periods N "
                                "(1-in-N), one sample run each "
                                "(default: 10)")
    telemetry.add_argument("--hybrid", action="store_true",
                           help="also run hybrid mode (sampling + slow "
                                "safety-net polls) at the first period")
    telemetry.add_argument("--json", metavar="FILE",
                           help="write the scorecard as canonical JSON")
    telemetry.add_argument("--html", metavar="FILE",
                           help="write a self-contained HTML scorecard")
    telemetry.set_defaults(func=cmd_telemetry)

    scale = sub.add_parser(
        "scale",
        help="flash crowd over a several-hundred-vSwitch overlay "
             "(engine throughput: events/sec, wall time, client impact)")
    scale.add_argument("--seed", type=int, default=1)
    scale.add_argument("--host-vswitches", type=int, default=480,
                       help="host vSwitches (one idle tenant rack slice "
                            "each; default 480)")
    scale.add_argument("--mesh", type=int, default=24,
                       help="mesh vSwitches in the overlay core (default 24)")
    scale.add_argument("--tors", type=int, default=8,
                       help="physical ToR switches (default 8)")
    scale.add_argument("--targets", type=int, default=16,
                       help="flash-crowd service servers (default 16)")
    scale.add_argument("--duration", type=float, default=5.0,
                       help="simulated seconds (default 5)")
    scale.add_argument("--base-rate", type=float, default=20.0,
                       help="per-target new-flow rate before the crowd "
                            "(flows/s, default 20)")
    scale.add_argument("--crowd-multiplier", type=float, default=10.0,
                       help="rate multiplier during the crowd window "
                            "(default 10)")
    scale.add_argument("--stats-mode", default="poll",
                       choices=("poll", "sample", "hybrid", "off"),
                       help="flow measurement mode (default poll); with "
                            "--metrics, monitoring-cost counters land in "
                            "the result extras")
    scale.add_argument("--sampling-period", type=int, default=10,
                       help="1-in-N packet sampling period for "
                            "sample/hybrid modes (default 10)")
    scale.add_argument("--json", metavar="FILE",
                       help="write the full ScaleResult as JSON")
    _add_obs_flags(scale)
    scale.set_defaults(func=cmd_scale)

    inspect = sub.add_parser(
        "inspect",
        help="summarize a JSONL trace (stage p50/p99, routes), metrics "
             "file (instrument finals, histogram quantiles), fault log, "
             "alert timeline or postmortem bundle")
    inspect.add_argument("trace", help="file written by --trace or --metrics")
    inspect.set_defaults(func=cmd_inspect)

    postmortem = sub.add_parser(
        "postmortem",
        help="render a postmortem bundle (chaos/health --postmortem-dir) "
             "or causality trace: trigger context, causal ancestry, "
             "per-stage latency attribution, longest chain")
    postmortem.add_argument("bundle",
                            help="a postmortem-*.jsonl bundle or a "
                                 "--trace --causality JSONL file")
    postmortem.add_argument("--jsonl", metavar="FILE",
                            help="write the critical-path report as JSONL")
    postmortem.add_argument("--html", metavar="FILE",
                            help="write a self-contained HTML postmortem page")
    postmortem.set_defaults(func=cmd_postmortem)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if _wants_obs(args):
        return _run_observed(args, argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
