"""Elastic controller pool: leader election, roles, autoscaling, EASM.

Scotch removes the *data-plane* scaling bottleneck; this module goes
beyond the paper (docs/cluster.md) and removes the control-plane one:
a pool of controller members shares the switches, with OpenFlow
master/slave role semantics per switch, so Packet-In load spreads and
a member crash only orphans its own switches — briefly.

Architecture.  Switches keep their single control channel; the
:class:`ControllerPool` is a controller app acting as the shared
frontend that demultiplexes each switch's messages to its current
*master* member.  Members are logical controller processes: each runs
its own lease/election state machine over the :class:`~repro.cluster.
bus.PoolBus` and owns a :class:`~repro.controller.reliability.
ReliableSender` for the state it installs.

* **Leader election** — deterministic sim-time lease: the leader
  broadcasts a beat every ``pool_lease_interval``; a member hearing
  nothing for ``pool_lease_timeout`` claims candidacy with ``term+1``;
  higher term wins, equal term goes to the lowest member id; a
  candidate unchallenged for ``pool_election_timeout`` takes over.
* **Role handoff** — the leader assigns a switch to a member by having
  the *new* master send a barrier-acked ``RoleMod`` fenced by a
  monotonically increasing generation (key ``("role", dpid)``).  The
  pool's authoritative ``acked_master`` map flips only at ack time;
  Packet-Ins arriving in between are buffered and drained to the new
  master, so nothing is lost and nothing is handled twice.
* **Autoscaling** — the leader feeds the pool-wide Packet-In rate
  through :mod:`repro.obs.rules` hysteresis (scale-up above the
  high-water mark held ``pool_scale_up_hold``; scale-down below the
  low-water mark held ``pool_scale_cooldown``), with a
  ``pool_warmup`` guard between actions.
* **Rebalancing** — EASM-style best-fit: when the busiest member
  carries more than ``pool_imbalance_ratio`` times the idlest one,
  migrate the switch whose load best levels the two.

Everything the pool does lands in :attr:`events` with stable key
order; :meth:`events_jsonl` is the byte-comparison unit the CI pool
job diffs across seeds.  A deployment that never builds a pool
(``config.controllers == 1``, the default) executes none of this
module's code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import json

from repro.cluster.bus import PoolBus
from repro.controller.base_app import BaseApp
from repro.controller.reliability import ReliableSender
from repro.obs.metrics import LATENCY_BUCKETS_S
from repro.obs.rules import AlertRule, AlertState
from repro.openflow.messages import FlowMod, RoleMod
from repro.sim.process import PeriodicTimer
from repro.switch.actions import Output
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ScotchConfig
    from repro.sim.engine import Simulator

ROLE_MASTER = "master"
ROLE_SLAVE = "slave"

#: Failover-window buckets: lease expiry + election + handoff lives in
#: the 0.1 s .. 10 s decades, same shape as the control-path buckets.
_WINDOW_BUCKETS = LATENCY_BUCKETS_S

#: Per-dpid Packet-Ins buffered while a switch has no live acked
#: master; beyond this the oldest are dropped (and counted).
ORPHAN_BUFFER_LIMIT = 4096


def pool_grace(config: "ScotchConfig") -> float:
    """How long a switch may be without a live master: lease expiry +
    election + one reliable handoff round-trip budget."""
    from repro.faults.invariants import grace_window

    return (config.pool_lease_timeout + config.pool_election_timeout
            + grace_window(config))


class PoolMember:
    """One logical controller process in the pool."""

    def __init__(self, pool: "ControllerPool", member_id: str):
        self.pool = pool
        self.id = member_id
        self.sim = pool.sim
        self.config = pool.config
        self.alive = True
        #: True while a scale-down is migrating this member's switches
        #: away; finalised (alive=False) once it masters nothing.
        self.draining = False
        # -- election state --------------------------------------------
        self.term = 1
        self.leader_id: Optional[str] = None
        self.last_leader_beat = self.sim.now
        self.candidate_since: Optional[float] = None
        #: member id -> when its last alive-beat arrived.
        self.last_seen: Dict[str, float] = {}
        #: dpid -> (master_id, generation): this member's view of the
        #: leader's assignments (updated by bus ``assign`` broadcasts).
        self.assignment_view: Dict[str, Tuple[str, int]] = {}
        # -- work ------------------------------------------------------
        self.packet_ins_handled = 0
        self.flows_claimed = 0
        self.reliable = ReliableSender(self.sim, pool.controller, pool.config)
        self._timer = PeriodicTimer(self.sim, self.config.pool_lease_interval,
                                    self._tick)
        self._rebalance_timer = PeriodicTimer(
            self.sim, self.config.pool_rebalance_interval, self._rebalance_tick)
        # -- autoscaling (leader-only) ---------------------------------
        self._scale_up = AlertState(pool.scale_up_rule)
        self._scale_down = AlertState(pool.scale_down_rule)
        self.last_scale_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.alive and self.leader_id == self.id

    def start(self) -> None:
        self.pool.bus.attach(self.id, self._on_bus)
        self._timer.start()
        if self.is_leader:
            self._rebalance_timer.start()

    def halt(self) -> None:
        """Crash/retire: stop timers, freeze in-flight installs."""
        self.alive = False
        self._timer.stop()
        self._rebalance_timer.stop()
        self.reliable.stop()
        self.pool.bus.detach(self.id)

    def resume(self) -> None:
        """Restart after a crash: rejoin as a follower and let the next
        leader beat (or a fresh election) reorient this member."""
        self.alive = True
        self.draining = False
        self.candidate_since = None
        self.leader_id = None
        self.last_leader_beat = self.sim.now
        # A crash loses in-memory state: the pre-crash assignment view
        # would otherwise claim mastership of switches the pool already
        # reassigned (a multi-master belief).  Rebuilt from "assign"
        # broadcasts as the leader hands work back.
        self.assignment_view.clear()
        self.last_seen.clear()
        self.pool.bus.attach(self.id, self._on_bus)
        self._timer.start()
        self.reliable.start()

    # ------------------------------------------------------------------
    # Election state machine (one tick per lease interval)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._timer.running or not self.alive:
            return
        now = self.sim.now
        self.pool.bus.broadcast(self.id, ("alive",))
        if self.is_leader:
            self.pool.bus.broadcast(self.id, ("beat", self.term, self.id))
            self._leader_duties(now)
        elif self.candidate_since is not None:
            if now - self.candidate_since >= self.config.pool_election_timeout:
                self._win(now)
        elif now - self.last_leader_beat > self.config.pool_lease_timeout:
            self.term += 1
            self.candidate_since = now
            self.pool.bus.broadcast(self.id, ("claim", self.term, self.id))
            self.pool.log_event("election-claim", member=self.id, term=self.term)
        self._timer.rearm()

    def _win(self, now: float) -> None:
        self.candidate_since = None
        self.leader_id = self.id
        self.pool.log_event("leader-elected", leader=self.id, term=self.term)
        self.pool.bus.broadcast(self.id, ("beat", self.term, self.id))
        self._rebalance_timer.start()
        # Fresh hysteresis: the new leader must observe, not inherit.
        self._scale_up = AlertState(self.pool.scale_up_rule)
        self._scale_down = AlertState(self.pool.scale_down_rule)
        self._reassign_orphans(now)

    def _on_bus(self, src: str, payload: Tuple[object, ...]) -> None:
        kind = payload[0]
        now = self.sim.now
        if kind == "alive":
            self.last_seen[src] = now
        elif kind == "beat":
            term, leader = int(payload[1]), str(payload[2])
            if term >= self.term:
                if self.is_leader and leader != self.id:
                    # Deposed (or conceding an equal-term tie to the
                    # other leader): drop leader duties immediately.
                    self._rebalance_timer.stop()
                self.term = term
                self.leader_id = leader
                self.last_leader_beat = now
                self.candidate_since = None
        elif kind == "claim":
            term, candidate = int(payload[1]), str(payload[2])
            if term < self.term:
                return
            if term > self.term or candidate < self.id:
                # Higher precedence than any claim this member could
                # make: adopt the term, yield, and give the candidate a
                # full lease before considering a counter-claim.
                if self.is_leader:
                    self._rebalance_timer.stop()
                    self.leader_id = None
                self.term = term
                self.candidate_since = None
                self.last_leader_beat = now
        elif kind == "assign":
            dpid, master_id, generation = (str(payload[1]), str(payload[2]),
                                           int(payload[3]))
            current = self.assignment_view.get(dpid)
            if current is None or generation > current[1]:
                self.assignment_view[dpid] = (master_id, generation)

    # ------------------------------------------------------------------
    # Leader duties
    # ------------------------------------------------------------------
    def _leader_duties(self, now: float) -> None:
        self._reassign_orphans(now)
        self._finalize_draining()
        self._autoscale(now)

    def _member_live(self, member_id: str, now: float) -> bool:
        """Lease-based liveness: a peer is live while its alive-beats
        keep arriving.  Deliberately does NOT consult the peer's
        ``alive`` flag — death is only observable through the bus, so
        the failover window is genuinely bounded by the lease, not by
        shared-memory omniscience."""
        member = self.pool.members.get(member_id)
        if member is None or member.draining:
            return False
        if member_id == self.id:
            return self.alive
        seen = self.last_seen.get(member_id)
        if seen is None:
            # Never heard from it yet (pool start / just spawned): give
            # it a full lease from our own start before declaring death.
            return now - self.last_leader_beat <= self.config.pool_lease_timeout
        return now - seen <= self.config.pool_lease_timeout

    def _live_targets(self, now: float) -> List[str]:
        return [m for m in sorted(self.pool.members)
                if self._member_live(m, now)]

    def _least_loaded(self, candidates: List[str]) -> Optional[str]:
        if not candidates:
            return None
        # Count in-flight handoff targets as already loaded, so a burst
        # of assignments (pool start, mass failover) spreads instead of
        # dog-piling whoever acked last.
        loads = self.pool.member_switch_counts()
        for dpid, (target, _gen, _t, _r) in self.pool.handoff_inflight.items():
            current = self.pool.acked_master.get(dpid)
            if current != target:
                loads[target] = loads.get(target, 0) + 1
                if current is not None:
                    loads[current] = loads.get(current, 0) - 1
        return min(candidates, key=lambda m: (loads.get(m, 0), m))

    def _reassign_orphans(self, now: float) -> None:
        """Give every switch whose master is dead (or unassigned) a new
        live master — the failover path."""
        targets = self._live_targets(now)
        if not targets:
            return
        for dpid in sorted(self.pool.switch_ids):
            master = self.pool.acked_master.get(dpid)
            if master is not None and self._member_live(master, now):
                continue
            inflight = self.pool.handoff_inflight.get(dpid)
            if inflight is not None and self._member_live(inflight[0], now):
                continue  # handoff already racing the orphan window
            target = self._least_loaded(targets)
            self.pool.initiate_handoff(dpid, target,
                                       reason="failover" if master else "assign")

    def _finalize_draining(self) -> None:
        counts = self.pool.member_switch_counts()
        for member_id in sorted(self.pool.members):
            member = self.pool.members[member_id]
            if not (member.alive and member.draining):
                continue
            inflight_to = any(m == member_id for m, _g, _t, _r
                              in self.pool.handoff_inflight.values())
            if counts.get(member_id, 0) == 0 and not inflight_to:
                member.halt()
                self.pool.live_gauge_update()
                self.pool.log_event("member-retired", member=member_id)

    # -- autoscaling ----------------------------------------------------
    def _reset_autoscale(self) -> None:
        """Fresh hysteresis after a scale action.  The pool has
        demonstrably been active by now, so the ``<``-rule's
        arm-on-activity guard is satisfied up front — successive
        retire steps can follow one cooldown after another even when
        traffic has already collapsed below the clear level."""
        self._scale_up = AlertState(self.pool.scale_up_rule)
        self._scale_down = AlertState(self.pool.scale_down_rule)
        self._scale_down.armed = True

    def _autoscale(self, now: float) -> None:
        pps = self.pool.take_pps_window(now)
        self._scale_up.evaluate(now, pps)
        self._scale_down.evaluate(now, pps)
        warm = (self.last_scale_at is None
                or now - self.last_scale_at >= self.config.pool_warmup)
        if not warm:
            return  # still warming up from the last action; keep observing
        live = self.pool.live_member_count()
        if self._scale_up.firing and live < self.config.pool_max_controllers:
            self._scale_up_action(now, pps)
        elif self._scale_down.firing and live > self.config.pool_min_controllers:
            self._scale_down_action(now, pps)

    def _scale_up_action(self, now: float, pps: float) -> None:
        member = self.pool.spawn_member()
        member.leader_id = self.id
        # The spawner vouches for its child until beats arrive.
        self.last_seen[member.id] = now
        self.last_scale_at = now
        self._reset_autoscale()
        self.pool.log_event("scale-up", member=member.id, pps=round(pps, 3))

    def _scale_down_action(self, now: float, pps: float) -> None:
        counts = self.pool.member_switch_counts()
        candidates = [m for m in self._live_targets(now) if m != self.id]
        if not candidates:
            return
        # Retire the emptiest member; newest id breaks ties so the
        # steady-state pool keeps its oldest members.
        victim_id = min(candidates,
                        key=lambda m: (counts.get(m, 0), _id_sort_key(m)))
        victim = self.pool.members[victim_id]
        victim.draining = True
        self.last_scale_at = now
        self._reset_autoscale()
        self.pool.log_event("scale-down", member=victim_id, pps=round(pps, 3))
        targets = [m for m in self._live_targets(now) if m != victim_id]
        for dpid in sorted(self.pool.switch_ids):
            if self.pool.acked_master.get(dpid) == victim_id:
                target = self._least_loaded(targets)
                if target is not None:
                    self.pool.initiate_handoff(dpid, target, reason="scale-down")

    # -- EASM rebalancing ------------------------------------------------
    def _rebalance_tick(self) -> None:
        if not self._rebalance_timer.running or not self.is_leader:
            return
        now = self.sim.now
        loads = self.pool.take_load_window()
        live = self._live_targets(now)
        if len(live) >= 2:
            per_member: Dict[str, float] = {m: 0.0 for m in live}
            per_dpid: Dict[str, Dict[str, float]] = {m: {} for m in live}
            for dpid, count in loads.items():
                master = self.pool.acked_master.get(dpid)
                if master in per_member:
                    per_member[master] += count
                    per_dpid[master][dpid] = count
            busiest = max(live, key=lambda m: (per_member[m], m))
            idlest = min(live, key=lambda m: (per_member[m], m))
            hi, lo = per_member[busiest], per_member[idlest]
            imbalanced = (hi > lo * self.config.pool_imbalance_ratio
                          if lo > 0 else hi > 0)
            if imbalanced and len(per_dpid[busiest]) > 1:
                # Best fit: the switch whose load is closest to half the
                # gap levels the pair without overshooting.
                gap = (hi - lo) / 2.0
                dpid = min(sorted(per_dpid[busiest]),
                           key=lambda d: (abs(per_dpid[busiest][d] - gap), d))
                self.pool.log_event("rebalance-move", dpid=dpid,
                                    src=busiest, dst=idlest,
                                    hi=round(hi, 3), lo=round(lo, 3))
                self.pool.initiate_handoff(dpid, idlest, reason="rebalance")
        self._rebalance_timer.rearm()

    # ------------------------------------------------------------------
    # Packet-In work (master role)
    # ------------------------------------------------------------------
    def handle_packet_in(self, dpid: str, message) -> None:
        self.packet_ins_handled += 1
        packet = message.packet
        if packet is None:
            return
        key = (dpid, packet.flow_key)
        owner = self.pool.flow_owner.get(key)
        if owner == self.id:
            return  # setup already in flight / installed by this member
        if owner is not None:
            other = self.pool.members.get(owner)
            if other is not None and other.alive:
                # The flow's rule is already owned by a live member
                # (e.g. the switch just migrated here mid-flow): do NOT
                # install again — that would be a double-handled setup.
                return
            self.pool.flow_reclaims += 1
        self.pool.flow_owner[key] = self.id
        self.flows_claimed += 1
        self._install_flow(dpid, packet.flow_key)

    def _install_flow(self, dpid: str, flow_key) -> None:
        owner = self.pool.flow_owner.get((dpid, flow_key))
        if owner is not None and owner != self.id:
            other = self.pool.members.get(owner)
            if other is not None and other.alive:
                # Tripwire: installing over a live owner's rule would be
                # a double-handled setup (invariant: stays zero).
                self.pool.double_installs += 1
                return
        match = Match(src_ip=flow_key.src_ip, dst_ip=flow_key.dst_ip,
                      proto=flow_key.proto, src_port=flow_key.src_port,
                      dst_port=flow_key.dst_port)
        mod = FlowMod(match=match, priority=100, actions=[Output(1)],
                      command="add", notify_removal=False)
        self.reliable.send(dpid, [mod], key=("flow", dpid, flow_key))

    def reclaim_dead_flows(self, dpid: str) -> int:
        """On taking mastership of ``dpid``: re-own and re-install every
        flow a dead member claimed but may never have landed (the
        zero-lost-flow-setups guarantee for single-packet flows)."""
        reclaimed = 0
        for key in sorted(k for k in self.pool.flow_owner if k[0] == dpid):
            owner = self.pool.flow_owner[key]
            member = self.pool.members.get(owner)
            if member is not None and (member.alive or owner == self.id):
                continue
            self.pool.flow_owner[key] = self.id
            self.pool.flow_reclaims += 1
            reclaimed += 1
            self._install_flow(dpid, key[1])
        return reclaimed


def _id_sort_key(member_id: str) -> Tuple[int, str]:
    """Sort ``c10`` after ``c2``: numeric suffix first, then lexical."""
    digits = "".join(ch for ch in member_id if ch.isdigit())
    return (-int(digits) if digits else 0, member_id)


class ControllerPool(BaseApp):
    """The pool frontend: demux, role authority, shared truth, log."""

    def __init__(self, config: "ScotchConfig", member_count: Optional[int] = None):
        super().__init__(name="ControllerPool")
        self.config = config
        count = config.controllers if member_count is None else member_count
        if count < 1:
            raise ValueError("pool needs at least one member")
        self._initial_count = count
        self._next_index = 0
        self.members: Dict[str, PoolMember] = {}
        self.bus: Optional[PoolBus] = None
        #: dpids the pool is responsible for (registration order-free).
        self.switch_ids: List[str] = []
        # -- authoritative role state ----------------------------------
        #: dpid -> member id whose RoleMod the switch has barrier-acked.
        self.acked_master: Dict[str, str] = {}
        #: dpid -> (master, generation) as reported by RoleStatus — the
        #: switch-side ground truth the invariant checker cross-checks.
        self.switch_truth: Dict[str, Tuple[str, int]] = {}
        #: dpid -> highest generation ever issued (fencing allocator).
        self.generation: Dict[str, int] = {}
        #: dpid -> (target member, generation, decided_at, reason).
        self.handoff_inflight: Dict[str, Tuple[str, int, float, str]] = {}
        # -- orphan accounting -----------------------------------------
        self.orphan_since: Dict[str, float] = {}
        self.crash_time: Dict[str, float] = {}
        self._orphan_buffer: List[Tuple[str, object]] = []
        self.orphaned = 0
        self.orphan_dropped = 0
        self.drained = 0
        # -- flow exactly-once bookkeeping ------------------------------
        #: (dpid, flow key) -> member id owning the flow's setup.
        self.flow_owner: Dict[Tuple[str, object], str] = {}
        self.flow_reclaims = 0
        self.double_installs = 0
        self.stale_role_errors = 0
        # -- latency records (plain lists so benches/reports can compute
        # exact percentiles even when the metrics registry is off) ------
        #: member-crash -> new-master-acked, seconds, one per failover.
        self.failover_windows: List[float] = []
        #: handoff-decided -> acked, seconds, per planned migration.
        self.migration_latencies: List[float] = []
        # -- load windows ----------------------------------------------
        self.packet_ins_total = 0
        self._window_counts: Dict[str, int] = {}
        self._pps_count = 0
        self._pps_since: Optional[float] = None
        # -- events ----------------------------------------------------
        self.events: List[Dict[str, object]] = []
        self.scale_up_rule = AlertRule(
            name="pool-scale-up", sli="pool.pps", op=">",
            threshold=config.pool_scale_up_pps,
            for_s=config.pool_scale_up_hold, detects=("flash_crowd",))
        self.scale_down_rule = AlertRule(
            name="pool-scale-down", sli="pool.pps", op="<",
            threshold=config.pool_scale_down_pps,
            for_s=config.pool_scale_cooldown)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self) -> None:
        sim = self.sim
        self.bus = PoolBus(sim, self.config.pool_bus_delay)
        metrics = sim.obs.metrics
        self._m_packet_ins = metrics.counter("pool.packet_ins")
        self._m_orphaned = metrics.counter("pool.orphaned")
        self._m_drained = metrics.counter("pool.drained")
        self._m_handoffs = metrics.counter("pool.handoffs")
        self._g_live = metrics.gauge("pool.members_live")
        self._g_orphans = metrics.gauge(
            "pool.orphan_buffer", lambda: float(len(self._orphan_buffer)))
        self._h_failover = metrics.histogram("pool.failover_window_s",
                                             _WINDOW_BUCKETS)
        self._h_migration = metrics.histogram("pool.migration_latency_s",
                                              _WINDOW_BUCKETS)
        self._pps_since = sim.now
        for _ in range(self._initial_count):
            self._create_member()
        # Deterministic cold start: lowest id leads at term 1, no
        # election storm at t=0.
        leader = min(self.members)
        for member in self.members.values():
            member.leader_id = leader
        for member_id in sorted(self.members):
            self.members[member_id].start()
        self.live_gauge_update()
        self.log_event("pool-start", leader=leader,
                       members=sorted(self.members))

    def _create_member(self) -> PoolMember:
        member_id = f"c{self._next_index}"
        self._next_index += 1
        member = PoolMember(self, member_id)
        self.members[member_id] = member
        return member

    def manage(self, dpid: str) -> None:
        """Put ``dpid`` under pool management (the leader assigns it a
        master on its next tick)."""
        if dpid not in self.switch_ids:
            self.switch_ids.append(dpid)

    # ------------------------------------------------------------------
    # Frontend demux (BaseApp hooks)
    # ------------------------------------------------------------------
    def packet_in(self, dpid: str, message) -> None:
        self.packet_ins_total += 1
        self._pps_count += 1
        self._m_packet_ins.inc()
        self._window_counts[dpid] = self._window_counts.get(dpid, 0) + 1
        master_id = self.acked_master.get(dpid)
        member = self.members.get(master_id) if master_id else None
        if member is not None and member.alive:
            member.handle_packet_in(dpid, message)
            return
        self.orphan_since.setdefault(dpid, self.sim.now)
        self.orphaned += 1
        self._m_orphaned.inc()
        if len(self._orphan_buffer) >= ORPHAN_BUFFER_LIMIT:
            self._orphan_buffer.pop(0)
            self.orphan_dropped += 1
        self._orphan_buffer.append((dpid, message))

    def barrier_reply(self, dpid: str, message) -> None:
        for member_id in sorted(self.members):
            self.members[member_id].reliable.barrier_reply(dpid, message)

    def role_status(self, dpid: str, message) -> None:
        current = self.switch_truth.get(dpid)
        if current is None or message.generation > current[1]:
            self.switch_truth[dpid] = (message.master_id, message.generation)
        if message.generation > self.generation.get(dpid, 0):
            self.generation[dpid] = message.generation

    def error(self, dpid: str, message) -> None:
        if getattr(message, "code", "") == "role_stale":
            self.stale_role_errors += 1
            self.log_event("role-stale", dpid=dpid)

    # ------------------------------------------------------------------
    # Role handoff
    # ------------------------------------------------------------------
    def initiate_handoff(self, dpid: str, target_id: str, reason: str) -> None:
        member = self.members.get(target_id)
        if member is None or not member.alive:
            return
        generation = self.generation.get(dpid, 0) + 1
        self.generation[dpid] = generation
        decided_at = self.sim.now
        self.handoff_inflight[dpid] = (target_id, generation, decided_at, reason)
        self.bus.broadcast(target_id, ("assign", dpid, target_id, generation))
        member.assignment_view[dpid] = (target_id, generation)
        self.log_event("role-assign", dpid=dpid, master=target_id,
                       generation=generation, reason=reason)
        role_mod = RoleMod(master_id=target_id, generation=generation)
        member.reliable.send(
            dpid, [role_mod], key=("role", dpid),
            on_ack=lambda d=dpid, m=target_id, g=generation:
                self._role_acked(d, m, g),
            on_abandon=lambda d=dpid, m=target_id, g=generation:
                self._role_abandoned(d, m, g),
        )

    def _role_acked(self, dpid: str, master_id: str, generation: int) -> None:
        inflight = self.handoff_inflight.get(dpid)
        if inflight is None or inflight[1] != generation:
            return  # a newer handoff superseded this one
        _target, _gen, decided_at, reason = inflight
        del self.handoff_inflight[dpid]
        now = self.sim.now
        previous = self.acked_master.get(dpid)
        self.acked_master[dpid] = master_id
        self._m_handoffs.inc()
        if reason == "failover" and dpid in self.crash_time:
            window = now - self.crash_time.pop(dpid)
            self.failover_windows.append(window)
            self._h_failover.observe(window)
        elif reason in ("rebalance", "scale-down"):
            latency = now - decided_at
            self.migration_latencies.append(latency)
            self._h_migration.observe(latency)
        orphan_t0 = self.orphan_since.pop(dpid, None)
        self.log_event("role-acked", dpid=dpid, master=master_id,
                       generation=generation, reason=reason,
                       previous=previous or "",
                       orphaned_for=round(now - orphan_t0, 9)
                       if orphan_t0 is not None else 0.0)
        member = self.members.get(master_id)
        if member is not None and member.alive:
            if reason in ("failover", "assign"):
                member.reclaim_dead_flows(dpid)
            self._drain_orphans(dpid, member)

    def _role_abandoned(self, dpid: str, master_id: str, generation: int) -> None:
        inflight = self.handoff_inflight.get(dpid)
        if inflight is not None and inflight[1] == generation:
            del self.handoff_inflight[dpid]
        self.log_event("role-abandoned", dpid=dpid, master=master_id,
                       generation=generation)

    def _drain_orphans(self, dpid: str, member: PoolMember) -> None:
        kept: List[Tuple[str, object]] = []
        drained = 0
        for entry in self._orphan_buffer:
            if entry[0] == dpid:
                member.handle_packet_in(dpid, entry[1])
                drained += 1
            else:
                kept.append(entry)
        self._orphan_buffer = kept
        if drained:
            self.drained += drained
            self._m_drained.inc(drained)
            self.log_event("orphan-drain", dpid=dpid, member=member.id,
                           count=drained)

    # ------------------------------------------------------------------
    # Elasticity (chaos + autoscale entry points)
    # ------------------------------------------------------------------
    def spawn_member(self) -> PoolMember:
        member = self._create_member()
        member.last_leader_beat = self.sim.now
        member.start()
        self.live_gauge_update()
        self.log_event("member-spawn", member=member.id)
        return member

    def crash_member(self, member_id: str) -> None:
        member = self.members.get(member_id)
        if member is None or not member.alive:
            return
        member.halt()
        now = self.sim.now
        for dpid in sorted(self.switch_ids):
            if self.acked_master.get(dpid) == member_id:
                self.crash_time[dpid] = now
                self.orphan_since.setdefault(dpid, now)
        self.live_gauge_update()
        self.log_event("member-crash", member=member_id)

    def restore_member(self, member_id: str) -> None:
        member = self.members.get(member_id)
        if member is None or member.alive:
            return
        member.resume()
        self.live_gauge_update()
        self.log_event("member-restore", member=member_id)

    # ------------------------------------------------------------------
    # Shared measurement
    # ------------------------------------------------------------------
    def live_member_count(self) -> int:
        return sum(1 for m in self.members.values()
                   if m.alive and not m.draining)

    def live_gauge_update(self) -> None:
        self._g_live.set(float(self.live_member_count()))

    def member_switch_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for dpid, master in self.acked_master.items():
            counts[master] = counts.get(master, 0) + 1
        return counts

    def take_pps_window(self, now: float) -> float:
        """Pool-wide Packet-In rate since the last call (leader tick)."""
        since = self._pps_since if self._pps_since is not None else now
        span = now - since
        pps = self._pps_count / span if span > 0 else 0.0
        self._pps_count = 0
        self._pps_since = now
        return pps

    def take_load_window(self) -> Dict[str, int]:
        """Per-dpid Packet-In counts since the last rebalance tick."""
        counts = self._window_counts
        self._window_counts = {}
        return counts

    # ------------------------------------------------------------------
    # Introspection / determinism units
    # ------------------------------------------------------------------
    def log_event(self, event: str, **detail: object) -> None:
        entry: Dict[str, object] = {"t": round(self.sim.now, 9),
                                    "event": event}
        for key in sorted(detail):
            entry[key] = detail[key]
        self.events.append(entry)
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant(f"pool.{event}", track="pool", **{
                k: v for k, v in entry.items() if k not in ("t", "event")})

    def events_jsonl(self) -> str:
        """The pool event log as JSON lines — byte-identical for equal
        seeds (the CI pool job's determinism comparison unit)."""
        return "\n".join(json.dumps(e, sort_keys=False) for e in self.events)

    def master_beliefs(self, dpid: str) -> List[str]:
        """Live members currently believing they master ``dpid``."""
        out = []
        for member_id in sorted(self.members):
            member = self.members[member_id]
            if not member.alive:
                continue
            view = member.assignment_view.get(dpid)
            if view is not None and view[0] == member_id:
                out.append(member_id)
        return out
