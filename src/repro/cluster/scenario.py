"""The canonical controller-pool scenarios: chaos and autoscale.

Shared by the ``scotch-repro pool`` CLI command, the pool test-suite
and ``benchmarks/bench_pool_scaling.py`` so they all measure the same
thing: a pool of controller members fronting a set of switches under
fabricated Packet-In load, with the pool fault classes
(docs/cluster.md) injected on a fixed timeline, the invariant checker
(single-master, bounded orphan windows, exactly-once flow setup)
watching throughout.

The deployment here is control-plane only — switches carry no data
plane, the traffic driver fabricates Packet-Ins straight into each
switch's control channel — so a run isolates exactly the machinery the
pool adds: election, role handoff, orphan buffering, autoscaling and
EASM rebalancing.  The full Scotch data-plane pipeline stays on the
single-controller deployment, which never builds a pool
(``ScotchConfig.controllers == 1``).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.pool import ControllerPool, pool_grace
from repro.controller.controller import OpenFlowController
from repro.core.config import ScotchConfig
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, Violation
from repro.faults.plan import FaultPlan
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.openflow.messages import PacketIn
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.switch.profiles import OPEN_VSWITCH
from repro.switch.switch import VSwitch


def pool_chaos_config(controllers: int = 3) -> ScotchConfig:
    """Fast pool knobs so a short run exercises full lease-expiry ->
    election -> handoff cycles several times over."""
    return ScotchConfig(
        controllers=controllers,
        pool_min_controllers=1,
        pool_max_controllers=max(4, controllers),
        pool_lease_interval=0.25,
        pool_lease_timeout=0.75,
        pool_election_timeout=0.5,
        pool_bus_delay=0.005,
        pool_rebalance_interval=0.5,
        heartbeat_interval=0.25,
        heartbeat_miss_limit=2,
        reliable_install_timeout=0.2,
        reliable_install_timeout_cap=1.0,
        reliable_install_max_retries=3,
    )


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------
@dataclass
class PoolDeployment:
    """Handles to everything in the pool deployment."""

    sim: Simulator
    network: Network
    controller: OpenFlowController
    pool: ControllerPool
    switches: List[VSwitch]
    config: ScotchConfig


def build_pool_deployment(
    seed: int = 0,
    switches: int = 6,
    config: Optional[ScotchConfig] = None,
) -> PoolDeployment:
    """Build a pool-managed control plane: N switches, one shared
    frontend controller, a :class:`ControllerPool` of
    ``config.controllers`` members."""
    if switches < 1:
        raise ValueError("need at least one switch")
    config = config or pool_chaos_config()
    sim = Simulator(seed=seed)
    network = Network(sim)
    nodes = [network.add(VSwitch(sim, f"sw{i}", OPEN_VSWITCH))
             for i in range(switches)]
    controller = OpenFlowController(sim, network)
    for node in nodes:
        controller.register_switch(node)
    pool = ControllerPool(config)
    controller.add_app(pool)
    for node in nodes:
        pool.manage(node.name)
    return PoolDeployment(sim=sim, network=network, controller=controller,
                          pool=pool, switches=nodes, config=config)


# ----------------------------------------------------------------------
# Traffic: fabricated Packet-Ins, deterministic (no RNG draws)
# ----------------------------------------------------------------------
class PoolTraffic:
    """Drives Packet-Ins into the switches' control channels.

    Fully deterministic: fixed inter-arrival (``1 / rate_fps``),
    round-robin across switches, flow five-tuples cycling through
    ``flows_per_switch`` source ports per switch — so repeated packets
    of the same flow exercise the owner-dedup path and new ports
    exercise fresh installs."""

    def __init__(self, sim: Simulator, switches: Sequence[VSwitch],
                 flows_per_switch: int = 64):
        if not switches:
            raise ValueError("need at least one switch to drive")
        self.sim = sim
        self.switches = list(switches)
        self.flows_per_switch = flows_per_switch
        self.emitted = 0

    def start(self, at: float, stop_at: float, rate_fps: float) -> None:
        """Emit from absolute sim time ``at`` until ``stop_at``."""
        if rate_fps <= 0 or stop_at <= at:
            raise ValueError("need a positive rate and a non-empty window")
        delay = max(0.0, at - self.sim.now)
        Process(self.sim, self._drive(stop_at, rate_fps), start_delay=delay)

    def _drive(self, stop_at: float, rate_fps: float):
        interval = 1.0 / rate_fps
        index = 0
        while self.sim.now < stop_at:
            switch = self.switches[index % len(self.switches)]
            slot = (index // len(self.switches)) % self.flows_per_switch
            packet = Packet(
                src_ip=f"10.1.{index % len(self.switches)}.1",
                dst_ip="10.0.0.10",
                src_port=1024 + slot,
                dst_port=80,
                created_at=self.sim.now,
            )
            switch.channel.send_to_controller(PacketIn(
                datapath_id=switch.name, packet=packet, in_port=1))
            self.emitted += 1
            index += 1
            yield interval


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
def default_pool_plan(duration: float = 24.0) -> FaultPlan:
    """One of each pool fault class against a 3-member pool: a member
    crash (with restore), a lossy-bus window, a split-brain partition."""
    if duration < 22.0:
        raise ValueError("the default pool plan needs at least 22 s")
    plan = FaultPlan()
    plan.pool_member_crash(4.0, "c1", down_for=6.0)
    plan.pool_election_loss(12.0, loss=0.4, duration=2.0)
    plan.pool_partition(16.0, [["c0"], ["c1", "c2"]], duration=2.0)
    return plan


def randomized_pool_plan(
    rng_registry,
    duration: float,
    members: Sequence[str],
    intensity: float = 1.0,
    stream: str = "pool.faults",
    start: float = 2.0,
) -> FaultPlan:
    """Draw a pool fault timeline from ``rng_registry.stream(stream)``.

    Kept here (not in :meth:`FaultPlan.randomized`) so the pool kinds
    never enter that method's ``rng.choice(KINDS)`` draw sequence — the
    golden chaos fixtures depend on it."""
    from repro.faults.plan import POOL_KINDS

    if duration <= start:
        raise ValueError("duration must exceed the start offset")
    members = sorted(members)
    if len(members) < 2:
        raise ValueError("need at least two pool members to break")
    rng = rng_registry.stream(stream)
    plan = FaultPlan()
    count = max(1, round(3 * intensity))
    window = duration - start
    for _ in range(count):
        at = start + rng.uniform(0.0, window * 0.7)
        kind = rng.choice(POOL_KINDS)
        if kind == "pool_member_crash":
            plan.pool_member_crash(at, rng.choice(members),
                                   down_for=rng.uniform(2.0, window * 0.3))
        elif kind == "pool_election_loss":
            plan.pool_election_loss(at, loss=rng.uniform(0.2, 0.6),
                                    duration=rng.uniform(1.0, 3.0))
        else:  # pool_partition
            split = rng.randint(1, len(members) - 1)
            plan.pool_partition(at, [members[:split], members[split:]],
                                duration=rng.uniform(1.0, 3.0))
    return plan


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class PoolChaosReport:
    """Everything the CLI/tests/benchmark consumers assert or print."""

    seed: int
    duration: float
    controllers: int
    switches: int
    faults_injected: int
    fault_counts: Dict[str, int]
    fault_log_jsonl: str
    pool_events: List[Dict[str, object]]
    pool_events_jsonl: str
    violations: List[Violation]
    invariant_checks: int
    pool_grace: float
    packet_ins_total: int
    packet_ins_handled: int
    orphaned: int
    drained: int
    orphan_dropped: int
    double_installs: int
    stale_role_errors: int
    flow_reclaims: int
    handoffs_acked: int
    elections: int
    failover_windows: List[float]
    migration_latencies: List[float]
    members_live: int
    members_total: int
    acked_master: Dict[str, str]
    bus: Dict[str, int] = field(default_factory=dict)
    # -- health engine (optional) ---------------------------------------
    health_enabled: bool = False
    alert_timeline: List[Dict[str, object]] = field(default_factory=list)
    alert_timeline_jsonl: str = ""
    scorecard: Optional[object] = None

    @property
    def healthy(self) -> bool:
        """No invariant violations, nothing double-handled, every
        managed switch ended the run with a live acked master."""
        return (not self.violations and self.double_installs == 0
                and len(self.acked_master) == self.switches)


def _finish_report(dep: PoolDeployment, injector: FaultInjector,
                   checker: InvariantChecker, duration: float,
                   health_fields: Dict[str, object]) -> PoolChaosReport:
    pool = dep.pool
    handled = sum(m.packet_ins_handled for m in pool.members.values())
    elections = sum(1 for e in pool.events if e["event"] == "leader-elected")
    live_masters = {dpid: master for dpid, master in pool.acked_master.items()
                    if pool.members[master].alive}
    return PoolChaosReport(
        seed=dep.sim.rng.seed,
        duration=duration,
        controllers=dep.config.controllers,
        switches=len(dep.switches),
        faults_injected=injector.injected,
        fault_counts=dict(injector.counts),
        fault_log_jsonl=injector.log_jsonl(),
        pool_events=list(pool.events),
        pool_events_jsonl=pool.events_jsonl(),
        violations=list(checker.violations),
        invariant_checks=checker.checks_run,
        pool_grace=pool_grace(dep.config),
        packet_ins_total=pool.packet_ins_total,
        packet_ins_handled=handled,
        orphaned=pool.orphaned,
        drained=pool.drained,
        orphan_dropped=pool.orphan_dropped,
        double_installs=pool.double_installs,
        stale_role_errors=pool.stale_role_errors,
        flow_reclaims=pool.flow_reclaims,
        handoffs_acked=len([e for e in pool.events
                            if e["event"] == "role-acked"]),
        elections=elections,
        failover_windows=list(pool.failover_windows),
        migration_latencies=list(pool.migration_latencies),
        members_live=pool.live_member_count(),
        members_total=len(pool.members),
        acked_master=live_masters,
        bus={
            "sent": pool.bus.sent,
            "delivered": pool.bus.delivered,
            "dropped": pool.bus.dropped,
            "partition_blocked": pool.bus.partition_blocked,
        },
        **health_fields,
    )


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
def run_pool_chaos(
    seed: int = 1,
    duration: float = 24.0,
    controllers: int = 3,
    switches: int = 6,
    rate_fps: float = 300.0,
    plan: Optional[FaultPlan] = None,
    config: Optional[ScotchConfig] = None,
    invariant_interval: float = 0.5,
    health: bool = False,
    health_interval: float = 0.25,
    detection_tolerance: float = 1.0,
) -> PoolChaosReport:
    """Run the pool chaos scenario and return its report.

    With ``health=True`` a read-only health engine streams the default
    SLI catalog plus :func:`repro.obs.health.pool_slis` through the
    built-in rules plus :func:`repro.obs.rules.pool_rules`, and the
    report gains the alert timeline and a detection scorecard joined
    against the injector's ground truth."""
    from repro.obs import Observability, get_default_obs, observed

    config = config or pool_chaos_config(controllers)
    outer = get_default_obs()
    context = nullcontext()
    if health and not outer.metrics.enabled:
        private = Observability(trace=False, metrics=True)
        if getattr(outer, "enabled", False):
            private.tracer = outer.tracer
            private.profiler = outer.profiler
        context = observed(private)

    with context:
        dep = build_pool_deployment(seed=seed, switches=switches,
                                    config=config)
        plan = plan if plan is not None else default_pool_plan(duration)

        engine = None
        if health:
            from repro.obs.health import HealthEngine, default_slis, pool_slis
            from repro.obs.rules import builtin_rules, pool_rules

            engine = HealthEngine(
                dep.sim, get_default_obs().metrics,
                rules=builtin_rules() + pool_rules(),
                slis=default_slis() + pool_slis(),
                interval=health_interval)
            engine.start()

        traffic = PoolTraffic(dep.sim, dep.switches)
        traffic.start(at=0.5, stop_at=duration - 1.0, rate_fps=rate_fps)

        injector = FaultInjector(dep.sim, dep.network, dep.controller,
                                 plan, pool=dep.pool)
        injector.start()
        checker = InvariantChecker(dep.sim, dep.network, overlay=None,
                                   pool=dep.pool,
                                   grace=pool_grace(config),
                                   interval=invariant_interval)
        checker.start()

        dep.sim.run(until=duration)
        checker.check_now()

    health_fields: Dict[str, object] = {}
    if engine is not None:
        from repro.obs.scorecard import build_scorecard, truth_windows

        engine.stop()
        truth = truth_windows(injector.log, run_end=duration)
        card = build_scorecard(engine.rules, engine.timeline, truth,
                               run_end=duration,
                               tolerance=detection_tolerance)
        health_fields = dict(
            health_enabled=True,
            alert_timeline=list(engine.timeline),
            alert_timeline_jsonl=engine.timeline_jsonl(),
            scorecard=card,
        )

    return _finish_report(dep, injector, checker, duration, health_fields)


def run_pool_autoscale(
    seed: int = 1,
    duration: float = 30.0,
    switches: int = 6,
    base_rate: float = 200.0,
    burst_rate: float = 6000.0,
    burst_start: float = 5.0,
    burst_stop: float = 14.0,
    config: Optional[ScotchConfig] = None,
    invariant_interval: float = 0.5,
) -> PoolChaosReport:
    """The flash-crowd autoscale scenario: the pool starts with ONE
    member; a burst drives pool-wide PPS over the high-water mark, the
    leader spawns members up to the ceiling; after the burst the
    cooldown drains and retires them back toward the floor."""
    config = config or ScotchConfig(
        controllers=1,
        pool_min_controllers=1,
        pool_max_controllers=3,
        pool_lease_interval=0.25,
        pool_lease_timeout=0.75,
        pool_election_timeout=0.5,
        pool_bus_delay=0.005,
        pool_scale_up_pps=1000.0,
        pool_scale_up_hold=0.5,
        pool_scale_down_pps=500.0,
        pool_scale_cooldown=3.0,
        pool_warmup=1.5,
        pool_rebalance_interval=0.5,
        heartbeat_interval=0.25,
        heartbeat_miss_limit=2,
        reliable_install_timeout=0.2,
        reliable_install_timeout_cap=1.0,
        reliable_install_max_retries=3,
    )
    dep = build_pool_deployment(seed=seed, switches=switches, config=config)
    base = PoolTraffic(dep.sim, dep.switches)
    base.start(at=0.5, stop_at=duration - 1.0, rate_fps=base_rate)
    burst = PoolTraffic(dep.sim, dep.switches, flows_per_switch=512)
    burst.start(at=burst_start, stop_at=burst_stop, rate_fps=burst_rate)

    injector = FaultInjector(dep.sim, dep.network, dep.controller,
                             FaultPlan(), pool=dep.pool)
    injector.start()
    checker = InvariantChecker(dep.sim, dep.network, overlay=None,
                               pool=dep.pool, grace=pool_grace(config),
                               interval=invariant_interval)
    checker.start()
    dep.sim.run(until=duration)
    checker.check_now()
    return _finish_report(dep, injector, checker, duration, {})


def peak_live_members(report: PoolChaosReport) -> int:
    """Reconstruct the peak live-member count from the event log."""
    live = report.controllers
    peak = live
    for event in report.pool_events:
        if event["event"] in ("member-spawn", "member-restore"):
            live += 1
        elif event["event"] in ("member-crash", "member-retired"):
            live -= 1
        peak = max(peak, live)
    return peak


def format_pool_report(report: PoolChaosReport) -> str:
    """A human-readable pool report (used by the CLI)."""
    from repro.testbed.report import format_table

    fault_rows = [[kind, count]
                  for kind, count in sorted(report.fault_counts.items())]
    sections = []
    if fault_rows:
        sections.append(format_table(
            ["fault class", "injected"], fault_rows,
            title=f"Pool chaos — seed {report.seed}, {report.duration:.0f}s, "
                  f"{report.controllers} controllers, "
                  f"{report.switches} switches"))
    failover = (f"{max(report.failover_windows):.3f}s max over "
                f"{len(report.failover_windows)}"
                if report.failover_windows else "none")
    migration = (f"{max(report.migration_latencies):.3f}s max over "
                 f"{len(report.migration_latencies)}"
                 if report.migration_latencies else "none")
    sections.append(format_table(
        ["measure", "value"],
        [
            ["packet-ins (total/handled)",
             f"{report.packet_ins_total}/{report.packet_ins_handled}"],
            ["orphaned / drained / dropped",
             f"{report.orphaned}/{report.drained}/{report.orphan_dropped}"],
            ["role handoffs acked", report.handoffs_acked],
            ["elections", report.elections],
            ["failover windows", failover],
            ["migration latencies", migration],
            ["flow reclaims", report.flow_reclaims],
            ["double installs", report.double_installs],
            ["stale RoleMods rejected", report.stale_role_errors],
            ["members (live/total)",
             f"{report.members_live}/{report.members_total}"],
            ["bus sent/delivered/dropped/blocked",
             f"{report.bus['sent']}/{report.bus['delivered']}/"
             f"{report.bus['dropped']}/{report.bus['partition_blocked']}"],
            ["invariant checks / violations",
             f"{report.invariant_checks}/{len(report.violations)}"],
            ["pool grace window (s)", f"{report.pool_grace:.2f}"],
        ],
        title="Pool report"))
    if report.violations:
        sections.append(format_table(
            ["t (s)", "invariant", "detail"],
            [[f"{v.time:.2f}", v.name, v.detail]
             for v in report.violations[:20]],
            title="Invariant violations"))
    if report.scorecard is not None:
        from repro.obs.scorecard import format_scorecard

        sections.append(format_scorecard(report.scorecard))
    verdict = "HEALTHY" if report.healthy else "DEGRADED"
    sections.append(
        f"verdict: {verdict} ({len(report.violations)} violations, "
        f"{report.double_installs} double installs, "
        f"{len(report.acked_master)}/{report.switches} switches mastered)")
    return "\n\n".join(sections)
