"""The controller-pool coordination bus.

Pool members (docs/cluster.md) coordinate — leader-lease beats,
election claims, role assignments — over a message bus modelling the
controllers' east-west management network: fixed one-way delay,
optional probabilistic loss and group partitions (the chaos layer's
``pool_election_loss`` / ``pool_partition`` faults).

Determinism mirrors :class:`~repro.openflow.channel.ControlChannel`:
loss draws come from a dedicated ``pool.bus`` RNG substream created
lazily on first use, so a run that never impairs the bus performs no
draws and stays bit-identical to one where the chaos layer was never
imported.  Delivery checks (liveness, loss, partition membership) run
at *arrival* time, so messages in flight when a member crashes or a
partition lands die exactly like unacked TCP segments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: handler(src_member_id, payload)
Handler = Callable[[str, Tuple[object, ...]], None]


class PoolBus:
    """Member-to-member messaging with delay, loss and partitions."""

    def __init__(self, sim: "Simulator", delay: float):
        if delay < 0:
            raise ValueError("bus delay must be non-negative")
        self.sim = sim
        self.delay = delay
        self._handlers: Dict[str, Handler] = {}
        #: Probability a delivery is dropped (chaos: election loss).
        self.loss = 0.0
        #: member id -> partition group index; empty = fully connected.
        self._partition: Dict[str, int] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.partition_blocked = 0
        self._rng = None  # created lazily on first lossy delivery

    # ------------------------------------------------------------------
    def attach(self, member_id: str, handler: Handler) -> None:
        self._handlers[member_id] = handler

    def detach(self, member_id: str) -> None:
        self._handlers.pop(member_id, None)

    def attached(self, member_id: str) -> bool:
        return member_id in self._handlers

    # ------------------------------------------------------------------
    def broadcast(self, src: str, payload: Tuple[object, ...]) -> None:
        """Deliver ``payload`` to every other attached member."""
        for member_id in sorted(self._handlers):
            if member_id != src:
                self.send(src, member_id, payload)

    def send(self, src: str, dst: str, payload: Tuple[object, ...]) -> None:
        self.sent += 1
        self.sim.schedule(self.delay, self._deliver, src, dst, payload,
                          daemon=True)

    def _deliver(self, src: str, dst: str, payload: Tuple[object, ...]) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            return  # crashed/retired since the send
        if self._partition:
            # Unlisted members sit in the implicit group -1.
            if self._partition.get(src, -1) != self._partition.get(dst, -1):
                self.partition_blocked += 1
                return
        if self.loss:
            if self._rng is None:
                self._rng = self.sim.rng.stream("pool.bus")
            if self._rng.random() < self.loss:
                self.dropped += 1
                return
        self.delivered += 1
        handler(src, payload)

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def set_partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the bus: delivery only within a group.  Members not in
        any group land in one shared implicit group."""
        self._partition = {}
        for index, group in enumerate(groups):
            for member_id in group:
                self._partition[member_id] = index

    def heal_partition(self) -> None:
        self._partition = {}
