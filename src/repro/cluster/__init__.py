"""Elastic multi-controller pool (docs/cluster.md, §beyond-paper).

Scotch's vSwitch overlay removes the data-plane bottleneck; this
package removes the control-plane one: a pool of controller members
with per-switch OpenFlow master/slave roles, deterministic sim-time
leader election, threshold-driven autoscaling and EASM-style load
rebalancing — plus the pool fault classes and invariants that prove
the whole thing heals within bounded windows.
"""

from repro.cluster.bus import PoolBus
from repro.cluster.pool import ControllerPool, PoolMember, pool_grace
from repro.cluster.scenario import (
    PoolChaosReport,
    PoolDeployment,
    PoolTraffic,
    build_pool_deployment,
    default_pool_plan,
    format_pool_report,
    peak_live_members,
    pool_chaos_config,
    randomized_pool_plan,
    run_pool_autoscale,
    run_pool_chaos,
)

__all__ = [
    "PoolBus",
    "ControllerPool",
    "PoolMember",
    "pool_grace",
    "PoolChaosReport",
    "PoolDeployment",
    "PoolTraffic",
    "build_pool_deployment",
    "default_pool_plan",
    "format_pool_report",
    "peak_live_members",
    "pool_chaos_config",
    "randomized_pool_plan",
    "run_pool_autoscale",
    "run_pool_chaos",
]
