"""Sampled telemetry: packet-sampled flow measurement (docs/observability.md).

The paper's §5.3 monitoring loop polls full per-flow stats from every
mesh vSwitch every interval — O(resident rules) control-channel bytes
per vSwitch per poll, the first thing to collapse at the ROADMAP's
50k-vSwitch scale.  This package provides the NetFlow-style
alternative ("Reinventing NetFlow for OpenFlow Software-Defined
Networks", PAPERS.md): deterministic 1-in-N packet sampling at each
vSwitch data path, compact sample-record export, and a controller-side
estimator that scales samples into per-flow packet/byte estimates with
confidence intervals — fed down the unchanged ``stats_reply`` path so
the elephant migrator never knows it is working on estimates.
"""

from repro.telemetry.estimator import FlowEstimate, FlowEstimator
from repro.telemetry.sampler import PacketSampler
from repro.telemetry.service import SamplingStatsService

__all__ = [
    "FlowEstimate",
    "FlowEstimator",
    "PacketSampler",
    "SamplingStatsService",
]
