"""Accuracy/overhead scorecard for sampled telemetry.

Answers the question the sampling knob poses: *how much elephant-
detection quality does each sampling rate buy, at what monitoring
cost?*  One scenario — a spoofed flood keeping the overlay active,
plus a population of known elephants and decoy mid-size mice entering
on the attacked port — is replayed per stats mode with the same seed,
and each replay is scored on:

* **accuracy** — elephant-detection recall/precision against the
  injected ground truth, plus detection and migration latency;
* **overhead** — polls sent, sample reports, flow-stats control-channel
  bytes (the ``stats.bytes.*`` counters) and the controller CPU share
  of monitoring callbacks (engine profiler).

The scorecard is emitted as canonical JSON (digest-stable; versioned
in-payload) and a self-contained HTML report, extending the
:mod:`repro.obs.scorecard` idioms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ScotchConfig
from repro.net.flow import FlowKey, FlowSpec
from repro.obs import Observability, observed
from repro.obs.profiler import EngineProfiler
from repro.obs.scorecard import canonical_json, html_head
from repro.testbed.report import format_table

#: Version of the telemetry scorecard JSON payload.  Deliberately NOT a
#: JSONL schema kind (repro.obs.schema.SCHEMA_VERSIONS): the artifact is
#: one canonical JSON object, versioned in-payload.
TELEMETRY_SCORECARD_VERSION = 1

#: Profiler qualname fragments counted as monitoring work when
#: computing the controller CPU share.
_MONITORING_CALLBACKS = (
    "StatsPoller.",
    "PacketSampler.",
    "SamplingStatsService.",
    "_reply_flow_stats",
)


@dataclass
class TelemetryRunScore:
    """One mode/rate point of the accuracy-vs-overhead trade."""

    mode: str
    #: Sampling period N (0 for pure polling).
    period: int
    true_elephants: int
    flagged: int
    flagged_true: int
    migrations_completed: int
    #: Mean seconds from elephant flow start to its first threshold
    #: crossing in a stats dump (None when nothing was flagged).
    mean_detection_delay: Optional[float]
    #: Mean seconds from elephant flow start to completed migration.
    mean_migration_delay: Optional[float]
    polls_sent: int
    reply_entries: int
    sample_reports: int
    sample_records: int
    estimates_emitted: int
    #: Total flow-measurement control-channel bytes (stats.bytes.*).
    monitoring_bytes: int
    #: Monitoring callbacks' share of total callback wall time.
    controller_cpu_share: float

    @property
    def recall(self) -> float:
        if self.true_elephants == 0:
            return 1.0
        return self.flagged_true / self.true_elephants

    @property
    def precision(self) -> float:
        if self.flagged == 0:
            return 1.0
        return self.flagged_true / self.flagged


@dataclass
class TelemetryScorecard:
    """All runs of one scorecard sweep (first run is the poll baseline)."""

    seed: int
    duration: float
    attack_rate: float
    elephants: int
    mice: int
    elephant_packet_threshold: int
    runs: List[TelemetryRunScore] = field(default_factory=list)

    @property
    def baseline(self) -> Optional[TelemetryRunScore]:
        for run in self.runs:
            if run.mode == "poll":
                return run
        return None

    def byte_reduction(self, run: TelemetryRunScore) -> float:
        """Monitoring-byte reduction factor vs. the poll baseline."""
        baseline = self.baseline
        if baseline is None or run.monitoring_bytes == 0:
            return 0.0
        return baseline.monitoring_bytes / run.monitoring_bytes


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def run_telemetry_point(
    config: ScotchConfig,
    seed: int = 1,
    duration: float = 8.0,
    attack_rate: float = 800.0,
    elephants: int = 8,
    mice: int = 10,
    elephant_packets: int = 600,
    elephant_pps: float = 300.0,
    mouse_packets: int = 100,
    mouse_pps: float = 200.0,
) -> TelemetryRunScore:
    """One measured run of the scorecard scenario under ``config``.

    The spoofed flood (fig. 3's stress shape) congests the edge switch
    so new flows ride the overlay; the elephants and decoy mice enter on
    the attacked port during the flood.  Runs under a private
    metrics-only Observability (the run_chaos idiom), so an
    observability-off caller still gets counters without perturbing the
    process default.
    """
    from repro.testbed.deployment import build_deployment
    from repro.traffic import SpoofedFlood

    private = Observability(trace=False, metrics=True)
    with observed(private):
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, config=config)
        sim = dep.sim
        profiler = EngineProfiler()
        profiler.attach(sim)
        server_ip = dep.servers[0].ip

        flood = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
        flood.start(at=0.5, stop_at=duration)

        elephant_keys: List[FlowKey] = []
        for index in range(elephants):
            key = FlowKey(f"10.99.1.{index + 1}", server_ip, 6, 6000 + index, 80)
            elephant_keys.append(key)
            dep.attacker.start_flow(FlowSpec(
                key=key,
                start_time=1.5 + 0.25 * index,
                size_packets=elephant_packets,
                packet_size=1000,
                rate_pps=elephant_pps,
                batch=5,
            ))
        mouse_keys: List[FlowKey] = []
        for index in range(mice):
            key = FlowKey(f"10.99.2.{index + 1}", server_ip, 6, 7000 + index, 80)
            mouse_keys.append(key)
            dep.attacker.start_flow(FlowSpec(
                key=key,
                start_time=1.75 + 0.25 * index,
                size_packets=mouse_packets,
                packet_size=400,
                rate_pps=mouse_pps,
                batch=5,
            ))

        sim.run(until=duration + 1.0)

        # Ground truth: injected elephants that actually sent past the
        # threshold *and* rode the overlay (only overlay flows are
        # visible to §5.3 monitoring — an elephant admitted straight to
        # a physical path needs no migration).
        threshold = config.elephant_packet_threshold
        sent = dep.attacker.sent_tap.records
        truth = set()
        for key in elephant_keys:
            record = sent.get(key)
            if record is None or record.packets_sent < threshold:
                continue
            info = dep.scotch.flow_db.get(key)
            if info is not None and info.entry_vswitch is not None:
                truth.add(key)
            elif info is not None and info.migrated_at is not None:
                truth.add(key)

        flagged_at = dict(dep.scotch.migrator.elephants_flagged)
        flagged_true = truth & set(flagged_at)
        starts = {
            key: 1.5 + 0.25 * index for index, key in enumerate(elephant_keys)
        }
        detection_delays = [
            flagged_at[key] - starts[key] for key in sorted(flagged_true)
        ]
        migration_delays = []
        for key in sorted(truth):
            info = dep.scotch.flow_db.get(key)
            if info is not None and info.migrated_at is not None:
                migration_delays.append(info.migrated_at - starts[key])

        counters = private.metrics.counters

        def count(name: str) -> int:
            counter = counters.get(name)
            return counter.value if counter is not None else 0

        monitoring_bytes = (
            count("stats.bytes.requests")
            + count("stats.bytes.replies")
            + count("stats.bytes.samples")
        )
        total_wall = sum(s.total_s for s in profiler.callbacks.values())
        monitoring_wall = sum(
            s.total_s
            for name, s in profiler.callbacks.items()
            if any(fragment in name for fragment in _MONITORING_CALLBACKS)
        )

    return TelemetryRunScore(
        mode=config.stats_mode,
        period=config.sampling_period if config.stats_mode in ("sample", "hybrid") else 0,
        true_elephants=len(truth),
        flagged=len(flagged_at),
        flagged_true=len(flagged_true),
        migrations_completed=dep.scotch.migrator.migrations_completed,
        mean_detection_delay=(
            sum(detection_delays) / len(detection_delays)
            if detection_delays else None
        ),
        mean_migration_delay=(
            sum(migration_delays) / len(migration_delays)
            if migration_delays else None
        ),
        polls_sent=count("stats.polls_sent"),
        reply_entries=count("stats.reply_entries"),
        sample_reports=count("stats.sample_reports"),
        sample_records=count("stats.sample_records"),
        estimates_emitted=count("telemetry.estimates_emitted"),
        monitoring_bytes=monitoring_bytes,
        controller_cpu_share=(
            monitoring_wall / total_wall if total_wall > 0 else 0.0
        ),
    )


def run_telemetry_scorecard(
    seed: int = 1,
    duration: float = 8.0,
    attack_rate: float = 800.0,
    elephants: int = 8,
    mice: int = 10,
    periods: Sequence[int] = (10,),
    include_hybrid: bool = False,
    base_config: Optional[ScotchConfig] = None,
    **scenario_kwargs,
) -> TelemetryScorecard:
    """The full sweep: a poll baseline plus one sample run per period
    (and optionally a hybrid run at the first period)."""
    from dataclasses import replace

    base = base_config or ScotchConfig()
    card = TelemetryScorecard(
        seed=seed,
        duration=duration,
        attack_rate=attack_rate,
        elephants=elephants,
        mice=mice,
        elephant_packet_threshold=base.elephant_packet_threshold,
    )
    configs = [replace(base, stats_mode="poll")]
    configs += [
        replace(base, stats_mode="sample", sampling_period=period)
        for period in periods
    ]
    if include_hybrid and periods:
        configs.append(
            replace(base, stats_mode="hybrid", sampling_period=periods[0])
        )
    for config in configs:
        card.runs.append(run_telemetry_point(
            config,
            seed=seed,
            duration=duration,
            attack_rate=attack_rate,
            elephants=elephants,
            mice=mice,
            **scenario_kwargs,
        ))
    return card


# ----------------------------------------------------------------------
# Rendering (canonical JSON / ASCII / HTML)
# ----------------------------------------------------------------------
def _run_payload(card: TelemetryScorecard, run: TelemetryRunScore) -> Dict:
    return {
        "mode": run.mode,
        "period": run.period,
        "true_elephants": run.true_elephants,
        "flagged": run.flagged,
        "flagged_true": run.flagged_true,
        "recall": round(run.recall, 6),
        "precision": round(run.precision, 6),
        "migrations_completed": run.migrations_completed,
        "mean_detection_delay": (
            round(run.mean_detection_delay, 6)
            if run.mean_detection_delay is not None else None
        ),
        "mean_migration_delay": (
            round(run.mean_migration_delay, 6)
            if run.mean_migration_delay is not None else None
        ),
        "polls_sent": run.polls_sent,
        "reply_entries": run.reply_entries,
        "sample_reports": run.sample_reports,
        "sample_records": run.sample_records,
        "estimates_emitted": run.estimates_emitted,
        "monitoring_bytes": run.monitoring_bytes,
        "byte_reduction": round(card.byte_reduction(run), 6),
        "controller_cpu_share": round(run.controller_cpu_share, 6),
    }


def telemetry_scorecard_json(card: TelemetryScorecard) -> str:
    """The scorecard as one canonical JSON object.

    ``controller_cpu_share`` is wall-clock-derived (engine profiler) and
    therefore the one non-deterministic field; everything else is
    bit-stable for equal seeds."""
    payload = {
        "kind": "telemetry_scorecard",
        "version": TELEMETRY_SCORECARD_VERSION,
        "seed": card.seed,
        "duration": card.duration,
        "attack_rate": card.attack_rate,
        "elephants": card.elephants,
        "mice": card.mice,
        "elephant_packet_threshold": card.elephant_packet_threshold,
        "telemetry_runs": [_run_payload(card, run) for run in card.runs],
    }
    return canonical_json(payload)


def _rows(card: TelemetryScorecard) -> List[List[object]]:
    rows = []
    for run in card.runs:
        label = run.mode if run.period == 0 else f"{run.mode} 1/{run.period}"
        rows.append([
            label,
            f"{run.recall:.2f}",
            f"{run.precision:.2f}",
            (f"{run.mean_detection_delay:.2f}s"
             if run.mean_detection_delay is not None else "-"),
            (f"{run.mean_migration_delay:.2f}s"
             if run.mean_migration_delay is not None else "-"),
            run.polls_sent,
            run.sample_reports,
            run.monitoring_bytes,
            (f"{card.byte_reduction(run):.1f}x" if run.mode != "poll" else "1.0x"),
            f"{run.controller_cpu_share * 100:.2f}%",
        ])
    return rows


_HEADERS = ["mode", "recall", "prec", "det delay", "mig delay",
            "polls", "reports", "bytes", "reduction", "cpu share"]


def format_telemetry_scorecard(card: TelemetryScorecard) -> str:
    """ASCII accuracy/overhead table."""
    title = (
        f"Telemetry scorecard — seed {card.seed}, {card.duration:.0f}s, "
        f"flood {card.attack_rate:.0f} fps, {card.elephants} elephants "
        f"(threshold {card.elephant_packet_threshold} pkts), {card.mice} mice"
    )
    return format_table(_HEADERS, _rows(card), title=title)


def render_telemetry_html(path: str, card: TelemetryScorecard) -> None:
    """Self-contained HTML report (shared styling, no JS)."""
    out = [html_head("Scotch telemetry scorecard"),
           "<h1>Sampled-telemetry accuracy / overhead scorecard</h1>",
           f'<p class="legend">seed {card.seed} &middot; '
           f"{card.duration:.0f}s sim &middot; flood {card.attack_rate:.0f} "
           f"fps &middot; {card.elephants} elephants "
           f"(threshold {card.elephant_packet_threshold} packets) &middot; "
           f"{card.mice} decoy mice</p>"]
    out.append("<h2>Runs</h2>")
    out.append("<table><tr>" + "".join(f"<th>{h}</th>" for h in _HEADERS)
               + "</tr>")
    for row in _rows(card):
        out.append("<tr>" + "".join(f"<td>{cell}</td>" for cell in row)
                   + "</tr>")
    out.append("</table>")
    out.append(
        '<p class="legend">reduction = poll-baseline monitoring bytes / '
        "this run's monitoring bytes; cpu share = monitoring callbacks' "
        "share of total callback wall time (profiler; wall-clock derived, "
        "not deterministic).</p>")
    out.append("</body></html>\n")
    with open(path, "w") as handle:
        handle.write("\n".join(out))
