"""Per-vSwitch packet sampling (systematic 1-in-N, seeded random phase).

A :class:`PacketSampler` hangs off a switch's :class:`~repro.switch.
datapath.Datapath` (the ``datapath.sampler`` attribute); the pipeline
calls :meth:`observe` once per packet train before the table walk.  The
disabled cost is a single ``is None`` check — no sampler attribute
draws no randomness and schedules no events, which is what keeps
``stats_mode="poll"`` runs bit-identical to the pre-telemetry seed.

Sampling is *systematic count-based* (sFlow's scheme): every
``period``-th packet is sampled, with the initial countdown drawn from
the switch's own seeded RNG substream so co-located samplers are not
phase-locked.  Packet trains (``packet.count > 1``) are handled exactly:
a train of c packets advances the countdown by c and can contribute
multiple samples.

Accumulated per-flow sample counts are flushed to the controller every
``export_interval`` as one :class:`~repro.openflow.messages.SampleReport`
through the normal control channel (so export pays latency, loss and
byte accounting like any other control traffic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.openflow.messages import SampleRecord, SampleReport
from repro.sim.process import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flow import FlowKey
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator
    from repro.switch.switch import OpenFlowSwitch


class PacketSampler:
    """Samples 1-in-``period`` packets at one vSwitch and exports
    aggregated :class:`SampleRecord` batches to the controller."""

    def __init__(
        self,
        sim: "Simulator",
        switch: "OpenFlowSwitch",
        period: int,
        export_interval: float,
    ):
        if period < 1:
            raise ValueError("sampling period must be >= 1")
        if export_interval <= 0:
            raise ValueError("export interval must be positive")
        self.sim = sim
        self.switch = switch
        self.period = period
        self.export_interval = export_interval
        # The random initial phase is drawn only here — creating a
        # sampler is the first (and only) RNG use, so disabled runs draw
        # nothing and stay bit-identical.
        self._rng = sim.rng.stream(f"sampler:{switch.name}")
        self._countdown = self._rng.randrange(1, period + 1)
        #: Per-flow [samples, sampled_bytes] accumulated since last flush.
        self._pending: Dict["FlowKey", List[int]] = {}
        self._window_start = sim.now
        self.packets_seen = 0
        self.samples_taken = 0
        self.reports_sent = 0
        # Restart-safe export chain (sim.process.PeriodicTimer owns the
        # pending event, so stop()/start() can never double the chain).
        self._timer = PeriodicTimer(sim, export_interval, self._tick)

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _flush_event(self):
        return self._timer.event

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def observe(self, packet: "Packet") -> None:
        """Called by the datapath pipeline for every packet train."""
        count = packet.count
        self.packets_seen += count
        if count < self._countdown:
            self._countdown -= count
            return
        # The train crosses one or more sampling points.
        taken = 1 + (count - self._countdown) // self.period
        self._countdown = self.period - (count - self._countdown) % self.period
        self.samples_taken += taken
        entry = self._pending.get(packet.flow_key)
        if entry is None:
            self._pending[packet.flow_key] = [taken, taken * packet.size]
        else:
            entry[0] += taken
            entry[1] += taken * packet.size

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer.running:
            return
        self._window_start = self.sim.now
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        self.flush()
        self._timer.rearm()

    def flush(self) -> Optional[SampleReport]:
        """Export accumulated records to the controller.

        An empty window still exports a (16-byte) empty report — the
        NetFlow-style timer export doubles as the estimator's liveness
        signal, so ``estimate_staleness`` only grows when the vSwitch,
        the channel or the controller is actually in trouble, not when
        a tenant is merely idle."""
        records = [
            SampleRecord(key=key, samples=counts[0], sampled_bytes=counts[1])
            for key, counts in self._pending.items()
        ]
        self._pending.clear()
        report = SampleReport(
            datapath_id=self.switch.name,
            period=self.period,
            records=records,
            window_start=self._window_start,
            window_end=self.sim.now,
        )
        self._window_start = self.sim.now
        self.switch.channel.send_to_controller(report)
        self.reports_sent += 1
        return report
