"""The mode-selectable flow-measurement service (drop-in for StatsPoller).

``SamplingStatsService`` owns whichever measurement machinery the
configured ``stats_mode`` asks for:

* ``poll``   — exactly the paper's §5.3 loop: it creates and starts an
  unchanged :class:`~repro.controller.stats_service.StatsPoller` and
  nothing else, so default-config runs are event-for-event identical to
  the pre-telemetry behaviour (the golden masters enforce this).
* ``sample`` — attaches a :class:`~repro.telemetry.sampler.PacketSampler`
  to every target vSwitch's datapath, folds the exported
  ``SampleReport``s through a :class:`~repro.telemetry.estimator.
  FlowEstimator`, and *synthesizes* ``FlowStatsReply`` messages from the
  updated estimates — dispatched to every controller app through the
  normal ``stats_reply`` hook, so the elephant migrator (and anything
  else consuming stats) works unmodified on estimates.
* ``hybrid`` — sampling plus a slowed-down full poll
  (``stats_interval * hybrid_poll_multiplier``) to true-up estimates.
* ``off``    — no measurement at all (the overhead-benchmark baseline).

Synthetic replies carry the overlay cookie, the vSwitch flow table id
and an exact five-tuple match — the exact shape the migrator's §5.3
filters expect — with ``packets``/``bytes`` set to the scaled-up
estimates.  They are generated inside the controller, so they cost no
control-channel bytes (the whole point).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional

from repro.controller.stats_service import StatsPoller
from repro.core.config import VSWITCH_FLOW_TABLE, ScotchConfig
from repro.core.migration import OVERLAY_COOKIE
from repro.openflow.messages import FlowStatsEntry, FlowStatsReply, SampleReport
from repro.sim.process import PeriodicTimer
from repro.switch.match import Match
from repro.telemetry.estimator import FlowEstimator
from repro.telemetry.sampler import PacketSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.net.topology import Network

#: Priority stamped on synthetic stats entries (informational only —
#: the migrator keys on cookie/table/match, never priority).
ESTIMATE_PRIORITY = 0


class SamplingStatsService:
    """Flow measurement in the controller, in the configured mode."""

    def __init__(
        self,
        controller: "OpenFlowController",
        network: "Network",
        targets: Callable[[], Iterable[str]],
        config: Optional[ScotchConfig] = None,
    ):
        self.controller = controller
        self.network = network
        self.targets = targets
        self.config = config or ScotchConfig()
        self.mode = self.config.stats_mode
        self.sampling = self.mode in ("sample", "hybrid")

        self.poller: Optional[StatsPoller] = None
        if self.mode == "poll":
            self.poller = StatsPoller(
                controller,
                targets,
                interval=self.config.stats_interval,
                table_id=VSWITCH_FLOW_TABLE,
            )
        elif self.mode == "hybrid":
            self.poller = StatsPoller(
                controller,
                targets,
                interval=self.config.stats_interval
                * self.config.hybrid_poll_multiplier,
                table_id=VSWITCH_FLOW_TABLE,
            )

        self.estimator = FlowEstimator()
        self.samplers: Dict[str, PacketSampler] = {}
        self.reports_received = 0
        self.estimates_emitted = 0
        metrics = controller.sim.obs.metrics
        self._metrics = metrics
        self._m_estimates = metrics.counter("telemetry.estimates_emitted")
        #: Per-dpid staleness gauges (sample/hybrid only, metrics on only)
        #: — the ``estimate_staleness`` SLI aggregates these; under full
        #: polling none exist and the SLI reads 0.0, keeping the
        #: estimator-starvation alert inert.
        self._staleness_gauges: Dict[str, object] = {}
        self._last_ingest: Dict[str, float] = {}
        # Restart-safe housekeeping tick (sample/hybrid only; the timer
        # owns the pending event so stop()/start() can't double chains).
        self._timer = PeriodicTimer(
            controller.sim, self.config.sample_export_interval, self._tick
        )
        self._started = False

    @property
    def _running(self) -> bool:
        return self._started

    @property
    def _tick_event(self):
        return self._timer.event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.poller is not None:
            self.poller.start()
        if self.sampling:
            self._ensure_samplers()
            self._timer.start()

    def stop(self) -> None:
        self._started = False
        if self.poller is not None:
            self.poller.stop()
        self._timer.stop()
        for dpid, sampler in self.samplers.items():
            sampler.stop()
            if dpid in self.network:
                self.network[dpid].datapath.sampler = None

    @property
    def polls_sent(self) -> int:
        return self.poller.polls_sent if self.poller is not None else 0

    # ------------------------------------------------------------------
    # Sampler attachment (dynamic target set, switch restarts)
    # ------------------------------------------------------------------
    def _ensure_samplers(self) -> None:
        current = set()
        now = self.controller.sim.now
        for dpid in self.targets():
            if dpid not in self.network:
                continue
            current.add(dpid)
            sampler = self.samplers.get(dpid)
            if sampler is None:
                sampler = self.samplers[dpid] = PacketSampler(
                    self.controller.sim,
                    self.network[dpid],
                    period=self.config.sampling_period,
                    export_interval=self.config.sample_export_interval,
                )
                sampler.start()
                self._last_ingest.setdefault(dpid, now)
                if self._metrics.enabled and dpid not in self._staleness_gauges:
                    self._staleness_gauges[dpid] = self._metrics.gauge(
                        f"telemetry.{dpid}.estimate_staleness"
                    )
            # Re-assert the datapath hook every pass: a restarted switch
            # may have rebuilt its datapath, and a departed-then-returned
            # target just gets its sampler back.
            self.network[dpid].datapath.sampler = sampler
        for dpid, sampler in self.samplers.items():
            if dpid not in current:
                sampler.stop()
                if dpid in self.network:
                    self.network[dpid].datapath.sampler = None
            elif not sampler._running:
                sampler.start()

    # ------------------------------------------------------------------
    # Report intake -> synthetic stats replies
    # ------------------------------------------------------------------
    def handle_sample_report(self, dpid: str, report: SampleReport) -> None:
        if not self.sampling:
            return
        now = self.controller.sim.now
        self.reports_received += 1
        self._last_ingest[dpid] = now
        updated = self.estimator.ingest(dpid, report, now)
        if not updated:
            return
        entries = [
            FlowStatsEntry(
                match=Match.for_flow(estimate.key),
                priority=ESTIMATE_PRIORITY,
                table_id=VSWITCH_FLOW_TABLE,
                packets=estimate.est_packets,
                bytes=estimate.est_bytes,
                duration=now - estimate.first_seen,
                cookie=OVERLAY_COOKIE,
            )
            for estimate in updated
        ]
        reply = FlowStatsReply(datapath_id=dpid, entries=entries)
        self.estimates_emitted += len(entries)
        self._m_estimates.inc(len(entries))
        # Same app-visible path as a polled reply — but generated inside
        # the controller, so no control-channel bytes are charged.
        for app in self.controller.apps:
            app.stats_reply(dpid, reply)

    # ------------------------------------------------------------------
    # Housekeeping tick (daemon; sample/hybrid only)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._timer.running:
            return
        now = self.controller.sim.now
        self._ensure_samplers()
        for dpid, gauge in self._staleness_gauges.items():
            gauge.set(now - self._last_ingest.get(dpid, now))
        self.estimator.prune(now - 2 * self.config.flow_idle_timeout)
        self._timer.rearm()
