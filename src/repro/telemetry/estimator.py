"""Controller-side flow estimation from packet samples.

Standard 1-in-N inversion (Duffield et al., and the NetFlow literature
cited in PAPERS.md): a flow observed ``s`` times under period-``N``
sampling is estimated at ``s * N`` packets.  For random/systematic
sampling the estimator variance is ``s * N * (N - 1)``, giving the
95% confidence half-width ``1.96 * sqrt(s * N * (N - 1))`` reported on
each estimate.  Relative error shrinks as the flow grows — exactly the
property elephant detection needs: a 200-packet elephant at 1-in-10
yields ~20 samples (±~13% CI), while mice mostly never get sampled and
cost the controller nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flow import FlowKey
    from repro.openflow.messages import SampleReport


@dataclass
class FlowEstimate:
    """Running estimate for one flow at one vSwitch."""

    key: "FlowKey"
    dpid: str
    period: int
    samples: int
    sampled_bytes: int
    first_seen: float
    last_seen: float

    @property
    def est_packets(self) -> int:
        return self.samples * self.period

    @property
    def est_bytes(self) -> int:
        return self.sampled_bytes * self.period

    @property
    def ci95_packets(self) -> float:
        """95% confidence half-width on ``est_packets``."""
        return 1.96 * sqrt(self.samples * self.period * (self.period - 1))

    @property
    def relative_error(self) -> float:
        """CI half-width as a fraction of the estimate (1.0 when empty)."""
        if self.samples == 0:
            return 1.0
        return self.ci95_packets / self.est_packets


class FlowEstimator:
    """Accumulates sample reports into per-(vSwitch, flow) estimates."""

    def __init__(self) -> None:
        self._by_dpid: Dict[str, Dict["FlowKey", FlowEstimate]] = {}
        self.reports_ingested = 0
        self.records_ingested = 0

    def ingest(self, dpid: str, report: "SampleReport", now: float) -> List[FlowEstimate]:
        """Fold one report in; returns the estimates it updated."""
        flows = self._by_dpid.setdefault(dpid, {})
        updated: List[FlowEstimate] = []
        for record in report.records:
            estimate = flows.get(record.key)
            if estimate is None:
                estimate = flows[record.key] = FlowEstimate(
                    key=record.key,
                    dpid=dpid,
                    period=report.period,
                    samples=0,
                    sampled_bytes=0,
                    first_seen=report.window_start,
                    last_seen=now,
                )
            estimate.samples += record.samples
            estimate.sampled_bytes += record.sampled_bytes
            estimate.last_seen = now
            updated.append(estimate)
        self.reports_ingested += 1
        self.records_ingested += len(report.records)
        return updated

    def estimates(self, dpid: str) -> List[FlowEstimate]:
        return list(self._by_dpid.get(dpid, {}).values())

    def get(self, dpid: str, key: "FlowKey") -> FlowEstimate:
        return self._by_dpid.get(dpid, {}).get(key)

    def flow_count(self) -> int:
        return sum(len(flows) for flows in self._by_dpid.values())

    def prune(self, older_than: float) -> int:
        """Drop estimates not refreshed since ``older_than`` (retired
        flows must not hold controller memory forever).  Returns how
        many were dropped."""
        dropped = 0
        for flows in self._by_dpid.values():
            stale = [key for key, est in flows.items() if est.last_seen < older_than]
            for key in stale:
                del flows[key]
            dropped += len(stale)
        return dropped
