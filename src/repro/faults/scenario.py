"""The canonical chaos scenario: faults + traffic + invariants, one run.

Shared by the ``scotch-repro chaos`` CLI command, the chaos soak tests
and the recovery benchmark so they all measure the same thing: a
Scotch-protected deployment under client load and a flood (keeping the
overlay active), with every fault class from docs/robustness.md injected
on a fixed timeline, the invariant checker watching throughout, and the
§3.2 client flow failure fraction evaluated both across the fault window
and in a clean post-recovery window.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ScotchConfig
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, Violation, grace_window
from repro.faults.plan import FaultPlan
from repro.obs.scorecard import FLASH_CROWD, Scorecard, TruthWindow

#: Phase margin between the last fault clearing and the start of the
#: post-recovery measurement window (covers heartbeat detection plus one
#: reliable-install retry round at the chaos config below).
RECOVERY_MARGIN = 1.5


def chaos_config() -> ScotchConfig:
    """The robustness-experiment config: fast failure detection and a
    tight retry budget, so a short simulation exercises full
    detect->refresh->recover cycles several times over."""
    return ScotchConfig(
        heartbeat_interval=0.25,
        heartbeat_miss_limit=2,
        reliable_install_timeout=0.2,
        reliable_install_timeout_cap=1.0,
        reliable_install_max_retries=3,
    )


def default_plan(duration: float = 18.0) -> FaultPlan:
    """One of each fault class, spread over the run (times assume the
    overlay activates by ~2 s, which the flood guarantees)."""
    if duration < 16.0:
        raise ValueError("the default plan needs at least 16 s of run time")
    plan = FaultPlan()
    plan.channel_loss(3.0, "edge", duration=2.5, loss=0.08,
                      duplicate=0.02, jitter=0.5e-3, direction="both")
    plan.ofa_stall(4.0, "mv1_0", duration=1.0)
    plan.vswitch_crash(6.5, "mv0_0", down_for=2.5)
    plan.channel_flap(9.5, "edge", period=0.2, flaps=3)
    plan.controller_outage(11.5, duration=1.0)
    return plan


@dataclass
class ChaosReport:
    """Everything the CLI/soak/benchmark consumers assert or print."""

    seed: int
    duration: float
    faults_injected: int
    fault_counts: Dict[str, int]
    fault_log: List[Dict[str, object]]
    fault_log_jsonl: str
    violations: List[Violation]
    invariant_checks: int
    grace: float
    failure_during_faults: float
    failure_post_recovery: float
    flows_started: int
    failures_detected: int
    recoveries_detected: int
    degraded_refreshes: int
    resyncs: int
    reliable: Dict[str, int] = field(default_factory=dict)
    channel_drops: int = 0
    channel_duplicates: int = 0
    # -- health engine (docs/observability.md#health) -------------------
    health_enabled: bool = False
    alert_timeline: List[Dict[str, object]] = field(default_factory=list)
    alert_timeline_jsonl: str = ""
    sli_series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    truth: List[TruthWindow] = field(default_factory=list)
    scorecard: Optional[Scorecard] = None
    # -- postmortem bundles (docs/observability.md#postmortem-bundles) --
    postmortem_enabled: bool = False
    postmortems: List[Dict[str, object]] = field(default_factory=list)
    postmortems_dropped: int = 0

    @property
    def healthy(self) -> bool:
        return not self.violations and self.failure_post_recovery < 0.05


def run_chaos(
    seed: int = 1,
    duration: float = 18.0,
    client_rate: float = 100.0,
    attack_rate: float = 2000.0,
    plan: Optional[FaultPlan] = None,
    config: Optional[ScotchConfig] = None,
    invariant_interval: float = 0.5,
    health: bool = False,
    rules: Optional[Sequence] = None,
    health_interval: float = 0.25,
    detection_tolerance: float = 1.0,
    postmortem: bool = False,
) -> ChaosReport:
    """Run the chaos scenario and return its report.

    With ``health=True`` a read-only :class:`~repro.obs.health.HealthEngine`
    streams SLIs and alert rules during the run and the report gains the
    alert timeline plus a detection scorecard joining it against the
    injector's ground truth.  The engine never mutates model state, so
    the fault log and the measured outcomes are identical either way
    (``tests/test_health_scorecard.py`` locks this in).

    With ``postmortem=True`` the run also enables causal provenance and
    a flight recorder, and a :class:`~repro.obs.postmortem.PostmortemCollector`
    captures a bundle on every alert firing and invariant violation
    (``report.postmortems``; export with
    :func:`repro.obs.postmortem.export_bundles`).  The collector is
    read-only, so the fault log and outcomes are again unchanged, and
    same-seed bundles are byte-identical.
    """
    from repro.metrics.failure import client_flow_failure_fraction
    from repro.obs import Observability, get_default_obs, observed
    from repro.testbed.deployment import build_deployment
    from repro.traffic import NewFlowSource, SpoofedFlood

    config = config or chaos_config()
    plan = plan if plan is not None else default_plan(duration)

    # The health engine needs a live metrics registry.  Reuse the
    # process-default one when metrics are already on (e.g. CLI
    # --metrics); otherwise install a private metrics-only bundle for
    # the duration of the run, keeping any active tracer/profiler.
    outer = get_default_obs()
    context = nullcontext()
    if health and not outer.metrics.enabled:
        private = Observability(trace=False, metrics=True)
        if getattr(outer, "enabled", False):
            private.tracer = outer.tracer
            private.profiler = outer.profiler
        context = observed(private)

    with context:
        dep = build_deployment(seed=seed, racks=2, servers_per_rack=2,
                               mesh_per_rack=1, backups=1, config=config)
        server_ip = dep.servers[0].ip

        flight = None
        if postmortem and not dep.sim.provenance_enabled:
            # The outer Observability may already have enabled both via
            # causality=/flight=; otherwise instrument this run locally.
            dep.sim.enable_provenance(run=0)
        if postmortem:
            outer_flight = getattr(get_default_obs(), "flight", None)
            if outer_flight is not None:
                flight = outer_flight
            else:
                from repro.obs.flight import FlightRecorder

                flight = FlightRecorder()
                flight.bind(dep.sim, run=0)
                flight.attach_metrics(get_default_obs().metrics)
                tracer = get_default_obs().tracer
                if tracer.enabled and tracer.flight is None:
                    tracer.flight = flight

        engine = None
        if health:
            from repro.obs.health import HealthEngine

            engine = HealthEngine(dep.sim, get_default_obs().metrics,
                                  rules=rules, interval=health_interval)
            engine.start()

        client_start, flood_start = 0.5, 1.0
        traffic_stop = duration - 1.0
        NewFlowSource(dep.sim, dep.client, server_ip, rate_fps=client_rate).start(
            at=client_start, stop_at=traffic_stop)
        # The flood keeps the edge congested, hence the overlay active, so
        # every fault hits a control plane that is actually doing work.
        SpoofedFlood(dep.sim, dep.attacker, server_ip, rate_fps=attack_rate).start(
            at=flood_start, stop_at=traffic_stop)

        injector = FaultInjector(dep.sim, dep.network, dep.controller, plan)
        injector.start()
        checker = InvariantChecker(dep.sim, dep.network, dep.overlay,
                                   scotch=dep.scotch, interval=invariant_interval)
        checker.start()

        collector = None
        if postmortem:
            from repro.obs.postmortem import PostmortemCollector

            collector = PostmortemCollector(
                dep.sim, flight=flight, injector=injector,
                context={
                    "seed": seed, "duration": duration,
                    "client_rate": client_rate, "attack_rate": attack_rate,
                    "scenario": "chaos",
                })
            checker.on_violation = collector.on_violation
            if engine is not None:
                engine.on_transition = collector.on_alert

        dep.sim.run(until=duration)
        checker.check_now()

    fault_start = min((e.time for e in plan), default=0.0)
    fault_end = plan.end_time()
    post_start = min(fault_end + RECOVERY_MARGIN, traffic_stop)
    failure_during = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap,
        start=fault_start, end=fault_end)
    failure_post = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap,
        start=post_start, end=traffic_stop)

    health_fields: Dict[str, object] = {}
    if engine is not None:
        from repro.obs.scorecard import build_scorecard, truth_windows

        engine.stop()
        # The deliberate flood is ground truth for the flash-crowd rule:
        # the fault-free baseline keeps the flood, so its OFA-overload
        # firing is a true positive there too.
        extra = ()
        if attack_rate > 0:
            extra = (TruthWindow(FLASH_CROWD, "edge", flood_start,
                                 traffic_stop),)
        truth = truth_windows(injector.log, run_end=duration, extra=extra)
        card = build_scorecard(engine.rules, engine.timeline, truth,
                               run_end=duration,
                               tolerance=detection_tolerance)
        health_fields = dict(
            health_enabled=True,
            alert_timeline=list(engine.timeline),
            alert_timeline_jsonl=engine.timeline_jsonl(),
            sli_series={name: list(points)
                        for name, points in engine.series.items()},
            truth=list(truth),
            scorecard=card,
        )

    postmortem_fields: Dict[str, object] = {}
    if collector is not None:
        postmortem_fields = dict(
            postmortem_enabled=True,
            postmortems=list(collector.bundles),
            postmortems_dropped=collector.dropped,
        )

    reliable = dep.scotch.reliable
    heartbeat = dep.scotch.heartbeat
    channels = [h.channel for h in dep.controller.datapaths.values()]
    return ChaosReport(
        seed=seed,
        duration=duration,
        faults_injected=injector.injected,
        fault_counts=dict(injector.counts),
        fault_log=list(injector.log),
        fault_log_jsonl=injector.log_jsonl(),
        violations=list(checker.violations),
        invariant_checks=checker.checks_run,
        grace=checker.grace,
        failure_during_faults=failure_during,
        failure_post_recovery=failure_post,
        flows_started=len(dep.client.sent_tap.records),
        failures_detected=heartbeat.failures_detected,
        recoveries_detected=heartbeat.recoveries_detected,
        degraded_refreshes=heartbeat.degraded_refreshes,
        resyncs=dep.scotch.resyncs,
        reliable={
            "sent": reliable.sent if reliable else 0,
            "acked": reliable.acked if reliable else 0,
            "retries": reliable.retries if reliable else 0,
            "abandoned": reliable.abandoned if reliable else 0,
            "superseded": reliable.superseded if reliable else 0,
        },
        channel_drops=sum(c.to_switch_dropped + c.to_controller_dropped
                          for c in channels),
        channel_duplicates=sum(c.to_switch_duplicated + c.to_controller_duplicated
                               for c in channels),
        **health_fields,
        **postmortem_fields,
    )


def format_report(report: ChaosReport) -> str:
    """A human-readable fault/recovery report (used by the CLI)."""
    from repro.testbed.report import format_table

    fault_rows = [[kind, count] for kind, count in sorted(report.fault_counts.items())]
    sections = [
        format_table(
            ["fault class", "injected"], fault_rows,
            title=f"Chaos run — seed {report.seed}, {report.duration:.0f}s, "
                  f"{report.faults_injected} fault actions"),
        format_table(
            ["measure", "value"],
            [
                ["client failure (fault window)", f"{report.failure_during_faults:.4f}"],
                ["client failure (post-recovery)", f"{report.failure_post_recovery:.4f}"],
                ["vSwitch failures detected", report.failures_detected],
                ["vSwitch recoveries detected", report.recoveries_detected],
                ["degraded group refreshes", report.degraded_refreshes],
                ["controller resyncs", report.resyncs],
                ["reliable installs sent/acked", f"{report.reliable['sent']}/{report.reliable['acked']}"],
                ["reliable retries / abandoned", f"{report.reliable['retries']}/{report.reliable['abandoned']}"],
                ["channel msgs dropped/duplicated", f"{report.channel_drops}/{report.channel_duplicates}"],
                ["invariant checks / violations", f"{report.invariant_checks}/{len(report.violations)}"],
                ["recovery grace window (s)", f"{report.grace:.2f}"],
            ],
            title="Recovery report"),
    ]
    if report.violations:
        sections.append(format_table(
            ["t (s)", "invariant", "detail"],
            [[f"{v.time:.2f}", v.name, v.detail] for v in report.violations[:20]],
            title="Invariant violations"))
    if report.scorecard is not None:
        from repro.obs.scorecard import format_scorecard

        sections.append(format_scorecard(report.scorecard))
        firings = sum(s.firings for s in report.scorecard.rules.values())
        sections.append(f"alerts: {len(report.alert_timeline)} transitions, "
                        f"{firings} firings")
    if report.postmortem_enabled:
        dropped = (f" ({report.postmortems_dropped} past the cap)"
                   if report.postmortems_dropped else "")
        sections.append(f"postmortems: {len(report.postmortems)} bundles "
                        f"captured{dropped}")
    verdict = "HEALTHY" if report.healthy else "DEGRADED"
    sections.append(f"verdict: {verdict} (post-recovery failure "
                    f"{report.failure_post_recovery:.2%}, "
                    f"{len(report.violations)} violations)")
    return "\n\n".join(sections)
