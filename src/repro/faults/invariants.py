"""Control-plane invariants checked while chaos runs.

The checker encodes what "self-healing" means operationally: faults may
degrade service, but within a bounded *grace window* — the heartbeat
detection delay plus the reliable-install retry budget — the control
plane must converge back to a consistent state.  Checks:

1. **No stale group buckets.**  A physical switch's Scotch select group
   must not keep a bucket pointing at a dead vSwitch for longer than the
   grace window *when a live replacement exists*.  If every candidate
   (serving set + backups) is dead, the overlay is legitimately degraded
   and the stale bucket is tolerated until something recovers.
2. **Reliable layer bounded.**  In-flight install attempts never exceed
   the configured retry budget, and the pending set stays bounded (no
   unbounded growth from a leak of never-acked sends).
3. **No permanently-pending flows.**  A flow the controller has seen
   must reach a routing decision (physical/overlay/dropped) within the
   grace window.
4. **Scheduler backlogs bounded.**  The per-switch Fig. 7 install queues
   must not grow without bound while faults are active.

When the deployment runs a controller pool (docs/cluster.md), three
pool checks join the list:

5. **Single master per switch.**  At most one live pool member may
   believe it masters a switch; overlapping beliefs must converge
   within the pool grace window while the pool bus is healthy (during
   a bus partition or loss window the overlap is tolerated — the
   generation fencing keeps it harmless — and the clock restarts when
   the bus heals).
6. **Bounded orphan windows.**  A switch whose master died must have a
   new barrier-acked master within the pool grace window (lease expiry
   + election + one reliable handoff budget).
7. **No double-handled flow setups.**  The pool's double-install
   tripwire counter must stay zero.

Violations carry the sim time and a human-readable detail string;
``check_now()`` can also be called once post-recovery for a final
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import SCOTCH_GROUP_ID
from repro.core.overlay import OverlayError
from repro.sim.process import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.app import ScotchApp
    from repro.core.overlay import ScotchOverlay
    from repro.net.topology import Network
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Violation:
    time: float
    name: str
    detail: str


def grace_window(config) -> float:
    """Detection delay + full reliable retry budget (the time the
    control plane is *allowed* to take to heal one fault)."""
    detect = config.heartbeat_interval * (config.heartbeat_miss_limit + 2)
    retry = 0.0
    for attempt in range(config.reliable_install_max_retries + 1):
        retry += min(
            config.reliable_install_timeout * (2 ** attempt),
            config.reliable_install_timeout_cap,
        )
    return detect + retry


class InvariantChecker:
    """Periodic (and on-demand) consistency checks under fault injection."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        overlay: Optional["ScotchOverlay"],
        scotch: Optional["ScotchApp"] = None,
        interval: float = 0.5,
        grace: Optional[float] = None,
        backlog_limit: int = 10_000,
        pool=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.network = network
        self.overlay = overlay
        self.scotch = scotch
        #: The controller pool (docs/cluster.md); enables checks 5-7.
        self.pool = pool
        if pool is not None:
            from repro.cluster.pool import pool_grace

            self._pool_grace = pool_grace(pool.config)
        else:
            self._pool_grace = 0.0
        self._multi_master_since: Dict[str, float] = {}
        self._orphan_flagged: Dict[str, float] = {}
        self._double_installs_seen = 0
        self.interval = interval
        if grace is not None:
            self.grace = grace
        else:
            # Pool-only deployments have no overlay; the pool's config
            # carries the same reliability knobs.
            source = overlay if overlay is not None else pool
            self.grace = grace_window(source.config)
        self.backlog_limit = backlog_limit
        self.violations: List[Violation] = []
        #: Called with each :class:`Violation` as it is recorded — the
        #: postmortem collector's trigger feed.  Observers only.
        self.on_violation: Optional[object] = None
        self.checks_run = 0
        #: (switch, bucket label) -> sim time the stale bucket was first
        #: seen; cleared when the bucket heals.
        self._stale_since: Dict[tuple, float] = {}
        self._pending_since: Dict[object, float] = {}
        # Restart-safe tick chain.  The previous flag-only stop() left
        # the pending tick alive, so a stop()/start() cycle doubled the
        # check chain — the exact bug class PeriodicTimer exists to kill.
        self._timer = PeriodicTimer(sim, interval, self._tick)

    @property
    def _running(self) -> bool:
        return self._timer.running

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        self.check_now()
        self._timer.rearm()

    # ------------------------------------------------------------------
    def check_now(self) -> List[Violation]:
        """Run every check; returns violations added by this call."""
        before = len(self.violations)
        self.checks_run += 1
        if self.overlay is not None:
            self._check_group_buckets()
            self._check_reliable_layer()
        self._check_pending_flows()
        self._check_scheduler_backlog()
        self._check_pool()
        return self.violations[before:]

    def _violate(self, name: str, detail: str) -> None:
        violation = Violation(self.sim.now, name, detail)
        self.violations.append(violation)
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant("invariant.violation", track="faults",
                           invariant=name, detail=detail)
        if self.on_violation is not None:
            self.on_violation(violation)

    # ------------------------------------------------------------------
    def _vswitch_live(self, name: str) -> bool:
        node = self.network.nodes.get(name)
        return node is not None and getattr(node, "alive", True)

    def _check_group_buckets(self) -> None:
        now = self.sim.now
        installed = (self.scotch.groups_installed if self.scotch is not None
                     else self.overlay.active)
        seen = set()
        for switch_name in sorted(installed):
            node = self.network.nodes.get(switch_name)
            if node is None:
                continue
            group = node.datapath.groups.get(SCOTCH_GROUP_ID)
            if group is None:
                continue
            for bucket in group.buckets:
                key = (switch_name, bucket.label)
                if self._vswitch_live(bucket.label) and bucket.label not in self.overlay.dead:
                    continue
                seen.add(key)
                since = self._stale_since.setdefault(key, now)
                if now - since <= self.grace:
                    continue
                # Beyond grace: only a violation if a refresh could
                # actually replace the bucket with live targets.
                try:
                    fresh = self.overlay.group_buckets(switch_name)
                except OverlayError:
                    continue  # backups exhausted -> legitimate degradation
                if all(self._vswitch_live(b.label) for b in fresh):
                    self._violate(
                        "stale-group-bucket",
                        f"{switch_name} group bucket -> {bucket.label} "
                        f"dead for {now - since:.2f}s (> grace {self.grace:.2f}s)",
                    )
        for key in list(self._stale_since):
            if key not in seen:
                del self._stale_since[key]

    def _check_reliable_layer(self) -> None:
        reliable = getattr(self.scotch, "reliable", None) if self.scotch else None
        if reliable is None:
            return
        limit = self.overlay.config.reliable_install_max_retries + 1
        worst = reliable.max_attempts_in_flight()
        if worst > limit:
            self._violate(
                "reliable-retries-unbounded",
                f"an in-flight install has {worst} attempts (limit {limit})",
            )
        pending = reliable.pending()
        bound = max(64, 8 * len(self.scotch.controller.datapaths))
        if pending > bound:
            self._violate(
                "reliable-pending-unbounded",
                f"{pending} unacked installs outstanding (bound {bound})",
            )

    def _check_pending_flows(self) -> None:
        if self.scotch is None:
            return
        from repro.controller.flow_info_db import ROUTE_PENDING

        now = self.sim.now
        for key, info in self.scotch.flow_db._flows.items():
            if info.route != ROUTE_PENDING:
                self._pending_since.pop(key, None)
                continue
            since = self._pending_since.setdefault(key, info.first_seen)
            if now - since > self.grace:
                self._violate(
                    "flow-stuck-pending",
                    f"flow {key} undecided for {now - since:.2f}s "
                    f"(> grace {self.grace:.2f}s)",
                )
                self._pending_since[key] = now  # re-arm, don't spam every tick

    def _check_scheduler_backlog(self) -> None:
        if self.scotch is None:
            return
        for name in sorted(self.scotch.schedulers):
            backlog = self.scotch.schedulers[name].backlog()
            if backlog > self.backlog_limit:
                self._violate(
                    "scheduler-backlog-unbounded",
                    f"{name} install backlog {backlog} (limit {self.backlog_limit})",
                )

    # ------------------------------------------------------------------
    # Controller-pool checks (docs/cluster.md)
    # ------------------------------------------------------------------
    def _check_pool(self) -> None:
        pool = self.pool
        if pool is None:
            return
        now = self.sim.now
        # 5. Single master per switch.  While the bus is impaired the
        # overlap clock resets: split-brain *belief* is expected there
        # and the generation fencing keeps it harmless; what must not
        # happen is overlap persisting on a healthy bus.
        bus_healthy = (pool.bus is not None and not pool.bus._partition
                       and pool.bus.loss == 0.0)
        if not bus_healthy:
            self._multi_master_since.clear()
        else:
            seen = set()
            for dpid in sorted(pool.switch_ids):
                beliefs = pool.master_beliefs(dpid)
                if len(beliefs) <= 1:
                    continue
                seen.add(dpid)
                since = self._multi_master_since.setdefault(dpid, now)
                if now - since > self._pool_grace:
                    self._violate(
                        "pool-multi-master",
                        f"{dpid} claimed by {beliefs} for {now - since:.2f}s "
                        f"(> pool grace {self._pool_grace:.2f}s)",
                    )
                    self._multi_master_since[dpid] = now  # re-arm
            for dpid in list(self._multi_master_since):
                if dpid not in seen:
                    del self._multi_master_since[dpid]
        # 6. Bounded orphan windows.
        for dpid in sorted(pool.orphan_since):
            age = now - pool.orphan_since[dpid]
            flagged = self._orphan_flagged.get(dpid)
            if age > self._pool_grace and flagged != pool.orphan_since[dpid]:
                self._violate(
                    "pool-orphan-window",
                    f"{dpid} masterless for {age:.2f}s "
                    f"(> pool grace {self._pool_grace:.2f}s)",
                )
                self._orphan_flagged[dpid] = pool.orphan_since[dpid]
        # 7. Exactly-once flow setup.
        if pool.double_installs > self._double_installs_seen:
            self._violate(
                "pool-double-install",
                f"{pool.double_installs} duplicate flow installs "
                f"(was {self._double_installs_seen})",
            )
            self._double_installs_seen = pool.double_installs
