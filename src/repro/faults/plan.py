"""Scripted fault timelines.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`s — what
to break, when, and for how long.  Plans are plain data: building one
performs no randomness and touches no simulator, so the same plan can
be replayed against any deployment.  For randomized chaos,
:meth:`FaultPlan.randomized` draws a scripted timeline from a named
:class:`~repro.sim.rng.RngRegistry` substream — the plan is then fixed
before injection starts, so one seed always yields one fault sequence.

Fault classes (the ``kind`` field):

``channel_loss``
    Impair a switch's control channel for a window: message ``loss`` /
    ``duplicate`` probabilities and latency ``jitter``, per direction
    (``direction`` in ``"to_switch"``, ``"to_controller"``, ``"both"``).
``channel_flap``
    Disconnect/reconnect the channel ``flaps`` times, ``period`` seconds
    down then ``period`` seconds up per cycle.
``partition``
    Disconnect the channels of every switch in ``targets`` for
    ``duration`` seconds (a management-network partition).
``vswitch_crash``
    Crash the switch at ``time``; restart it (flow tables wiped, echo
    replies resume) after ``duration`` seconds.  ``duration`` 0 means it
    stays down.
``ofa_stall``
    Freeze the switch's OFA inbound processing for ``duration`` seconds
    (echo replies stop, then resume — no channel event).
``controller_outage``
    The controller goes dark for ``duration`` seconds (every channel
    severed); on expiry the standby takes over and apps providing a
    ``resync()`` hook re-establish their switch state.

Pool fault classes (``POOL_KINDS`` — only meaningful against a
deployment running a controller pool, docs/cluster.md):

``pool_member_crash``
    Crash pool member ``target``; restore it after ``duration`` seconds
    (0 = stays down).  Its switches orphan until the leader promotes a
    new master for each.
``pool_election_loss``
    Drop each pool-bus delivery with probability ``loss`` for
    ``duration`` seconds (lossy east-west management network — beats,
    claims and assigns all suffer).
``pool_partition``
    Split the pool bus into ``groups`` for ``duration`` seconds — the
    split-brain scenario the generation fencing exists for.

``POOL_KINDS`` is deliberately NOT part of ``KINDS``:
:meth:`FaultPlan.randomized` draws ``rng.choice(KINDS)``, so extending
that tuple would shift every randomized plan and break the golden
chaos fixtures.  Pool faults are scripted explicitly (or drawn by
:func:`repro.cluster.scenario.randomized_pool_plan`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

KINDS = (
    "channel_loss",
    "channel_flap",
    "partition",
    "vswitch_crash",
    "ofa_stall",
    "controller_outage",
)

#: Pool-only fault kinds — kept OUT of ``KINDS`` so randomized()'s
#: ``rng.choice(KINDS)`` draw sequence (and with it every golden chaos
#: fixture) is unchanged by the pool's existence.
POOL_KINDS = (
    "pool_member_crash",
    "pool_election_loss",
    "pool_partition",
)

DIRECTIONS = ("to_switch", "to_controller", "both")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` applied to ``target`` at ``time``."""

    time: float
    kind: str
    target: str = ""
    duration: float = 0.0
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind not in KINDS + POOL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {KINDS + POOL_KINDS}")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")

    @property
    def args(self) -> Dict[str, object]:
        return dict(self.params)


class FaultPlan:
    """A timeline of fault events, kept sorted by injection time."""

    def __init__(self, events: Optional[Sequence[FaultEvent]] = None):
        self._events: List[FaultEvent] = sorted(
            events or (), key=lambda e: (e.time, e.kind, e.target)
        )

    # ------------------------------------------------------------------
    # Builders (all return self for chaining)
    # ------------------------------------------------------------------
    def _add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        self._events.sort(key=lambda e: (e.time, e.kind, e.target))
        return self

    def channel_loss(
        self,
        at: float,
        target: str,
        duration: float,
        loss: float = 0.05,
        duplicate: float = 0.0,
        jitter: float = 0.0,
        direction: str = "both",
    ) -> "FaultPlan":
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        return self._add(FaultEvent(
            at, "channel_loss", target, duration,
            params=(("loss", loss), ("duplicate", duplicate),
                    ("jitter", jitter), ("direction", direction)),
        ))

    def channel_flap(self, at: float, target: str, period: float = 0.5,
                     flaps: int = 3) -> "FaultPlan":
        if period <= 0 or flaps < 1:
            raise ValueError("need positive period and at least one flap")
        return self._add(FaultEvent(
            at, "channel_flap", target, duration=2 * period * flaps,
            params=(("period", period), ("flaps", flaps)),
        ))

    def partition(self, at: float, targets: Sequence[str], duration: float) -> "FaultPlan":
        if not targets:
            raise ValueError("partition needs at least one target")
        return self._add(FaultEvent(
            at, "partition", ",".join(targets), duration,
            params=(("targets", tuple(targets)),),
        ))

    def vswitch_crash(self, at: float, target: str, down_for: float = 0.0) -> "FaultPlan":
        return self._add(FaultEvent(at, "vswitch_crash", target, down_for))

    def ofa_stall(self, at: float, target: str, duration: float) -> "FaultPlan":
        if duration <= 0:
            raise ValueError("stall duration must be positive")
        return self._add(FaultEvent(at, "ofa_stall", target, duration))

    def controller_outage(self, at: float, duration: float) -> "FaultPlan":
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        return self._add(FaultEvent(at, "controller_outage", "controller", duration))

    # -- pool faults (docs/cluster.md) ---------------------------------
    def pool_member_crash(self, at: float, member: str,
                          down_for: float = 0.0) -> "FaultPlan":
        return self._add(FaultEvent(at, "pool_member_crash", member, down_for))

    def pool_election_loss(self, at: float, loss: float,
                           duration: float) -> "FaultPlan":
        if not 0 < loss <= 1:
            raise ValueError("pool election loss must be in (0, 1]")
        if duration <= 0:
            raise ValueError("pool election loss duration must be positive")
        return self._add(FaultEvent(
            at, "pool_election_loss", "pool-bus", duration,
            params=(("loss", loss),),
        ))

    def pool_partition(self, at: float, groups: Sequence[Sequence[str]],
                       duration: float) -> "FaultPlan":
        if len(groups) < 2 or any(not g for g in groups):
            raise ValueError("pool partition needs >= 2 non-empty groups")
        if duration <= 0:
            raise ValueError("pool partition duration must be positive")
        target = "|".join(",".join(g) for g in groups)
        return self._add(FaultEvent(
            at, "pool_partition", target, duration,
            params=(("groups", tuple(tuple(g) for g in groups)),),
        ))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def end_time(self) -> float:
        """When the last fault (including its duration) has cleared."""
        return max((e.time + e.duration for e in self._events), default=0.0)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self._events}))

    # ------------------------------------------------------------------
    # Randomized construction (seed-deterministic)
    # ------------------------------------------------------------------
    @classmethod
    def randomized(
        cls,
        rng_registry,
        duration: float,
        channel_targets: Sequence[str],
        vswitch_targets: Sequence[str],
        intensity: float = 1.0,
        stream: str = "faults",
        start: float = 1.0,
    ) -> "FaultPlan":
        """Draw a scripted timeline from ``rng_registry.stream(stream)``.

        ``intensity`` scales the expected fault count (~4 * intensity
        over the window).  All draws happen here, up front — injection
        replays the finished plan, so the fault sequence depends only on
        the registry's seed, never on simulation interleaving.
        """
        if duration <= start:
            raise ValueError("duration must exceed the start offset")
        if not channel_targets or not vswitch_targets:
            raise ValueError("need at least one channel and one vswitch target")
        rng = rng_registry.stream(stream)
        plan = cls()
        count = max(1, round(4 * intensity))
        window = duration - start
        for index in range(count):
            at = start + rng.uniform(0.0, window * 0.8)
            kind = rng.choice(KINDS)
            if kind == "channel_loss":
                plan.channel_loss(
                    at, rng.choice(list(channel_targets)),
                    duration=rng.uniform(0.5, window * 0.15),
                    loss=rng.uniform(0.02, 0.15),
                    duplicate=rng.uniform(0.0, 0.05),
                    jitter=rng.uniform(0.0, 2e-3),
                    direction=rng.choice(list(DIRECTIONS)),
                )
            elif kind == "channel_flap":
                plan.channel_flap(
                    at, rng.choice(list(channel_targets)),
                    period=rng.uniform(0.1, 0.5), flaps=rng.randint(2, 5),
                )
            elif kind == "partition":
                size = rng.randint(1, max(1, len(channel_targets) // 2))
                targets = sorted(rng.sample(list(channel_targets), size))
                plan.partition(at, targets, duration=rng.uniform(0.5, 2.0))
            elif kind == "vswitch_crash":
                plan.vswitch_crash(
                    at, rng.choice(list(vswitch_targets)),
                    down_for=rng.uniform(1.0, window * 0.2),
                )
            elif kind == "ofa_stall":
                plan.ofa_stall(
                    at, rng.choice(list(vswitch_targets)),
                    duration=rng.uniform(0.5, 3.0),
                )
            else:  # controller_outage
                plan.controller_outage(at, duration=rng.uniform(0.5, 2.0))
        return plan
