"""Deterministic fault injection and self-healing verification.

See docs/robustness.md.  Importing this package has no effect on a
simulation — faults exist only when a :class:`FaultInjector` is built
and started, and an uninjected run is bit-identical to one where this
package was never imported.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, Violation, grace_window
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.scenario import (
    ChaosReport,
    chaos_config,
    default_plan,
    format_report,
    run_chaos,
)
from repro.obs.scorecard import (
    Scorecard,
    TruthWindow,
    build_scorecard,
    format_scorecard,
    truth_windows,
)

__all__ = [
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "Scorecard",
    "TruthWindow",
    "Violation",
    "build_scorecard",
    "chaos_config",
    "default_plan",
    "format_report",
    "format_scorecard",
    "grace_window",
    "run_chaos",
    "truth_windows",
]
