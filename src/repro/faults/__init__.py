"""Deterministic fault injection and self-healing verification.

See docs/robustness.md.  Importing this package has no effect on a
simulation — faults exist only when a :class:`FaultInjector` is built
and started, and an uninjected run is bit-identical to one where this
package was never imported.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, Violation, grace_window
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.scenario import (
    ChaosReport,
    chaos_config,
    default_plan,
    format_report,
    run_chaos,
)

__all__ = [
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "Violation",
    "chaos_config",
    "default_plan",
    "format_report",
    "grace_window",
    "run_chaos",
]
