"""Replays a :class:`~repro.faults.plan.FaultPlan` against a deployment.

The injector is a pure consumer of simulator primitives the control
plane already exposes — ``ControlChannel.disconnect/reconnect`` and
``set_impairments``, ``OpenFlowSwitch.fail/restart``,
``OpenFlowAgent.stall`` — so it never reaches into private state, and a
run with no injector attached executes exactly the same code paths as
one where this module was never imported.

Every action (injection and clearing) is appended to :attr:`log` as a
dict with stable key order; :meth:`log_jsonl` renders it as JSON lines
for byte-for-byte comparison between runs, which is how the chaos soak
asserts determinism.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import FaultEvent, FaultPlan
from repro.openflow.channel import LinkImpairments

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.net.topology import Network
    from repro.sim.engine import Simulator
    from repro.switch.switch import OpenFlowSwitch


class FaultInjector:
    """Schedules the plan's faults as daemon events and records a log."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        controller: Optional["OpenFlowController"] = None,
        plan: Optional[FaultPlan] = None,
        pool=None,
    ):
        self.sim = sim
        self.network = network
        self.controller = controller
        #: The controller pool (docs/cluster.md), when the deployment
        #: runs one — required by the ``pool_*`` fault kinds.
        self.pool = pool
        self.plan = plan if plan is not None else FaultPlan()
        #: Chronological record of every action taken; stable key order.
        self.log: List[Dict[str, object]] = []
        self.injected = 0
        self.counts: Dict[str, int] = {}
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every plan event (relative to the current sim time)."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        handlers = {
            "channel_loss": self._inject_channel_loss,
            "channel_flap": self._inject_channel_flap,
            "partition": self._inject_partition,
            "vswitch_crash": self._inject_vswitch_crash,
            "ofa_stall": self._inject_ofa_stall,
            "controller_outage": self._inject_controller_outage,
            "pool_member_crash": self._inject_pool_member_crash,
            "pool_election_loss": self._inject_pool_election_loss,
            "pool_partition": self._inject_pool_partition,
        }
        if self.pool is None and any(e.kind.startswith("pool_") for e in self.plan):
            raise ValueError("plan contains pool faults but no pool was given")
        for event in self.plan:
            delay = max(0.0, event.time - self.sim.now)
            self.sim.schedule(delay, handlers[event.kind], event, daemon=True)

    # ------------------------------------------------------------------
    # Target lookup
    # ------------------------------------------------------------------
    def _switch(self, name: str) -> "OpenFlowSwitch":
        node = self.network.nodes.get(name)
        if node is None or not hasattr(node, "channel"):
            raise KeyError(f"no switch named {name!r} in the network")
        return node

    def _all_channels(self):
        if self.controller is not None:
            return [(dpid, handle.channel)
                    for dpid, handle in sorted(self.controller.datapaths.items())]
        return [(name, node.channel)
                for name, node in sorted(self.network.nodes.items())
                if hasattr(node, "channel")]

    # ------------------------------------------------------------------
    # Handlers (one per fault kind)
    # ------------------------------------------------------------------
    def _inject_channel_loss(self, event: FaultEvent) -> None:
        args = event.args
        switch = self._switch(event.target)
        impair = LinkImpairments(
            loss=float(args.get("loss", 0.0)),
            duplicate=float(args.get("duplicate", 0.0)),
            jitter=float(args.get("jitter", 0.0)),
        )
        direction = args.get("direction", "both")
        to_switch = impair if direction in ("to_switch", "both") else None
        to_controller = impair if direction in ("to_controller", "both") else None
        switch.channel.set_impairments(to_switch=to_switch, to_controller=to_controller)
        self._record(event, "inject", loss=impair.loss, duplicate=impair.duplicate,
                     jitter=impair.jitter, direction=direction)
        if event.duration > 0:
            self.sim.schedule(event.duration, self._clear_channel_loss, event, daemon=True)

    def _clear_channel_loss(self, event: FaultEvent) -> None:
        self._switch(event.target).channel.set_impairments(None, None)
        self._record(event, "clear")

    def _inject_channel_flap(self, event: FaultEvent) -> None:
        args = event.args
        period = float(args["period"])
        flaps = int(args["flaps"])
        self._record(event, "inject", period=period, flaps=flaps)
        for index in range(flaps):
            self.sim.schedule(index * 2 * period, self._flap_down, event, daemon=True)
            self.sim.schedule(index * 2 * period + period, self._flap_up, event, daemon=True)

    def _flap_down(self, event: FaultEvent) -> None:
        self._switch(event.target).channel.disconnect()
        self._record(event, "down")

    def _flap_up(self, event: FaultEvent) -> None:
        switch = self._switch(event.target)
        # A flap restores the TCP session, not a dead switch: stay down
        # if the switch itself crashed in the meantime.
        if switch.alive:
            switch.channel.reconnect()
            self._record(event, "up")

    def _inject_partition(self, event: FaultEvent) -> None:
        targets = list(event.args["targets"])
        for name in targets:
            self._switch(name).channel.disconnect()
        self._record(event, "inject", targets=targets)
        if event.duration > 0:
            self.sim.schedule(event.duration, self._heal_partition, event, daemon=True)

    def _heal_partition(self, event: FaultEvent) -> None:
        for name in event.args["targets"]:
            switch = self._switch(name)
            if switch.alive:
                switch.channel.reconnect()
        self._record(event, "clear")

    def _inject_vswitch_crash(self, event: FaultEvent) -> None:
        self._switch(event.target).fail()
        self._record(event, "inject")
        if event.duration > 0:
            self.sim.schedule(event.duration, self._restart_vswitch, event, daemon=True)

    def _restart_vswitch(self, event: FaultEvent) -> None:
        self._switch(event.target).restart()
        self._record(event, "clear")

    def _inject_ofa_stall(self, event: FaultEvent) -> None:
        self._switch(event.target).ofa.stall(event.duration)
        self._record(event, "inject", duration=event.duration)

    def _inject_controller_outage(self, event: FaultEvent) -> None:
        for _dpid, channel in self._all_channels():
            channel.disconnect()
        self._record(event, "inject")
        if event.duration > 0:
            self.sim.schedule(event.duration, self._end_controller_outage, event, daemon=True)

    def _end_controller_outage(self, event: FaultEvent) -> None:
        # Standby takeover: re-establish sessions to every switch that is
        # still running, then let apps resynchronise their switch state.
        for dpid, channel in self._all_channels():
            node = self.network.nodes.get(dpid)
            if node is None or getattr(node, "alive", True):
                channel.reconnect()
        if self.controller is not None:
            for app in self.controller.apps:
                resync = getattr(app, "resync", None)
                if callable(resync):
                    resync()
        self._record(event, "clear")

    # -- pool faults (docs/cluster.md) ---------------------------------
    def _inject_pool_member_crash(self, event: FaultEvent) -> None:
        self.pool.crash_member(event.target)
        self._record(event, "inject")
        if event.duration > 0:
            self.sim.schedule(event.duration, self._restore_pool_member,
                              event, daemon=True)

    def _restore_pool_member(self, event: FaultEvent) -> None:
        self.pool.restore_member(event.target)
        self._record(event, "clear")

    def _inject_pool_election_loss(self, event: FaultEvent) -> None:
        loss = float(event.args["loss"])
        self.pool.bus.loss = loss
        self._record(event, "inject", loss=loss)
        self.sim.schedule(event.duration, self._clear_pool_election_loss,
                          event, daemon=True)

    def _clear_pool_election_loss(self, event: FaultEvent) -> None:
        self.pool.bus.loss = 0.0
        self._record(event, "clear")

    def _inject_pool_partition(self, event: FaultEvent) -> None:
        groups = [list(g) for g in event.args["groups"]]
        self.pool.bus.set_partition(groups)
        self._record(event, "inject", groups=groups)
        self.sim.schedule(event.duration, self._heal_pool_partition,
                          event, daemon=True)

    def _heal_pool_partition(self, event: FaultEvent) -> None:
        self.pool.bus.heal_partition()
        self._record(event, "clear")

    # ------------------------------------------------------------------
    # Record keeping
    # ------------------------------------------------------------------
    def _record(self, event: FaultEvent, phase: str, **detail: object) -> None:
        entry: Dict[str, object] = {
            "t": round(self.sim.now, 9),
            "kind": event.kind,
            "target": event.target,
            "phase": phase,
        }
        for key in sorted(detail):
            entry[key] = detail[key]
        self.log.append(entry)
        if phase == "inject":
            self.injected += 1
            self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
            metrics = self.sim.obs.metrics
            if metrics.enabled:
                metrics.counter(f"faults.{event.kind}").inc()
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant(f"fault.{event.kind}", track="faults",
                           target=event.target, phase=phase)

    def log_jsonl(self) -> str:
        """The fault log as JSON lines — byte-identical for equal seeds.

        Deliberately headerless: this string is the determinism
        comparison unit (chaos soak, golden masters).  File exports get
        the schema header via :meth:`export_jsonl`.
        """
        return "\n".join(json.dumps(entry, sort_keys=False) for entry in self.log)

    def export_jsonl(self, path: str) -> int:
        """Write the fault log to ``path`` behind the ``fault_log``
        schema header; returns the action count."""
        from repro.obs.schema import write_schema_header

        text = self.log_jsonl()
        with open(path, "w") as handle:
            write_schema_header(handle, "fault_log")
            handle.write(text)
            if text:
                handle.write("\n")
        return len(self.log)
