"""OpenFlow actions.

Actions are plain data; :mod:`repro.switch.datapath` interprets them.
The subset implemented is exactly what Scotch's pipelines need: output,
punt-to-controller, group indirection, MPLS push/pop (tunnel + ingress
labels), GRE key set, goto-table, and drop.
"""

from __future__ import annotations

from dataclasses import dataclass


class Action:
    """Marker base class for all actions."""

    __slots__ = ()


@dataclass(frozen=True)
class Output(Action):
    """Forward out a specific port."""

    port_no: int


@dataclass(frozen=True)
class Controller(Action):
    """Punt to the OFA for a Packet-In toward the controller.

    ``reason`` is carried into the Packet-In (``"no_match"`` for table
    misses, ``"action"`` for explicit punts).
    """

    reason: str = "action"


@dataclass(frozen=True)
class Group(Action):
    """Hand the packet to a group-table entry (load balancing)."""

    group_id: int


@dataclass(frozen=True)
class PushMpls(Action):
    """Push an MPLS shim with the given label (becomes outermost)."""

    label: int


@dataclass(frozen=True)
class PopMpls(Action):
    """Pop the outermost MPLS shim; the label is recorded on the packet
    (``popped_labels``) so the OFA can attach it to Packet-In metadata —
    this is how the inner ingress-port label of paper §5.2 survives."""


@dataclass(frozen=True)
class SetGreKey(Action):
    """Encapsulate in GRE with the given key (alternative to MPLS)."""

    key: int


@dataclass(frozen=True)
class PopGre(Action):
    """Remove the outermost GRE header, recording its key."""


@dataclass(frozen=True)
class GotoTable(Action):
    """Continue the pipeline at a later table (OpenFlow 1.1+)."""

    table_id: int


@dataclass(frozen=True)
class Drop(Action):
    """Explicitly discard the packet."""
