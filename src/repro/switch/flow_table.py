"""Flow tables: priority lookup, timeouts, and TCAM capacity.

Lookup semantics follow the OpenFlow spec: the highest-priority matching
entry wins; ties are broken by installation order (older first), which is
deterministic and matches common implementations.

For speed the table keeps two structures:

* a **per-flow index**: entries whose match pins the full five-tuple
  (possibly with extra constraints such as an MPLS label or in_port) are
  bucketed by five-tuple — these are the per-flow rules a reactive
  controller installs by the thousands, and each bucket stays tiny;
* a **label index** over the rest: entries that pin an encapsulation
  label (``mpls_label`` / ``gre_key``) — the overlay's tunnel transit
  and terminal rules, of which a fabric switch carries one per tunnel —
  are bucketed by that exact label value;
* a small **general scan list** for everything else (per-port defaults,
  per-destination delivery rules, table-miss catch-alls), kept sorted
  by priority.

A lookup consults the five-tuple bucket, the packet's label bucket and
the general list (the latter two merged in priority order) and picks
the highest-priority winner, so the indexing never changes semantics
(verified by a property test that compares against a naive full scan).
"""

from __future__ import annotations

import itertools
from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import MplsHeader
from repro.switch.actions import Action
from repro.switch.match import Match, extract_fields

_entry_ids = itertools.count(1)


class TableFullError(Exception):
    """Raised when inserting into a TCAM that is at capacity (§3.3)."""


class FlowEntry:
    """One rule: match + priority + action list + timeouts + counters."""

    __slots__ = (
        "entry_id",
        "match",
        "priority",
        "actions",
        "idle_timeout",
        "hard_timeout",
        "installed_at",
        "last_hit_at",
        "packets",
        "bytes",
        "cookie",
        "notify_removal",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List[Action],
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        installed_at: float = 0.0,
        cookie: Optional[object] = None,
        notify_removal: bool = False,
    ):
        if priority < 0:
            raise ValueError("priority must be non-negative")
        self.entry_id = next(_entry_ids)
        self.match = match
        self.priority = priority
        self.actions = list(actions)
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.installed_at = installed_at
        self.last_hit_at = installed_at
        self.packets = 0
        self.bytes = 0
        self.cookie = cookie
        #: Emit a FlowRemoved toward the controller when this entry
        #: expires (the OpenFlow SEND_FLOW_REM flag).
        self.notify_removal = notify_removal

    def expired(self, now: float) -> bool:
        if self.hard_timeout > 0 and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout > 0 and now - self.last_hit_at >= self.idle_timeout:
            return True
        return False

    def touch(self, now: float, packets: int, nbytes: int) -> None:
        self.last_hit_at = now
        self.packets += packets
        self.bytes += nbytes

    def _beats(self, other: "FlowEntry") -> bool:
        """OpenFlow winner ordering: higher priority, then older entry."""
        return (self.priority, -self.entry_id) > (other.priority, -other.entry_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowEntry #{self.entry_id} p{self.priority} {self.match!r}>"


def _wild_sort_key(entry: FlowEntry) -> Tuple[int, int]:
    """Scan order: priority descending, then installation order."""
    return (-entry.priority, entry.entry_id)


def _label_bucket_key(match: Match) -> Optional[Tuple[str, object]]:
    """The label-index bucket a non-five-tuple match belongs to, or None
    for the general scan list."""
    fields = match.fields
    label = fields.get("mpls_label")
    if label is not None:
        return ("mpls_label", label)
    key = fields.get("gre_key")
    if key is not None:
        return ("gre_key", key)
    return None


class FlowTable:
    """One table of the pipeline, with optional TCAM capacity."""

    def __init__(self, table_id: int = 0, capacity: Optional[int] = None):
        self.table_id = table_id
        self.capacity = capacity
        self._size = 0
        self._indexed: Dict[Tuple, List[FlowEntry]] = {}
        #: All non-five-tuple entries, sorted by ``_wild_sort_key``
        #: (the master list: entries()/remove_where iterate it).
        self._wild: List[FlowEntry] = []
        #: Label-pinning subset of _wild, bucketed by exact label value;
        #: each bucket sorted by ``_wild_sort_key``.
        self._wild_label: Dict[Tuple[str, object], List[FlowEntry]] = {}
        #: The label-free subset of _wild, sorted by ``_wild_sort_key``.
        self._wild_general: List[FlowEntry] = []
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
        #: Invoked with (entry, reason) whenever a timed-out entry is
        #: evicted (lazily during lookup or by an expire() sweep); the
        #: switch wires this to FlowRemoved generation.
        self.on_expired: Optional[Callable[[FlowEntry, str], None]] = None

    # ------------------------------------------------------------------
    # Size / contents
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self.capacity is not None and self._size >= self.capacity

    def entries(self) -> List[FlowEntry]:
        """All live entries (no expiry applied)."""
        out: List[FlowEntry] = []
        for bucket in self._indexed.values():
            out.extend(bucket)
        out.extend(self._wild)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, entry: FlowEntry, now: float = 0.0) -> None:
        """Install a rule.  A rule with an identical match and priority
        replaces the old one (OpenFlow overlap-replace behaviour);
        otherwise a full table raises :class:`TableFullError`."""
        existing = self._find_same(entry.match, entry.priority)
        if existing is not None:
            self._remove_entry(existing)
        elif self.full:
            raise TableFullError(f"table {self.table_id} at capacity {self.capacity}")
        entry.installed_at = now
        entry.last_hit_at = now
        if entry.match.has_five_tuple:
            self._indexed.setdefault(entry.match.five_tuple_key(), []).append(entry)
        else:
            # Keep every scan structure ordered (priority desc, then
            # insertion order); sort keys are unique, so insort lands
            # each entry exactly where a full re-sort would.
            insort(self._wild, entry, key=_wild_sort_key)
            bucket_key = _label_bucket_key(entry.match)
            if bucket_key is None:
                insort(self._wild_general, entry, key=_wild_sort_key)
            else:
                insort(
                    self._wild_label.setdefault(bucket_key, []),
                    entry,
                    key=_wild_sort_key,
                )
        self._size += 1

    def remove(self, match: Match, priority: Optional[int] = None) -> int:
        """Remove entries whose match equals ``match`` (and priority, if
        given).  Returns the number removed."""
        if match.has_five_tuple:
            candidates = list(self._indexed.get(match.five_tuple_key(), ()))
        else:
            # An equal match shares the same label signature, so only
            # its own bucket can hold candidates.
            bucket_key = _label_bucket_key(match)
            if bucket_key is None:
                candidates = list(self._wild_general)
            else:
                candidates = list(self._wild_label.get(bucket_key, ()))
        removed = 0
        for entry in candidates:
            if entry.match == match and (priority is None or entry.priority == priority):
                self._remove_entry(entry)
                removed += 1
        return removed

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        removed = 0
        for entry in self.entries():
            if predicate(entry):
                self._remove_entry(entry)
                removed += 1
        return removed

    def expire(self, now: float) -> List[FlowEntry]:
        """Remove and return all timed-out entries."""
        expired = [e for e in self.entries() if e.expired(now)]
        for entry in expired:
            self._remove_entry(entry)
            self.evictions += 1
            self._notify_expired(entry, now)
        return expired

    def _notify_expired(self, entry: FlowEntry, now: float) -> None:
        if self.on_expired is not None:
            reason = (
                "hard_timeout"
                if entry.hard_timeout > 0 and now - entry.installed_at >= entry.hard_timeout
                else "idle_timeout"
            )
            self.on_expired(entry, reason)

    def _find_same(self, match: Match, priority: int) -> Optional[FlowEntry]:
        if match.has_five_tuple:
            candidates = self._indexed.get(match.five_tuple_key(), ())
        else:
            bucket_key = _label_bucket_key(match)
            if bucket_key is None:
                candidates = self._wild_general
            else:
                candidates = self._wild_label.get(bucket_key, ())
        for entry in candidates:
            if entry.priority == priority and entry.match == match:
                return entry
        return None

    def _remove_entry(self, entry: FlowEntry) -> None:
        if entry.match.has_five_tuple:
            key = entry.match.five_tuple_key()
            bucket = self._indexed.get(key)
            if bucket is None:
                return
            try:
                bucket.remove(entry)
            except ValueError:
                return
            if not bucket:
                del self._indexed[key]
        else:
            try:
                self._wild.remove(entry)
            except ValueError:
                return
            bucket_key = _label_bucket_key(entry.match)
            if bucket_key is None:
                self._wild_general.remove(entry)
            else:
                bucket = self._wild_label[bucket_key]
                bucket.remove(entry)
                if not bucket:
                    del self._wild_label[bucket_key]
        self._size -= 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, packet, in_port: int, now: float) -> Optional[FlowEntry]:
        """Highest-priority live match, with lazy expiry of the indexed
        candidates it inspects.  Updates counters on the winner.

        Hot path: the five-tuple key is built straight from the packet
        attributes and the full field view (``extract_fields``) is only
        materialized if some candidate actually constrains a non-five-
        tuple field — for an indexed entry the bucket key *is* the
        five-tuple, so only its ``_extra_items`` need checking, and the
        timeout/winner checks are inlined (no per-candidate calls).
        Non-indexed candidates come from the packet's label bucket and
        the general list, merged in scan order — entries pinning a
        *different* label can never match and are never visited.
        """
        self.lookups += 1
        best: Optional[FlowEntry] = None
        fields = None

        bucket = self._indexed.get(
            (packet.src_ip, packet.dst_ip, packet.proto, packet.src_port, packet.dst_port)
        )
        if bucket:
            for entry in (bucket[0],) if len(bucket) == 1 else list(bucket):
                hard = entry.hard_timeout
                idle = entry.idle_timeout
                if (hard > 0.0 and now - entry.installed_at >= hard) or (
                    idle > 0.0 and now - entry.last_hit_at >= idle
                ):
                    self._remove_entry(entry)
                    self.evictions += 1
                    self._notify_expired(entry, now)
                    continue
                extras = entry.match._extra_items
                if extras:
                    if fields is None:
                        fields = extract_fields(packet, in_port)
                    get = fields.get
                    matched = True
                    for name, wanted in extras:
                        if get(name) != wanted:
                            matched = False
                            break
                    if not matched:
                        continue
                if best is None or (entry.priority, -entry.entry_id) > (
                    best.priority, -best.entry_id
                ):
                    best = entry

        general = self._wild_general
        labelled: Optional[List[FlowEntry]] = None
        if self._wild_label:
            encap = packet.encap
            if encap:
                outer = encap[-1]
                if type(outer) is MplsHeader:
                    labelled = self._wild_label.get(("mpls_label", outer.label))
                else:
                    labelled = self._wild_label.get(("gre_key", outer.key))
        # Merge the two sorted lists in scan order (priority desc, then
        # installation order) — identical visiting order to the old
        # single-list scan, minus the impossible label candidates.
        gi, gn = 0, len(general)
        li, ln = 0, (len(labelled) if labelled else 0)
        while gi < gn or li < ln:
            if gi < gn:
                entry = general[gi]
                if li < ln:
                    other = labelled[li]
                    if (other.priority, -other.entry_id) > (entry.priority, -entry.entry_id):
                        entry = other
                        li += 1
                    else:
                        gi += 1
                else:
                    gi += 1
            else:
                entry = labelled[li]
                li += 1
            if best is not None:
                # Once the current winner beats the cursor nothing
                # better follows in either list.
                priority = entry.priority
                if priority < best.priority or (
                    priority == best.priority and entry.entry_id > best.entry_id
                ):
                    break
            hard = entry.hard_timeout
            idle = entry.idle_timeout
            if (hard > 0.0 and now - entry.installed_at >= hard) or (
                idle > 0.0 and now - entry.last_hit_at >= idle
            ):
                continue  # removed by the next expire() sweep
            items = entry.match._items
            if items:
                if fields is None:
                    fields = extract_fields(packet, in_port)
                get = fields.get
                matched = True
                for name, wanted in items:
                    if get(name) != wanted:
                        matched = False
                        break
                if not matched:
                    continue
            best = entry
            break

        if best is not None:
            self.hits += 1
            count = packet.count
            best.last_hit_at = now
            best.packets += count
            best.bytes += packet.size * count
        return best
