"""Flow tables: priority lookup, timeouts, and TCAM capacity.

Lookup semantics follow the OpenFlow spec: the highest-priority matching
entry wins; ties are broken by installation order (older first), which is
deterministic and matches common implementations.

For speed the table keeps two structures:

* a **per-flow index**: entries whose match pins the full five-tuple
  (possibly with extra constraints such as an MPLS label or in_port) are
  bucketed by five-tuple — these are the per-flow rules a reactive
  controller installs by the thousands, and each bucket stays tiny;
* a small **scan list** for everything else (per-port defaults, tunnel
  label rules, per-destination delivery rules), kept sorted by priority.

A lookup consults both and picks the higher-priority winner, so the
optimization never changes semantics (verified by a property test that
compares against a naive full scan).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.switch.actions import Action
from repro.switch.match import FIVE_TUPLE, Match, extract_fields

_entry_ids = itertools.count(1)


class TableFullError(Exception):
    """Raised when inserting into a TCAM that is at capacity (§3.3)."""


class FlowEntry:
    """One rule: match + priority + action list + timeouts + counters."""

    __slots__ = (
        "entry_id",
        "match",
        "priority",
        "actions",
        "idle_timeout",
        "hard_timeout",
        "installed_at",
        "last_hit_at",
        "packets",
        "bytes",
        "cookie",
        "notify_removal",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List[Action],
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        installed_at: float = 0.0,
        cookie: Optional[object] = None,
        notify_removal: bool = False,
    ):
        if priority < 0:
            raise ValueError("priority must be non-negative")
        self.entry_id = next(_entry_ids)
        self.match = match
        self.priority = priority
        self.actions = list(actions)
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.installed_at = installed_at
        self.last_hit_at = installed_at
        self.packets = 0
        self.bytes = 0
        self.cookie = cookie
        #: Emit a FlowRemoved toward the controller when this entry
        #: expires (the OpenFlow SEND_FLOW_REM flag).
        self.notify_removal = notify_removal

    def expired(self, now: float) -> bool:
        if self.hard_timeout > 0 and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout > 0 and now - self.last_hit_at >= self.idle_timeout:
            return True
        return False

    def touch(self, now: float, packets: int, nbytes: int) -> None:
        self.last_hit_at = now
        self.packets += packets
        self.bytes += nbytes

    def _beats(self, other: "FlowEntry") -> bool:
        """OpenFlow winner ordering: higher priority, then older entry."""
        return (self.priority, -self.entry_id) > (other.priority, -other.entry_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowEntry #{self.entry_id} p{self.priority} {self.match!r}>"


class FlowTable:
    """One table of the pipeline, with optional TCAM capacity."""

    def __init__(self, table_id: int = 0, capacity: Optional[int] = None):
        self.table_id = table_id
        self.capacity = capacity
        self._size = 0
        self._indexed: Dict[Tuple, List[FlowEntry]] = {}
        self._wild: List[FlowEntry] = []
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
        #: Invoked with (entry, reason) whenever a timed-out entry is
        #: evicted (lazily during lookup or by an expire() sweep); the
        #: switch wires this to FlowRemoved generation.
        self.on_expired: Optional[Callable[[FlowEntry, str], None]] = None

    # ------------------------------------------------------------------
    # Size / contents
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self.capacity is not None and self._size >= self.capacity

    def entries(self) -> List[FlowEntry]:
        """All live entries (no expiry applied)."""
        out: List[FlowEntry] = []
        for bucket in self._indexed.values():
            out.extend(bucket)
        out.extend(self._wild)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, entry: FlowEntry, now: float = 0.0) -> None:
        """Install a rule.  A rule with an identical match and priority
        replaces the old one (OpenFlow overlap-replace behaviour);
        otherwise a full table raises :class:`TableFullError`."""
        existing = self._find_same(entry.match, entry.priority)
        if existing is not None:
            self._remove_entry(existing)
        elif self.full:
            raise TableFullError(f"table {self.table_id} at capacity {self.capacity}")
        entry.installed_at = now
        entry.last_hit_at = now
        if entry.match.has_five_tuple:
            self._indexed.setdefault(entry.match.five_tuple_key(), []).append(entry)
        else:
            self._wild.append(entry)
            # Keep the scan list ordered: priority desc, then insertion order.
            self._wild.sort(key=lambda e: (-e.priority, e.entry_id))
        self._size += 1

    def remove(self, match: Match, priority: Optional[int] = None) -> int:
        """Remove entries whose match equals ``match`` (and priority, if
        given).  Returns the number removed."""
        if match.has_five_tuple:
            candidates = list(self._indexed.get(match.five_tuple_key(), ()))
        else:
            candidates = list(self._wild)
        removed = 0
        for entry in candidates:
            if entry.match == match and (priority is None or entry.priority == priority):
                self._remove_entry(entry)
                removed += 1
        return removed

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        removed = 0
        for entry in self.entries():
            if predicate(entry):
                self._remove_entry(entry)
                removed += 1
        return removed

    def expire(self, now: float) -> List[FlowEntry]:
        """Remove and return all timed-out entries."""
        expired = [e for e in self.entries() if e.expired(now)]
        for entry in expired:
            self._remove_entry(entry)
            self.evictions += 1
            self._notify_expired(entry, now)
        return expired

    def _notify_expired(self, entry: FlowEntry, now: float) -> None:
        if self.on_expired is not None:
            reason = (
                "hard_timeout"
                if entry.hard_timeout > 0 and now - entry.installed_at >= entry.hard_timeout
                else "idle_timeout"
            )
            self.on_expired(entry, reason)

    def _find_same(self, match: Match, priority: int) -> Optional[FlowEntry]:
        if match.has_five_tuple:
            candidates = self._indexed.get(match.five_tuple_key(), ())
        else:
            candidates = self._wild
        for entry in candidates:
            if entry.priority == priority and entry.match == match:
                return entry
        return None

    def _remove_entry(self, entry: FlowEntry) -> None:
        if entry.match.has_five_tuple:
            key = entry.match.five_tuple_key()
            bucket = self._indexed.get(key)
            if bucket is None:
                return
            try:
                bucket.remove(entry)
            except ValueError:
                return
            if not bucket:
                del self._indexed[key]
        else:
            try:
                self._wild.remove(entry)
            except ValueError:
                return
        self._size -= 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, packet, in_port: int, now: float) -> Optional[FlowEntry]:
        """Highest-priority live match, with lazy expiry of the indexed
        candidates it inspects.  Updates counters on the winner."""
        self.lookups += 1
        fields = extract_fields(packet, in_port)
        best: Optional[FlowEntry] = None

        bucket = self._indexed.get(tuple(fields[f] for f in FIVE_TUPLE))
        if bucket:
            for entry in list(bucket):
                if entry.expired(now):
                    self._remove_entry(entry)
                    self.evictions += 1
                    self._notify_expired(entry, now)
                    continue
                if not entry.match.matches(fields):
                    continue
                if best is None or entry._beats(best):
                    best = entry

        for entry in self._wild:
            if best is not None and not entry._beats(best):
                break  # _wild is sorted by (-priority, entry_id); nothing better follows
            if entry.expired(now):
                continue  # removed by the next expire() sweep
            if entry.match.matches(fields):
                best = entry
                break

        if best is not None:
            self.hits += 1
            best.touch(now, packet.count, packet.size * packet.count)
        return best
