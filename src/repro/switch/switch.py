"""Switch node types.

:class:`OpenFlowSwitch` composes a :class:`~repro.switch.datapath.Datapath`
(hardware) with an :class:`~repro.switch.ofa.OpenFlowAgent` (weak control
CPU) behind a :class:`~repro.openflow.channel.ControlChannel`.

:class:`PhysicalSwitch` and :class:`VSwitch` differ only in their default
profile and in deployment-level roles (Scotch pools vSwitches into the
overlay mesh; physical switches carry the underlay).

Static configuration (the offline tunnel setup of paper §5.6) bypasses
the OFA entirely via :meth:`install_static` / :meth:`add_static_group` —
it happens before traffic and is explicitly not part of the measured
reactive load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.net.node import Node
from repro.openflow.channel import ControlChannel
from repro.switch.actions import Action
from repro.switch.datapath import Datapath
from repro.switch.flow_table import FlowEntry
from repro.switch.group_table import GroupEntry
from repro.switch.match import Match
from repro.switch.ofa import OpenFlowAgent
from repro.switch.profiles import OPEN_VSWITCH, PICA8_PRONTO_3780, SwitchProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator


class OpenFlowSwitch(Node):
    """A complete OpenFlow switch: data plane + OFA + control channel."""

    #: Period of the background expiry sweep that evicts timed-out rules
    #: and emits FlowRemoved for flagged ones; 0 disables the sweep.
    EXPIRY_SWEEP_INTERVAL = 1.0

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        profile: SwitchProfile,
        control_latency: Optional[float] = None,
        hash_seed: int = 0,
        expiry_sweep_interval: Optional[float] = None,
    ):
        super().__init__(sim, name)
        self.profile = profile
        self.alive = True
        self.hash_seed = hash_seed
        self.ofa: Optional[OpenFlowAgent] = None  # set after datapath exists
        self.datapath = Datapath(sim, self)
        latency = control_latency if control_latency is not None else profile.control_latency
        self.channel = ControlChannel(sim, name, latency)
        self.ofa = OpenFlowAgent(sim, self, self.channel)
        for table in self.datapath.tables:
            table.on_expired = self._make_expiry_notifier(table.table_id)
        interval = (
            expiry_sweep_interval
            if expiry_sweep_interval is not None
            else self.EXPIRY_SWEEP_INTERVAL
        )
        self._sweep_interval = interval
        if interval > 0:
            sim.schedule(interval, self._sweep, daemon=True)
        if sim.obs.metrics.enabled:
            # Table-0 (TCAM on hardware) occupancy — the §3.3 bottleneck.
            sim.obs.metrics.gauge(
                f"switch.{name}.table0_entries",
                fn=lambda: len(self.datapath.table(0)),
            )

    def _make_expiry_notifier(self, table_id: int):
        def notify(entry, reason: str) -> None:
            self.ofa.notify_flow_removed(entry, reason, table_id)

        return notify

    def _sweep(self) -> None:
        if self.alive:
            for table in self.datapath.tables:
                table.expire(self.sim.now)
        self.sim.schedule(self._sweep_interval, self._sweep, daemon=True)

    # ------------------------------------------------------------------
    # Data plane entry
    # ------------------------------------------------------------------
    def receive(self, packet: "Packet", in_port: int) -> None:
        if not self.alive:
            return
        self.datapath.submit(packet, in_port)

    # ------------------------------------------------------------------
    # Offline (static) configuration — no OFA involvement
    # ------------------------------------------------------------------
    def install_static(
        self,
        match: Match,
        priority: int,
        actions: List[Action],
        table_id: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: Optional[object] = None,
    ) -> FlowEntry:
        entry = FlowEntry(
            match=match,
            priority=priority,
            actions=actions,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
        )
        self.datapath.table(table_id).insert(entry, now=self.sim.now)
        return entry

    def add_static_group(self, entry: GroupEntry) -> None:
        entry.hash_seed = self.hash_seed
        self.datapath.groups.add(entry)

    # ------------------------------------------------------------------
    # Failure model (paper §5.6)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the switch: stops forwarding and control responses."""
        self.alive = False
        self.channel.disconnect()

    def recover(self) -> None:
        self.alive = True
        self.channel.reconnect()

    def restart(self) -> None:
        """Bring a crashed switch back with its dynamic flow state gone.

        Everything the controller installed reactively (per-flow rules,
        timed rules, cookied rules) is wiped — a restarted process has an
        empty flow table, so those flows re-appear as table misses and
        get re-installed idempotently.  The offline static configuration
        (tunnel label-switching and delivery rules, §5.6) survives, as
        OVSDB-persisted state does across an ovs-vswitchd restart.
        """
        for table in self.datapath.tables:
            table.remove_where(
                lambda e: e.notify_removal
                or e.idle_timeout > 0
                or e.hard_timeout > 0
                or e.cookie is not None
            )
        if self.ofa is not None:
            self.ofa._stalled_until = 0.0
        self.recover()

    def expire_rules(self) -> None:
        """Sweep timed-out entries from every table (called periodically
        by scenarios that rely on idle timeouts)."""
        for table in self.datapath.tables:
            table.expire(self.sim.now)


class PhysicalSwitch(OpenFlowSwitch):
    """A hardware underlay switch (defaults to the Pica8 Pronto model)."""

    def __init__(self, sim: "Simulator", name: str, profile: SwitchProfile = PICA8_PRONTO_3780, **kwargs):
        super().__init__(sim, name, profile, **kwargs)


class VSwitch(OpenFlowSwitch):
    """A software vSwitch on a hypervisor (defaults to the OVS model)."""

    def __init__(self, sim: "Simulator", name: str, profile: SwitchProfile = OPEN_VSWITCH, **kwargs):
        super().__init__(sim, name, profile, **kwargs)
