"""OpenFlow switch substrate.

The switch model mirrors the split the paper measures: a hardware data
plane (:mod:`repro.switch.datapath` — multi-table match pipeline, group
tables, per-profile forwarding budget) and a weak software control agent
(:mod:`repro.switch.ofa` — rate-limited Packet-In generation and rule
insertion, with the data-path interaction of paper Fig. 10).

Calibrated device models for the three switches the paper measured live
in :mod:`repro.switch.profiles`.
"""

from repro.switch.actions import (
    Controller,
    Drop,
    GotoTable,
    Group,
    Output,
    PopMpls,
    PushMpls,
    SetGreKey,
)
from repro.switch.flow_table import FlowEntry, FlowTable, TableFullError
from repro.switch.group_table import Bucket, GroupEntry, GroupTable
from repro.switch.match import Match
from repro.switch.ofa import OpenFlowAgent
from repro.switch.profiles import (
    HOST_VSWITCH,
    HP_PROCURVE_6600,
    IDEAL_SWITCH,
    OPEN_VSWITCH,
    PICA8_PRONTO_3780,
    SwitchProfile,
)
from repro.switch.switch import OpenFlowSwitch, PhysicalSwitch, VSwitch

__all__ = [
    "Bucket",
    "Controller",
    "Drop",
    "FlowEntry",
    "FlowTable",
    "GotoTable",
    "Group",
    "GroupEntry",
    "GroupTable",
    "HOST_VSWITCH",
    "HP_PROCURVE_6600",
    "IDEAL_SWITCH",
    "Match",
    "OPEN_VSWITCH",
    "OpenFlowAgent",
    "OpenFlowSwitch",
    "Output",
    "PICA8_PRONTO_3780",
    "PhysicalSwitch",
    "PopMpls",
    "PushMpls",
    "SetGreKey",
    "SwitchProfile",
    "TableFullError",
    "VSwitch",
]
