"""OpenFlow match semantics.

A :class:`Match` is a set of exact field constraints; any field not
mentioned is a wildcard.  Field values are extracted from the packet's
*current* outermost view, OpenFlow-style: ``mpls_label`` matches the
outermost MPLS shim, ``gre_key`` the outermost GRE key, and the IP/L4
fields match the inner packet (our encapsulations do not hide the inner
tuple from the model — a simplification that matches how the paper's
switches match after decapsulation, and the pipelines built here always
pop encapsulation before matching on the five-tuple).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.packet import Packet

#: The fields a Match may constrain, in canonical order.
MATCH_FIELDS: Tuple[str, ...] = (
    "in_port",
    "src_ip",
    "dst_ip",
    "proto",
    "src_port",
    "dst_port",
    "mpls_label",
    "gre_key",
)

#: Fields forming the exact five-tuple (used for the fast-path index).
FIVE_TUPLE: Tuple[str, ...] = ("src_ip", "dst_ip", "proto", "src_port", "dst_port")


def extract_fields(packet: Packet, in_port: int) -> Dict[str, object]:
    """The header-field view the pipeline matches against."""
    return {
        "in_port": in_port,
        "src_ip": packet.src_ip,
        "dst_ip": packet.dst_ip,
        "proto": packet.proto,
        "src_port": packet.src_port,
        "dst_port": packet.dst_port,
        "mpls_label": packet.outer_mpls_label,
        "gre_key": packet.outer_gre_key,
    }


class Match:
    """An exact-fields-with-wildcards match."""

    __slots__ = ("fields",)

    def __init__(self, **fields: object):
        unknown = set(fields) - set(MATCH_FIELDS)
        if unknown:
            raise ValueError(f"unknown match fields: {sorted(unknown)}")
        self.fields: Dict[str, object] = {k: v for k, v in fields.items() if v is not None}

    @classmethod
    def for_flow(cls, key) -> "Match":
        """Exact five-tuple match for a FlowKey."""
        return cls(
            src_ip=key.src_ip,
            dst_ip=key.dst_ip,
            proto=key.proto,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )

    @classmethod
    def any(cls) -> "Match":
        """The all-wildcard (table-miss) match."""
        return cls()

    @property
    def is_exact_five_tuple(self) -> bool:
        """True when this match pins exactly the five-tuple (no more, no less)."""
        return set(self.fields) == set(FIVE_TUPLE)

    @property
    def has_five_tuple(self) -> bool:
        """True when all five-tuple fields are pinned (possibly with
        extra constraints) — such matches are hash-indexable per flow."""
        return all(f in self.fields for f in FIVE_TUPLE)

    def five_tuple_key(self) -> Tuple:
        return tuple(self.fields[f] for f in FIVE_TUPLE)

    def matches(self, fields: Dict[str, object]) -> bool:
        """Whether a packet field view satisfies every constraint."""
        for name, wanted in self.fields.items():
            if fields.get(name) != wanted:
                return False
        return True

    def matches_packet(self, packet: Packet, in_port: int) -> bool:
        return self.matches(extract_fields(packet, in_port))

    def covers(self, other: "Match") -> bool:
        """True if every packet matching ``other`` also matches self."""
        return all(other.fields.get(k) == v for k, v in self.fields.items())

    def key(self) -> Tuple:
        """A hashable identity (used for rule replacement/removal)."""
        return tuple(sorted(self.fields.items(), key=lambda kv: kv[0]))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"Match({inner})" if inner else "Match(*)"
