"""OpenFlow match semantics.

A :class:`Match` is a set of exact field constraints; any field not
mentioned is a wildcard.  Field values are extracted from the packet's
*current* outermost view, OpenFlow-style: ``mpls_label`` matches the
outermost MPLS shim, ``gre_key`` the outermost GRE key, and the IP/L4
fields match the inner packet (our encapsulations do not hide the inner
tuple from the model — a simplification that matches how the paper's
switches match after decapsulation, and the pipelines built here always
pop encapsulation before matching on the five-tuple).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.packet import MplsHeader, Packet

#: The fields a Match may constrain, in canonical order.
MATCH_FIELDS: Tuple[str, ...] = (
    "in_port",
    "src_ip",
    "dst_ip",
    "proto",
    "src_port",
    "dst_port",
    "mpls_label",
    "gre_key",
)

#: Fields forming the exact five-tuple (used for the fast-path index).
FIVE_TUPLE: Tuple[str, ...] = ("src_ip", "dst_ip", "proto", "src_port", "dst_port")

_FIELD_SET = frozenset(MATCH_FIELDS)
_FIVE_SET = frozenset(FIVE_TUPLE)


def extract_fields(packet: Packet, in_port: int) -> Dict[str, object]:
    """The header-field view the pipeline matches against."""
    encap = packet.encap
    mpls = gre = None
    if encap:
        outer = encap[-1]
        if type(outer) is MplsHeader:
            mpls = outer.label
        else:
            gre = outer.key
    return {
        "in_port": in_port,
        "src_ip": packet.src_ip,
        "dst_ip": packet.dst_ip,
        "proto": packet.proto,
        "src_port": packet.src_port,
        "dst_port": packet.dst_port,
        "mpls_label": mpls,
        "gre_key": gre,
    }


class Match:
    """An exact-fields-with-wildcards match.

    Matches are immutable once built; ``__init__`` precomputes the views
    the datapath fast path consumes on every lookup:

    * ``_items`` — the constraints as a tuple of ``(field, value)`` pairs
      (what :meth:`matches` iterates, without a dict-items allocation);
    * ``has_five_tuple`` / ``_five_key`` — whether the full five-tuple is
      pinned, and its hash key for the :class:`~repro.switch.flow_table.
      FlowTable` per-flow index;
    * ``_extra_items`` — constraints *beyond* the five-tuple.  For an
      entry found via the per-flow index the five-tuple already matched
      by construction, so the lookup only needs to verify these (usually
      none).
    """

    __slots__ = ("fields", "_items", "_extra_items", "has_five_tuple", "_five_key")

    def __init__(self, **fields: object):
        if not _FIELD_SET.issuperset(fields):
            unknown = set(fields) - _FIELD_SET
            raise ValueError(f"unknown match fields: {sorted(unknown)}")
        self.fields: Dict[str, object] = {k: v for k, v in fields.items() if v is not None}
        self._items = tuple(self.fields.items())
        self._extra_items = tuple(
            (k, v) for k, v in self._items if k not in _FIVE_SET
        )
        self.has_five_tuple = _FIVE_SET.issubset(self.fields)
        self._five_key = (
            tuple(self.fields[f] for f in FIVE_TUPLE) if self.has_five_tuple else None
        )

    @classmethod
    def for_flow(cls, key) -> "Match":
        """Exact five-tuple match for a FlowKey."""
        return cls.exact(key.src_ip, key.dst_ip, key.proto, key.src_port, key.dst_port)

    @classmethod
    def exact(
        cls, src_ip, dst_ip, proto, src_port, dst_port, in_port=None
    ) -> "Match":
        """Exact five-tuple match (optionally pinning ``in_port``).

        The reactive control path builds one of these per admitted flow
        per hop, so the generic ``__init__`` validation/derivation work
        is skipped and the precomputed views are filled in directly.
        The resulting object is state-identical to the keyword form
        (field insertion order included, which ``_items`` preserves).
        """
        five = (src_ip, dst_ip, proto, src_port, dst_port)
        if None in five:  # a wildcarded field: take the generic path
            fields = dict(zip(FIVE_TUPLE, five))
            if in_port is not None:
                fields["in_port"] = in_port
            return cls(**fields)
        self = cls.__new__(cls)
        fields = {
            "src_ip": src_ip,
            "dst_ip": dst_ip,
            "proto": proto,
            "src_port": src_port,
            "dst_port": dst_port,
        }
        if in_port is None:
            self._extra_items = ()
        else:
            fields["in_port"] = in_port
            self._extra_items = (("in_port", in_port),)
        self.fields = fields
        self._items = tuple(fields.items())
        self.has_five_tuple = True
        self._five_key = five
        return self

    @classmethod
    def any(cls) -> "Match":
        """The all-wildcard (table-miss) match."""
        return cls()

    @property
    def is_exact_five_tuple(self) -> bool:
        """True when this match pins exactly the five-tuple (no more, no less)."""
        return set(self.fields) == _FIVE_SET

    def five_tuple_key(self) -> Tuple:
        if self._five_key is not None:
            return self._five_key
        return tuple(self.fields[f] for f in FIVE_TUPLE)

    def matches(self, fields: Dict[str, object]) -> bool:
        """Whether a packet field view satisfies every constraint."""
        get = fields.get
        for name, wanted in self._items:
            if get(name) != wanted:
                return False
        return True

    def matches_packet(self, packet: Packet, in_port: int) -> bool:
        return self.matches(extract_fields(packet, in_port))

    def covers(self, other: "Match") -> bool:
        """True if every packet matching ``other`` also matches self."""
        return all(other.fields.get(k) == v for k, v in self.fields.items())

    def key(self) -> Tuple:
        """A hashable identity (used for rule replacement/removal)."""
        return tuple(sorted(self.fields.items(), key=lambda kv: kv[0]))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"Match({inner})" if inner else "Match(*)"
