"""The OpenFlow Agent (OFA): the switch's weak software control plane.

This module encodes the paper's three core measurements:

1. **Packet-In generation is rate limited** (Fig. 4): packets punted by
   the data plane enter a bounded queue served at
   ``profile.packet_in_rate``; overflow packets are silently lost, which
   is exactly how legitimate flows "fail" in Fig. 3.

2. **Rule insertion loses requests beyond a lossless rate and saturates**
   (Fig. 9): each FlowMod-ADD is subjected to a rate-dependent admission
   (the fraction of rules actually committed falls as the attempted rate
   grows past ``install_lossless_rate``), and commits are processed by a
   server whose throughput caps at ``install_saturated_rate``.  The
   resulting successful-rate curve is ``a`` for ``a <= lossless`` and
   ``sat - (sat - lossless) * exp(-(a - lossless)/scale)`` beyond — a
   smooth rise that flattens at the measured plateau.

3. **Heavy rule writing stalls the data path** (Fig. 10): when the
   attempted insertion rate exceeds ``profile.degradation_knee``, the
   data plane's effective forwarding budget collapses to
   ``profile.datapath_degraded_pps`` (the datapath queries
   :meth:`datapath_capacity` per service).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.metrics.meters import RateEstimator
from repro.obs import path as obs_path
from repro.openflow.messages import (
    ADD,
    DELETE,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    Message,
    PacketIn,
    PacketOut,
    RoleMod,
    RoleStatus,
)
from repro.sim.ratelimit import RateLimitedServer
from repro.switch.flow_table import FlowEntry, TableFullError
from repro.switch.group_table import GroupEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.openflow.channel import ControlChannel
    from repro.sim.engine import Simulator
    from repro.switch.switch import OpenFlowSwitch

#: Fixed OFA processing delay for cheap control messages (stats dump,
#: echo, barrier): microseconds of CPU, not a throughput bottleneck.
_CHEAP_MESSAGE_DELAY = 1e-3


class OpenFlowAgent:
    """Control agent of one switch."""

    def __init__(self, sim: "Simulator", switch: "OpenFlowSwitch", channel: "ControlChannel"):
        self.sim = sim
        self.switch = switch
        self.profile = switch.profile
        self.channel = channel
        channel.switch_sink = self.handle_from_controller

        self._rng = sim.rng.stream(f"ofa:{switch.name}")
        self.packet_in_server = RateLimitedServer(
            sim,
            rate=self.profile.packet_in_rate,
            queue_capacity=self.profile.packet_in_queue,
            handler=self._emit_packet_in,
            name=f"{switch.name}.packet-in",
        )
        self.install_server = RateLimitedServer(
            sim,
            rate=self.profile.install_saturated_rate,
            queue_capacity=self.profile.install_queue,
            handler=self._commit_flow_mod,
            name=f"{switch.name}.install",
        )
        # Window-limited so the estimate decays once insertions stop;
        # 32 events keeps the estimator responsive at hundreds/second.
        self._attempt_meter = RateEstimator(window_events=32, window_seconds=1.0)

        self.packet_ins_sent = 0
        self.packet_ins_dropped = 0
        self.flow_removed_sent = 0
        self.installs_attempted = 0
        self.installs_succeeded = 0
        self.installs_failed = 0
        self.table_full_failures = 0
        #: Chaos-layer stall (docs/robustness.md): while ``sim.now`` is
        #: before this, inbound control messages are deferred — a wedged
        #: OFA CPU stops answering echoes without dropping the channel.
        self._stalled_until = 0.0
        self.stall_deferred = 0
        #: Controller-pool role state (docs/cluster.md).  None until the
        #: first RoleMod lands; single-controller deployments never send
        #: one, so these stay inert.
        self.master_id = None
        self.role_generation = 0
        self.stale_role_mods = 0

        self._obs = sim.obs
        metrics = sim.obs.metrics
        if metrics.enabled:
            metrics.gauge(f"ofa.{switch.name}.packet_in_queue",
                          self.packet_in_server.backlog)
            metrics.gauge(f"ofa.{switch.name}.install_queue",
                          self.install_server.backlog)
            # Constant, but exported as a gauge so saturation SLIs can
            # divide arrival rates by per-switch capacity generically.
            capacity = float(self.profile.packet_in_rate)
            metrics.gauge(f"ofa.{switch.name}.packet_in_capacity",
                          lambda capacity=capacity: capacity)
        self._m_packet_ins = metrics.counter(f"ofa.{switch.name}.packet_ins")
        self._m_packet_in_drops = metrics.counter(
            f"ofa.{switch.name}.packet_in_drops")
        self._m_installs = metrics.counter(f"ofa.{switch.name}.installs")
        self._m_install_failures = metrics.counter(
            f"ofa.{switch.name}.install_failures")
        self._m_stall_deferred = metrics.counter(
            f"ofa.{switch.name}.stall_deferred")

    # ------------------------------------------------------------------
    # Data plane -> controller (Packet-In)
    # ------------------------------------------------------------------
    def punt(self, packet: "Packet", in_port: int, reason: str) -> bool:
        """Queue a packet for Packet-In generation.  Returns False when
        the OFA queue overflowed (the packet, and with it the flow's
        setup chance, is lost)."""
        obs_path.punt_begin(self._obs, packet, self.switch.name, in_port, reason)
        accepted = self.packet_in_server.submit((packet, in_port, reason))
        if not accepted:
            self.packet_ins_dropped += 1
            self._m_packet_in_drops.inc()
            obs_path.punt_dropped(self._obs, packet)
        return accepted

    def _emit_packet_in(self, item) -> None:
        packet, in_port, reason = item
        metadata = dict(packet.metadata)
        if packet.popped_labels:
            # Scotch two-label scheme (§5.2): outermost label was the
            # tunnel id, the inner one encodes the original ingress port.
            metadata["tunnel_id"] = packet.popped_labels[0]
            if len(packet.popped_labels) > 1:
                metadata["inner_label"] = packet.popped_labels[1]
        message = PacketIn(
            datapath_id=self.switch.name,
            packet=packet,
            in_port=in_port,
            reason=reason,
            metadata=metadata,
        )
        self.packet_ins_sent += 1
        self._m_packet_ins.inc()
        obs_path.packet_in_sent(self._obs, packet, self.switch.name)
        self.channel.send_to_controller(message)

    # ------------------------------------------------------------------
    # Controller -> switch
    # ------------------------------------------------------------------
    def stall(self, duration: float) -> None:
        """Freeze inbound control processing for ``duration`` seconds
        (fault injection: a busy/wedged OFA CPU).  Deferred messages are
        processed, in arrival order, when the stall lifts."""
        if duration < 0:
            raise ValueError("stall duration must be non-negative")
        self._stalled_until = max(self._stalled_until, self.sim.now + duration)

    def handle_from_controller(self, message: Message) -> None:
        if not self.switch.alive:
            return
        if self._stalled_until > self.sim.now:
            self.stall_deferred += 1
            self._m_stall_deferred.inc()
            self.sim.schedule(
                self._stalled_until - self.sim.now, self.handle_from_controller, message
            )
            return
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, GroupMod):
            self._handle_group_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            self.sim.schedule(_CHEAP_MESSAGE_DELAY, self._reply_flow_stats, message)
        elif isinstance(message, PortStatsRequest):
            self.sim.schedule(_CHEAP_MESSAGE_DELAY, self._reply_port_stats, message)
        elif isinstance(message, EchoRequest):
            self.sim.schedule(
                _CHEAP_MESSAGE_DELAY,
                self.channel.send_to_controller,
                EchoReply(request_xid=message.xid, datapath_id=self.switch.name),
            )
        elif isinstance(message, BarrierRequest):
            self.sim.schedule(
                _CHEAP_MESSAGE_DELAY,
                self.channel.send_to_controller,
                BarrierReply(request_xid=message.xid, datapath_id=self.switch.name),
            )
        elif isinstance(message, RoleMod):
            self.sim.schedule(_CHEAP_MESSAGE_DELAY, self._handle_role_mod, message)
        else:
            raise TypeError(f"OFA cannot handle {type(message).__name__}")

    # -- rule installation ---------------------------------------------
    def attempted_install_rate(self) -> float:
        """Current attempted FlowMod-ADD rate estimate (rules/second)."""
        return self._attempt_meter.rate(self.sim.now)

    def _success_probability(self, attempted_rate: float) -> float:
        """P(commit) such that successful-rate follows the Fig. 9 curve."""
        lossless = self.profile.install_lossless_rate
        sat = self.profile.install_saturated_rate
        if attempted_rate <= lossless:
            return 1.0
        # Tangent to the identity at the lossless point (scale equals the
        # plateau gap), so successful-rate is continuous, stays strictly
        # below attempted beyond the lossless rate, and flattens at the
        # measured plateau.
        scale = max(1.0, sat - lossless)
        successful = sat - (sat - lossless) * math.exp(-(attempted_rate - lossless) / scale)
        return min(1.0, successful / attempted_rate)

    def _handle_flow_mod(self, message: FlowMod) -> None:
        if message.command == DELETE:
            # Deletions are cheap OFA work and never the measured
            # bottleneck; apply after the fixed processing delay.
            self.sim.schedule(_CHEAP_MESSAGE_DELAY, self._apply_delete, message)
            return
        self.installs_attempted += 1
        tracer = self._obs.tracer
        span = tracer.begin(
            obs_path.SPAN_INSTALL, track=f"switch:{self.switch.name}",
            switch=self.switch.name,
        ) if tracer.enabled else -1
        self._attempt_meter.observe(self.sim.now)
        if self._rng.random() > self._success_probability(self.attempted_install_rate()):
            self.installs_failed += 1
            self._m_install_failures.inc()
            tracer.end(span, outcome="lost")
            return
        if not self.install_server.submit((message, span)):
            self.installs_failed += 1
            self._m_install_failures.inc()
            tracer.end(span, outcome="queue_full")

    def _commit_flow_mod(self, item) -> None:
        message, span = item
        table = self.switch.datapath.table(message.table_id)
        entry = FlowEntry(
            match=message.match,
            priority=message.priority,
            actions=message.actions,
            idle_timeout=message.idle_timeout,
            hard_timeout=message.hard_timeout,
            cookie=message.cookie,
            notify_removal=message.notify_removal,
        )
        try:
            table.insert(entry, now=self.sim.now)
        except TableFullError:
            self.table_full_failures += 1
            self.installs_failed += 1
            self._m_install_failures.inc()
            self._obs.tracer.end(span, outcome="table_full")
            # Real switches report this (OFPFMFC_TABLE_FULL); the §3.3
            # TCAM-bottleneck mitigation depends on the controller
            # seeing it.
            self.channel.send_to_controller(
                ErrorMessage(
                    datapath_id=self.switch.name,
                    error_type="flow_mod_failed",
                    code="table_full",
                    failed_xid=message.xid,
                )
            )
            return
        self.installs_succeeded += 1
        self._m_installs.inc()
        self._obs.tracer.end(span, outcome="committed")

    def _apply_delete(self, message: FlowMod) -> None:
        table = self.switch.datapath.table(message.table_id)
        table.remove(message.match, message.priority if message.priority else None)

    # -- groups, packet-out, stats ---------------------------------------
    def _handle_group_mod(self, message: GroupMod) -> None:
        groups = self.switch.datapath.groups
        if message.command == DELETE:
            groups.remove(message.group_id)
            return
        entry = GroupEntry(
            group_id=message.group_id,
            group_type=message.group_type,
            buckets=message.buckets,
            hash_seed=self.switch.hash_seed,
        )
        # ADD on an existing group is treated as replace (keeps
        # re-activation idempotent, matching OVS's permissive behaviour).
        if message.command == ADD and entry.group_id not in groups:
            groups.add(entry)
        else:
            groups.modify(entry)

    def _handle_role_mod(self, message: RoleMod) -> None:
        # OpenFlow generation_id fencing: only strictly newer
        # generations apply, so a delayed RoleMod from a deposed pool
        # leader cannot roll the mastership back.
        if message.generation <= self.role_generation and self.master_id is not None:
            self.stale_role_mods += 1
            self.channel.send_to_controller(ErrorMessage(
                datapath_id=self.switch.name,
                error_type="role_request_failed",
                code="role_stale",
                failed_xid=message.xid,
            ))
            return
        self.role_generation = message.generation
        self.master_id = message.master_id
        self.channel.send_to_controller(RoleStatus(
            request_xid=message.xid,
            datapath_id=self.switch.name,
            master_id=message.master_id,
            generation=message.generation,
        ))

    def _handle_packet_out(self, message: PacketOut) -> None:
        if message.packet is None:
            return
        self.switch.datapath.execute_actions(
            message.packet, message.actions, in_port=message.in_port
        )

    def _reply_flow_stats(self, request: FlowStatsRequest) -> None:
        entries = []
        for table in self.switch.datapath.tables:
            if request.table_id is not None and table.table_id != request.table_id:
                continue
            for rule in table.entries():
                if request.match is not None and not request.match.covers(rule.match):
                    continue
                entries.append(
                    FlowStatsEntry(
                        match=rule.match,
                        priority=rule.priority,
                        table_id=table.table_id,
                        packets=rule.packets,
                        bytes=rule.bytes,
                        duration=self.sim.now - rule.installed_at,
                        cookie=rule.cookie,
                    )
                )
        reply = FlowStatsReply(
            datapath_id=self.switch.name, entries=entries, request_xid=request.xid
        )
        self.channel.send_to_controller(reply)

    def _reply_port_stats(self, request: PortStatsRequest) -> None:
        entries = [
            PortStatsEntry(port_no=port.port_no, tx_packets=port.tx_packets,
                           tx_bytes=port.tx_bytes)
            for port in self.switch.ports.values()
            if request.port_no is None or port.port_no == request.port_no
        ]
        self.channel.send_to_controller(
            PortStatsReply(datapath_id=self.switch.name, entries=entries,
                           request_xid=request.xid)
        )

    # ------------------------------------------------------------------
    # Rule expiry notifications
    # ------------------------------------------------------------------
    def notify_flow_removed(self, entry, reason: str, table_id: int) -> None:
        """Called by the datapath's tables when a flagged rule expires."""
        if not entry.notify_removal or not self.switch.alive:
            return
        message = FlowRemoved(
            datapath_id=self.switch.name,
            match=entry.match,
            priority=entry.priority,
            table_id=table_id,
            reason=reason,
            packets=entry.packets,
            bytes=entry.bytes,
            duration=self.sim.now - entry.installed_at,
            cookie=entry.cookie,
        )
        self.flow_removed_sent += 1
        self.sim.schedule(_CHEAP_MESSAGE_DELAY, self.channel.send_to_controller, message)

    # ------------------------------------------------------------------
    # Data-path interaction (Fig. 10)
    # ------------------------------------------------------------------
    def datapath_capacity(self) -> float:
        """Effective forwarding budget given current rule-write activity."""
        if self.attempted_install_rate() > self.profile.degradation_knee:
            return self.profile.datapath_degraded_pps
        return self.profile.datapath_pps
