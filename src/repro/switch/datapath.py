"""The switch data plane: multi-table pipeline with a forwarding budget.

Packets arriving on any port enter a short hardware buffer and are
processed at the switch's effective forwarding rate.  Processing walks
the flow tables from table 0, executing the winning entry's actions
(which may jump to a later table, hand the packet to a select group, or
punt to the OFA on a table miss).

The effective forwarding rate is queried from the OFA per packet — this
is the Fig. 10 coupling: when the OFA is committing rules beyond the
degradation knee, table lookups stall and the budget collapses, so the
data path itself starts dropping even though the links are idle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.net.packet import GreHeader, MplsHeader, Packet
from repro.switch.actions import (
    Action,
    Controller,
    Drop,
    GotoTable,
    Group,
    Output,
    PopGre,
    PopMpls,
    PushMpls,
    SetGreKey,
)
from repro.switch.flow_table import FlowTable
from repro.switch.group_table import GroupTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.switch.switch import OpenFlowSwitch

#: Hardware ingress buffer, in packet trains.
INGRESS_BUFFER = 200

#: What the pipeline does with a packet that misses every table.
MISS_TO_CONTROLLER = "controller"
MISS_DROP = "drop"


class Datapath:
    """Forwarding pipeline of one switch."""

    def __init__(self, sim: "Simulator", switch: "OpenFlowSwitch"):
        self.sim = sim
        self.switch = switch
        profile = switch.profile
        # TCAM capacity constrains the main (first) table where reactive
        # per-flow rules land; later tables hold static pipeline rules.
        self.tables: List[FlowTable] = [
            FlowTable(i, capacity=profile.tcam_capacity if i == 0 else None)
            for i in range(profile.n_tables)
        ]
        self.groups = GroupTable()
        self.miss_policy = MISS_TO_CONTROLLER
        self._queue: Deque[Tuple[Packet, int]] = deque()
        self._busy = False
        self.processed = 0
        self.dropped_no_buffer = 0
        self.dropped_no_route = 0
        self.dropped_policy = 0
        self.punted = 0
        #: Optional packet sampler (repro.telemetry) attached by the
        #: sampling stats service.  None (the default) costs one pointer
        #: check per packet train — the zero-overhead-when-disabled
        #: contract of the sampled-telemetry subsystem.
        self.sampler = None

    def table(self, table_id: int) -> FlowTable:
        return self.tables[table_id]

    # ------------------------------------------------------------------
    # Ingress / service loop
    # ------------------------------------------------------------------
    def submit(self, packet: Packet, in_port: int) -> None:
        """Accept a packet from a port; drop-tail on the ingress buffer."""
        if len(self._queue) >= INGRESS_BUFFER:
            self.dropped_no_buffer += packet.count
            return
        self._queue.append((packet, in_port))
        if not self._busy:
            self._begin_service()

    def _capacity(self) -> float:
        ofa = self.switch.ofa
        if ofa is not None:
            return ofa.datapath_capacity()
        return self.switch.profile.datapath_pps

    def _begin_service(self) -> None:
        self._busy = True
        packet, in_port = self._queue.popleft()
        ofa = self.switch.ofa
        capacity = (
            ofa.datapath_capacity() if ofa is not None else self.switch.profile.datapath_pps
        )
        self.sim.schedule(packet.count / capacity, self._serve, packet, in_port)

    def _serve(self, packet: Packet, in_port: int) -> None:
        self.processed += packet.count
        self.process(packet, in_port)
        if self._queue:
            self._begin_service()
        else:
            self._busy = False

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def process(self, packet: Packet, in_port: int) -> None:
        """Run the packet through the tables, starting at table 0."""
        packet.hops.append(self.switch.name)
        if self.sampler is not None:
            self.sampler.observe(packet)
        tables = self.tables
        now = self.sim.now
        table_id = 0
        # A pipeline of n tables can take at most n-1 goto jumps without
        # revisiting a table; more means a rule loop (cheaper to count
        # than to track a per-packet visited set).
        jumps_left = len(tables)
        while True:
            entry = tables[table_id].lookup(packet, in_port, now)
            if entry is None:
                self._miss(packet, in_port)
                return
            next_table = self.execute_actions(packet, entry.actions, in_port)
            if next_table is None:
                return
            jumps_left -= 1
            if jumps_left <= 0:
                raise RuntimeError(
                    f"goto-table loop at {self.switch.name} table {next_table}"
                )
            table_id = next_table

    def _miss(self, packet: Packet, in_port: int) -> None:
        if self.miss_policy == MISS_TO_CONTROLLER and self.switch.ofa is not None:
            self.punted += 1
            self.switch.ofa.punt(packet, in_port, reason="no_match")
        else:
            self.dropped_policy += packet.count

    def execute_actions(
        self, packet: Packet, actions: List[Action], in_port: int = 0
    ) -> Optional[int]:
        """Apply an action list; returns a table id if a GotoTable asks
        the pipeline to continue, else None (packet fully handled)."""
        for action in actions:
            # Exact-type checks: actions are final dataclasses, and
            # `type(x) is C` skips the subclass walk isinstance pays for.
            kind = type(action)
            if kind is Output:
                port = self.switch.ports.get(action.port_no)
                if port is None:
                    self.dropped_no_route += packet.count
                    return None
                port.send(packet)
            elif kind is Controller:
                self.punted += 1
                self.switch.ofa.punt(packet, in_port, reason=action.reason)
            elif kind is Group:
                group = self.groups.get(action.group_id)
                if group is None:
                    self.dropped_no_route += packet.count
                    return None
                bucket = group.select_bucket(packet)
                if bucket is None:
                    self.dropped_no_route += packet.count
                    return None
                bucket.packets += packet.count
                bucket.bytes += packet.size * packet.count
                return self.execute_actions(packet, bucket.actions, in_port)
            elif kind is PushMpls:
                packet.push(MplsHeader(action.label))
            elif kind is PopMpls:
                header = packet.pop()
                if isinstance(header, MplsHeader):
                    packet.popped_labels.append(header.label)
            elif kind is SetGreKey:
                packet.push(GreHeader(action.key))
            elif kind is PopGre:
                header = packet.pop()
                if isinstance(header, GreHeader):
                    packet.popped_labels.append(header.key)
            elif kind is GotoTable:
                return action.table_id
            elif kind is Drop:
                self.dropped_policy += packet.count
                return None
            else:
                raise TypeError(f"unknown action {action!r}")
        return None
