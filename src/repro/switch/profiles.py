"""Calibrated switch device models.

Every control-path behaviour the paper measures is encoded here as an
explicit constant, with the figure it came from.  The OCR of the paper
text dropped trailing zeros from most numbers; each reconstruction below
is cross-checked against an internal consistency constraint from the
text (see DESIGN.md §7).

Pica8 Pronto 3780 (the paper's main switch):

* **Packet-In capacity 200 msg/s** — Fig. 4 shows Packet-In rate, rule
  insertion rate and successful flow rate are *identical* and that the
  OFA's Packet-In generation is the bottleneck; §6.1 shows insertions are
  lossless only up to 200/s, and the Fig. 3 failure curve needs a
  capacity of this order (client 100 f/s + attack 100..3800 f/s).
* **Rule insertion: lossless <= 200 r/s, saturating ~= 1000 r/s** —
  Fig. 9: "able to handle up to 200 rules/second without loss. After
  that, some rule requests are not installed ... the successful
  insertion rate flattens out at about 1000 rules/second."
* **Data-path degradation knee 1300 r/s** — Fig. 10: "turning point at a
  rule insertion rate of 1300 rules/second. The data path loss rate
  exceeds 90%" beyond it, at data rates 500/1000/2000 pps.

HP Procurve 6600: Fig. 3 shows a lower failure fraction than Pica8 at
equal attack rates ("the Procurve switch has higher OFA throughput"), and
§3.3 notes it lacks the advanced data-plane features (tunnels, multiple
tables, groups) — which is why the paper (and our deployment scenarios)
use Pica8 as the Scotch physical switch.

Open vSwitch on a Xeon E5-1650: Fig. 3 shows near-zero client failure
until the attack rate approaches its multi-thousand-msg/s agent capacity;
§4 notes vSwitches trade higher control-path capacity for lower data-path
throughput than hardware switches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SwitchProfile:
    """Static performance envelope of a switch model."""

    name: str
    #: OFA Packet-In generation capacity, messages/second.
    packet_in_rate: float
    #: OFA input queue ahead of Packet-In generation, packets.
    packet_in_queue: int
    #: Rule-insertion rate with zero loss (Fig. 9 lower break).
    install_lossless_rate: float
    #: Asymptotic successful insertion rate under overload (Fig. 9 plateau).
    install_saturated_rate: float
    #: OFA queue of pending FlowMods.
    install_queue: int
    #: Hardware forwarding budget, packets/second.
    datapath_pps: float
    #: Forwarding budget while the OFA writes rules beyond the knee.
    datapath_degraded_pps: float
    #: Attempted-insertion rate at which lookups start stalling (Fig. 10).
    degradation_knee: float
    #: Data-port line rate, bits/second.
    port_rate_bps: float
    #: Flow-table (TCAM) capacity, entries; None = effectively unbounded.
    tcam_capacity: int
    #: Number of pipeline tables (HP's OpenFlow 1.0 build has one).
    n_tables: int
    #: OpenFlow 1.3 group-table support.
    supports_groups: bool
    #: Data-plane tunnel encap/decap support.
    supports_tunnels: bool
    #: One-way control-channel latency to the controller, seconds.
    control_latency: float

    def variant(self, **overrides) -> "SwitchProfile":
        """A copy with some fields overridden (for sensitivity sweeps)."""
        return replace(self, **overrides)


PICA8_PRONTO_3780 = SwitchProfile(
    name="Pica8 Pronto 3780",
    packet_in_rate=200.0,
    packet_in_queue=50,
    install_lossless_rate=200.0,
    install_saturated_rate=1000.0,
    install_queue=100,
    datapath_pps=5_000_000.0,  # wire-speed 10G at ~250B avg; far above any test load
    datapath_degraded_pps=40.0,  # Fig. 10: >90% loss at 500..2000 pps beyond knee
    degradation_knee=1300.0,
    port_rate_bps=10e9,
    tcam_capacity=8192,
    n_tables=4,
    supports_groups=True,
    supports_tunnels=True,
    control_latency=0.5e-3,
)

HP_PROCURVE_6600 = SwitchProfile(
    name="HP Procurve 6600",
    packet_in_rate=450.0,
    packet_in_queue=50,
    install_lossless_rate=450.0,
    install_saturated_rate=800.0,
    install_queue=100,
    datapath_pps=1_500_000.0,
    datapath_degraded_pps=100.0,
    degradation_knee=900.0,
    port_rate_bps=1e9,
    tcam_capacity=4096,
    n_tables=1,
    supports_groups=False,
    supports_tunnels=False,
    control_latency=0.5e-3,
)

OPEN_VSWITCH = SwitchProfile(
    name="Open vSwitch (Xeon E5-1650)",
    packet_in_rate=4000.0,
    packet_in_queue=500,
    install_lossless_rate=20000.0,
    install_saturated_rate=40000.0,
    install_queue=2000,
    datapath_pps=300_000.0,  # software datapath: far below hardware wire speed
    datapath_degraded_pps=300_000.0,  # no HW/SW write contention on OVS
    degradation_knee=float("inf"),
    port_rate_bps=1e9,
    tcam_capacity=100_000,
    n_tables=8,
    supports_groups=True,
    supports_tunnels=True,
    control_latency=0.2e-3,
)

#: Host-hypervisor vSwitch used only for final delivery to VMs.
HOST_VSWITCH = OPEN_VSWITCH.variant(name="host vSwitch")

#: An idealized switch with no control-path limits, for unit tests that
#: exercise pipeline semantics rather than performance.
IDEAL_SWITCH = SwitchProfile(
    name="ideal",
    packet_in_rate=1e9,
    packet_in_queue=10_000_000,
    install_lossless_rate=1e9,
    install_saturated_rate=1e9,
    install_queue=10_000_000,
    datapath_pps=1e12,
    datapath_degraded_pps=1e12,
    degradation_knee=float("inf"),
    port_rate_bps=100e9,
    tcam_capacity=10_000_000,
    n_tables=8,
    supports_groups=True,
    supports_tunnels=True,
    control_latency=0.1e-3,
)
