"""Group tables (OpenFlow 1.3 §5.1 of the paper).

Scotch load-balances new flows over the switch->vSwitch tunnels with a
``select``-type group: one action bucket per tunnel, bucket chosen by a
hash of the flow id (the spec leaves selection to the vendor; the paper
argues ECMP-style flow hashing is the likely choice, and per-flow
stickiness is what keeps all packets of a flow on one tunnel/vSwitch).

Bucket replacement (used when a vSwitch fails and its backup takes over,
paper §5.6) preserves the positions of the other buckets so unrelated
flows do not move.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.switch.actions import Action


@dataclass
class Bucket:
    """One action bucket: the actions plus an optional ECMP weight."""

    actions: List[Action]
    weight: int = 1
    label: str = ""
    packets: int = 0
    bytes: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("bucket weight must be positive")


class GroupEntry:
    """A group: ``select`` picks one bucket per flow, ``all`` replicates."""

    def __init__(self, group_id: int, group_type: str = "select", buckets: Optional[List[Bucket]] = None, hash_seed: int = 0):
        if group_type not in ("select", "all", "indirect"):
            raise ValueError(f"unsupported group type {group_type!r}")
        self.group_id = group_id
        self.group_type = group_type
        self.buckets: List[Bucket] = list(buckets or [])
        self.hash_seed = hash_seed

    def _flow_hash(self, packet: Packet) -> int:
        token = f"{self.hash_seed}|{packet.flow_key}"
        return zlib.crc32(token.encode("utf-8"))

    def select_bucket(self, packet: Packet) -> Optional[Bucket]:
        """The bucket this packet's flow hashes to (weighted), or None if
        the group has no buckets."""
        if not self.buckets:
            return None
        if self.group_type == "indirect" or len(self.buckets) == 1:
            return self.buckets[0]
        total_weight = sum(b.weight for b in self.buckets)
        point = self._flow_hash(packet) % total_weight
        for bucket in self.buckets:
            point -= bucket.weight
            if point < 0:
                return bucket
        return self.buckets[-1]  # unreachable; guards float/weight edge cases

    def replace_bucket(self, index: int, bucket: Bucket) -> Bucket:
        """Swap the bucket at ``index`` (failover), returning the old one."""
        old = self.buckets[index]
        self.buckets[index] = bucket
        return old

    def find_bucket(self, label: str) -> Optional[int]:
        for index, bucket in enumerate(self.buckets):
            if bucket.label == label:
                return index
        return None


class GroupTable:
    """The per-switch registry of group entries."""

    def __init__(self):
        self._groups: Dict[int, GroupEntry] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def add(self, entry: GroupEntry) -> None:
        if entry.group_id in self._groups:
            raise ValueError(f"group {entry.group_id} already exists")
        self._groups[entry.group_id] = entry

    def modify(self, entry: GroupEntry) -> None:
        if entry.group_id not in self._groups:
            raise KeyError(f"group {entry.group_id} does not exist")
        self._groups[entry.group_id] = entry

    def remove(self, group_id: int) -> None:
        self._groups.pop(group_id, None)

    def get(self, group_id: int) -> Optional[GroupEntry]:
        return self._groups.get(group_id)
