"""`repro.obs` — first-class observability for the simulator.

Four pieces (see docs/observability.md for the guided tour):

* :class:`~repro.obs.tracer.Tracer` — simulation-time span/event
  tracing of the full control path, with JSONL and Chrome
  ``trace_event`` export;
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and fixed-bucket histograms, plus a daemon sampler for time series;
* :class:`~repro.obs.profiler.EngineProfiler` — engine hooks giving
  per-callback wall-clock accounting and heap-depth stats;
* :mod:`~repro.obs.manifest` — reproducibility manifests.

:class:`Observability` bundles them and binds to every
:class:`~repro.sim.engine.Simulator` built while it is active — either
passed explicitly (``Simulator(seed, obs=obs)``) or installed as the
process default (:func:`set_default_obs` / the ``observed`` context
manager), which is how the CLI instruments experiment runners that
construct their own simulators.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional

from repro.obs.base import (
    NULL_METRICS,
    NULL_OBS,
    NULL_TRACER,
    NullObservability,
    get_default_obs,
    set_default_obs,
)
from repro.obs.health import HealthEngine, SliSpec, default_slis
from repro.obs.metrics import MetricsRegistry, MetricsSampler
from repro.obs.profiler import EngineProfiler
from repro.obs.rules import AlertRule, builtin_rules, parse_rule, parse_rules
from repro.obs.tracer import Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "Tracer",
    "MetricsRegistry",
    "MetricsSampler",
    "EngineProfiler",
    "HealthEngine",
    "SliSpec",
    "default_slis",
    "AlertRule",
    "builtin_rules",
    "parse_rule",
    "parse_rules",
    "get_default_obs",
    "set_default_obs",
    "observed",
]


class Observability:
    """A tracer + metrics registry + optional profiler, bound together.

    ``sample_interval`` (simulation seconds) starts a daemon
    :class:`MetricsSampler` on every simulator bound while metrics are
    enabled; None disables sampling (instruments still record, only the
    time series is absent — and the simulation's event calendar is left
    untouched, which the determinism tests rely on).
    """

    enabled = True

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        sample_interval: Optional[float] = None,
        causality: bool = False,
        flight: Any = None,
    ):
        self.tracer = Tracer() if trace else NULL_TRACER
        self.metrics = MetricsRegistry() if metrics else NULL_METRICS
        self.profiler = EngineProfiler() if profile else None
        self.sample_interval = sample_interval
        #: Thread causal provenance through every bound simulator and
        #: stamp span/event ids on trace records (docs/observability.md
        #: #causality--flight-recorder).
        self.causality = causality
        if self.tracer.enabled:
            self.tracer.causality = causality
        #: Flight recorder: pass True (default rings), an int (event
        #: ring size) or a FlightRecorder instance; None disables.
        if flight is True:
            from repro.obs.flight import FlightRecorder
            flight = FlightRecorder()
        elif isinstance(flight, int) and not isinstance(flight, bool):
            from repro.obs.flight import FlightRecorder
            flight = FlightRecorder(events=flight)
        self.flight = flight
        if self.flight is not None:
            if self.tracer.enabled:
                self.tracer.flight = self.flight
            if self.metrics.enabled:
                self.flight.attach_metrics(self.metrics)
        self.samplers = []
        #: How many simulators have bound (the tracer's run index).
        self.runs = 0

    def bind(self, sim: Any) -> None:
        """Called by ``Simulator.__init__``; attaches every enabled
        instrument to the new simulator."""
        run = self.runs
        self.runs += 1
        if self.tracer.enabled:
            self.tracer.bind(sim, run=run)
        if self.causality:
            sim.enable_provenance(run=run)
        if self.flight is not None:
            self.flight.bind(sim, run=run)
        if self.profiler is not None:
            self.profiler.attach(sim)
        if self.metrics.enabled and self.sample_interval:
            sampler = MetricsSampler(sim, self.metrics, self.sample_interval,
                                     run=run)
            self.samplers.append(sampler)
            sampler.start()


@contextmanager
def observed(obs: Observability):
    """Make ``obs`` the process-default observability for the duration::

        with observed(Observability()) as obs:
            run_experiment()
        obs.tracer.export_jsonl("run.trace.jsonl")
    """
    previous = set_default_obs(obs)
    try:
        yield obs
    finally:
        set_default_obs(previous)
