"""Detection scorecard: alert timeline vs fault-injection ground truth.

The :class:`~repro.faults.injector.FaultInjector` logs every action it
takes; :func:`truth_windows` turns that log into per-fault ``[t0, t1]``
ground-truth windows.  :func:`build_scorecard` joins them against the
health engine's alert timeline and reports, per fault class, whether a
rule *declaring* that class (its ``detects`` list) fired while the
fault was active — detection latency, recall — and, per rule, how many
firings matched any declared truth window (precision).

A firing counts for a window when the two intervals overlap, allowing
the firing to start up to ``tolerance`` seconds after the window ends
(detection necessarily lags injection by the SLI window plus the rule's
hold time).  The scorecard is pure data + pure functions over
deterministic inputs, so it is as reproducible as the run itself.

Also here: the end-of-run health report renderers — ASCII (SLI
sparklines + alert bands, for terminals and tests) and a dependency-free
single-file HTML report (inline SVG time series with alert/truth bands).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.rules import AlertRule

#: The synthetic fault class covering deliberate flood traffic: the
#: chaos scenario's flash crowd is ground truth for the OFA-overload
#: rule even though the injector never "injects" it.
FLASH_CROWD = "flash_crowd"


@dataclass(frozen=True)
class TruthWindow:
    """One ground-truth fault activity interval."""

    cls: str
    target: str
    t0: float
    t1: float


def truth_windows(
    fault_log: Sequence[Dict[str, object]],
    run_end: float,
    extra: Sequence[TruthWindow] = (),
) -> List[TruthWindow]:
    """Ground-truth windows from a :class:`FaultInjector` log.

    An ``inject`` entry opens a window; a ``clear`` entry for the same
    (kind, target) closes it; flap ``up`` entries keep extending the
    window so it ends at the last restore.  An inject that carries a
    ``duration`` (``ofa_stall`` logs no clear) closes itself.  Anything
    still open at the end of the run closes at ``run_end``.
    """
    windows: List[List[object]] = []  # [cls, target, t0, t1, closed]
    open_index: Dict[Tuple[str, str], int] = {}
    for entry in fault_log:
        kind = str(entry["kind"])
        target = str(entry.get("target") or "")
        phase = entry.get("phase")
        t = float(entry["t"])  # type: ignore[arg-type]
        key = (kind, target)
        if phase == "inject":
            duration = entry.get("duration")
            if duration is not None:
                t1 = min(run_end, t + float(duration))  # type: ignore[arg-type]
                windows.append([kind, target, t, t1, True])
            else:
                windows.append([kind, target, t, run_end, False])
                open_index[key] = len(windows) - 1
        elif phase in ("clear", "up"):
            index = open_index.get(key)
            if index is not None and not windows[index][4]:
                windows[index][3] = max(float(windows[index][2]), t)
                if phase == "clear":
                    windows[index][4] = True
                    del open_index[key]
    out = [TruthWindow(str(w[0]), str(w[1]), float(w[2]), float(w[3]))
           for w in windows]
    out.extend(extra)
    out.sort(key=lambda w: (w.t0, w.cls, w.target))
    return out


@dataclass
class ClassScore:
    """Detection outcome for one fault class."""

    cls: str
    injected: int = 0
    detected: int = 0
    latencies: List[float] = field(default_factory=list)
    detected_by: List[str] = field(default_factory=list)

    @property
    def recall(self) -> float:
        return self.detected / self.injected if self.injected else 1.0


@dataclass
class RuleScore:
    """Firing accounting for one alert rule."""

    rule: str
    firings: int = 0
    true_positives: int = 0

    @property
    def false_positives(self) -> int:
        return self.firings - self.true_positives

    @property
    def precision(self) -> float:
        return self.true_positives / self.firings if self.firings else 1.0


@dataclass
class Scorecard:
    """The joined detection report."""

    classes: Dict[str, ClassScore]
    rules: Dict[str, RuleScore]
    false_positives: List[Tuple[str, float, float]]
    tolerance: float

    @property
    def recall(self) -> float:
        injected = sum(s.injected for s in self.classes.values())
        if not injected:
            return 1.0
        return sum(s.detected for s in self.classes.values()) / injected

    @property
    def precision(self) -> float:
        firings = sum(s.firings for s in self.rules.values())
        if not firings:
            return 1.0
        return sum(s.true_positives for s in self.rules.values()) / firings

    @property
    def all_detected(self) -> bool:
        return all(s.detected == s.injected for s in self.classes.values())

    @property
    def clean(self) -> bool:
        return not self.false_positives


def firings_from_timeline(
    timeline: Sequence[Dict[str, object]], run_end: float,
) -> List[Tuple[str, float, float]]:
    """``(rule, t0, t1)`` firing intervals from timeline transitions;
    still-open firings clamp to ``run_end``."""
    out: List[Tuple[str, float, float]] = []
    open_at: Dict[str, float] = {}
    for record in timeline:
        name = str(record["alert"])
        state = record["state"]
        t = float(record["t"])  # type: ignore[arg-type]
        if state == "firing":
            open_at[name] = t
        elif state == "resolved":
            t0 = open_at.pop(name, None)
            if t0 is not None:
                out.append((name, t0, t))
    for name in sorted(open_at):
        out.append((name, open_at[name], run_end))
    out.sort(key=lambda item: (item[1], item[0]))
    return out


def _matches(firing: Tuple[str, float, float], window: TruthWindow,
             tolerance: float) -> bool:
    _, t0, t1 = firing
    return t0 <= window.t1 + tolerance and t1 >= window.t0


def build_scorecard(
    rules: Sequence[AlertRule],
    timeline: Sequence[Dict[str, object]],
    truth: Sequence[TruthWindow],
    run_end: float,
    tolerance: float = 1.0,
) -> Scorecard:
    """Join the alert timeline against the ground-truth windows."""
    firings = firings_from_timeline(timeline, run_end)
    detects = {rule.name: frozenset(rule.detects) for rule in rules}

    classes: Dict[str, ClassScore] = {}
    for window in truth:
        score = classes.setdefault(window.cls, ClassScore(cls=window.cls))
        score.injected += 1
        matched = [f for f in firings
                   if window.cls in detects.get(f[0], frozenset())
                   and _matches(f, window, tolerance)]
        if matched:
            score.detected += 1
            first = min(matched, key=lambda f: f[1])
            score.latencies.append(max(0.0, first[1] - window.t0))
            for name in sorted({f[0] for f in matched}):
                if name not in score.detected_by:
                    score.detected_by.append(name)

    rule_scores: Dict[str, RuleScore] = {
        rule.name: RuleScore(rule=rule.name) for rule in rules}
    false_positives: List[Tuple[str, float, float]] = []
    for firing in firings:
        score = rule_scores.setdefault(firing[0], RuleScore(rule=firing[0]))
        score.firings += 1
        declared = detects.get(firing[0], frozenset())
        if any(w.cls in declared and _matches(firing, w, tolerance)
               for w in truth):
            score.true_positives += 1
        else:
            false_positives.append(firing)

    return Scorecard(classes=classes, rules=rule_scores,
                     false_positives=false_positives, tolerance=tolerance)


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------
def format_scorecard(scorecard: Scorecard) -> str:
    """The scorecard as ASCII tables (CLI / chaos report)."""
    from repro.testbed.report import format_table

    class_rows = []
    for cls in sorted(scorecard.classes):
        score = scorecard.classes[cls]
        latency = (f"{sum(score.latencies) / len(score.latencies):.2f}"
                   if score.latencies else "-")
        class_rows.append([
            cls, score.injected, score.detected, f"{score.recall:.2f}",
            latency, ",".join(score.detected_by) or "-",
        ])
    rule_rows = []
    for name in sorted(scorecard.rules):
        score = scorecard.rules[name]
        rule_rows.append([
            name, score.firings, score.true_positives,
            score.false_positives, f"{score.precision:.2f}",
        ])
    sections = [
        format_table(
            ["fault class", "injected", "detected", "recall",
             "latency (s)", "detected by"],
            class_rows, title="Detection scorecard — per fault class"),
        format_table(
            ["rule", "firings", "true pos", "false pos", "precision"],
            rule_rows, title="Detection scorecard — per rule"),
        (f"detection: recall {scorecard.recall:.2f}, precision "
         f"{scorecard.precision:.2f}, {len(scorecard.false_positives)} "
         f"false positives (match tolerance {scorecard.tolerance:.1f}s)"),
    ]
    return "\n\n".join(sections)


_SPARK = " .:-=+*#%@"


def _sparkline(points: Sequence[Tuple[float, float]], t0: float, t1: float,
               width: int) -> Tuple[str, float]:
    """Downsample a time series to a character strip; returns (strip,
    observed max)."""
    cells = [[] for _ in range(width)]
    top = 0.0
    span = max(t1 - t0, 1e-9)
    for t, value in points:
        index = min(width - 1, max(0, int((t - t0) / span * width)))
        cells[index].append(value)
        top = max(top, value)
    strip = []
    for bucket in cells:
        if not bucket:
            strip.append(" ")
            continue
        peak = max(bucket)
        level = 0 if top <= 0 else int(peak / top * (len(_SPARK) - 1))
        strip.append(_SPARK[max(0, min(len(_SPARK) - 1, level))])
    return "".join(strip), top


def _band(intervals: Sequence[Tuple[float, float]], t0: float, t1: float,
          width: int, mark: str = "#") -> str:
    """Render activity intervals as a character band."""
    strip = [" "] * width
    span = max(t1 - t0, 1e-9)
    for start, end in intervals:
        lo = max(0, int((start - t0) / span * width))
        hi = min(width, max(lo + 1, int((end - t0) / span * width) + 1))
        for index in range(lo, hi):
            strip[index] = mark
    return "".join(strip)


def format_health_report(
    series: Dict[str, List[Tuple[float, float]]],
    timeline: Sequence[Dict[str, object]],
    run_end: float,
    truth: Sequence[TruthWindow] = (),
    width: int = 64,
) -> str:
    """ASCII health report: one sparkline per SLI, one alert band per
    rule, one ground-truth band per fault class."""
    t0 = 0.0
    lines = [f"Health report — 0..{run_end:.1f}s, {width} columns "
             f"(sparkline peak in brackets)"]
    label_width = max([len(n) for n in series] or [0])
    firings = firings_from_timeline(timeline, run_end)
    rule_names = sorted({f[0] for f in firings})
    for name in rule_names:
        label_width = max(label_width, len(name) + 2)
    for cls in sorted({w.cls for w in truth}):
        label_width = max(label_width, len(cls) + 2)
    for name, points in series.items():
        strip, top = _sparkline(points, t0, run_end, width)
        lines.append(f"{name:<{label_width}} |{strip}| [{top:g}]")
    if rule_names:
        lines.append("")
        lines.append("alerts (#### = firing):")
        for name in rule_names:
            intervals = [(f[1], f[2]) for f in firings if f[0] == name]
            lines.append(f"  {name:<{label_width - 2}} "
                         f"|{_band(intervals, t0, run_end, width)}|")
    if truth:
        lines.append("")
        lines.append("ground truth (==== = fault active):")
        for cls in sorted({w.cls for w in truth}):
            intervals = [(w.t0, w.t1) for w in truth if w.cls == cls]
            lines.append(f"  {cls:<{label_width - 2}} "
                         f"|{_band(intervals, t0, run_end, width, mark='=')}|")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_HTML_HEAD = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Scotch health report</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 1.5rem; color: #222; }
 h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
 .chart { margin: 0.6rem 0; }
 .chart .name { font: 12px monospace; margin-bottom: 2px; }
 svg { background: #fafafa; border: 1px solid #ddd; }
 table { border-collapse: collapse; font-size: 0.85rem; }
 th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
 .legend { font-size: 0.8rem; color: #555; }
</style></head><body>
"""


def _svg_series(points: Sequence[Tuple[float, float]], run_end: float,
                firings: Sequence[Tuple[float, float]],
                truth: Sequence[Tuple[float, float]],
                width: int = 720, height: int = 60) -> str:
    """One SLI chart: truth bands (amber), alert bands (red), polyline."""
    top = max([v for _, v in points] or [0.0]) or 1.0
    span = max(run_end, 1e-9)

    def x(t: float) -> float:
        return round(t / span * width, 2)

    def y(v: float) -> float:
        return round(height - (v / top) * (height - 4) - 2, 2)

    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}">']
    for start, end in truth:
        parts.append(f'<rect x="{x(start)}" y="0" '
                     f'width="{max(1.0, x(end) - x(start))}" '
                     f'height="{height}" fill="#f6c344" opacity="0.25"/>')
    for start, end in firings:
        parts.append(f'<rect x="{x(start)}" y="0" '
                     f'width="{max(1.0, x(end) - x(start))}" '
                     f'height="{height}" fill="#d33" opacity="0.30"/>')
    if points:
        coords = " ".join(f"{x(t)},{y(v)}" for t, v in points)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="#3366cc" stroke-width="1.2"/>')
    parts.append(f'<text x="4" y="12" font-size="10" fill="#777">'
                 f'max {top:g}</text>')
    parts.append("</svg>")
    return "".join(parts)


def render_html_report(
    path: str,
    series: Dict[str, List[Tuple[float, float]]],
    timeline: Sequence[Dict[str, object]],
    run_end: float,
    truth: Sequence[TruthWindow] = (),
    scorecard: Optional[Scorecard] = None,
    title: str = "Scotch health report",
) -> None:
    """Write a self-contained HTML health report (inline SVG, no JS,
    no external assets)."""
    firings = firings_from_timeline(timeline, run_end)
    truth_intervals = [(w.t0, w.t1) for w in truth]
    out = [_HTML_HEAD, f"<h1>{title}</h1>",
           f'<p class="legend">0&ndash;{run_end:.1f}s &middot; '
           "amber bands: injected faults (ground truth) &middot; "
           "red bands: firing alerts</p>"]
    out.append("<h2>SLI time series</h2>")
    for name, points in series.items():
        rule_bands = [(f[1], f[2]) for f in firings]
        out.append(f'<div class="chart"><div class="name">{name}</div>'
                   + _svg_series(points, run_end, rule_bands, truth_intervals)
                   + "</div>")
    out.append("<h2>Alert timeline</h2>")
    out.append("<table><tr><th>t (s)</th><th>alert</th><th>state</th>"
               "<th>SLI</th><th>value</th><th>severity</th></tr>")
    for record in timeline:
        out.append(
            "<tr>"
            f"<td>{record['t']}</td><td>{record['alert']}</td>"
            f"<td>{record['state']}</td><td>{record['sli']}</td>"
            f"<td>{record['value']}</td><td>{record['severity']}</td>"
            "</tr>")
    out.append("</table>")
    if scorecard is not None:
        out.append("<h2>Detection scorecard</h2>")
        out.append("<pre>" + format_scorecard(scorecard) + "</pre>")
    out.append("</body></html>\n")
    with open(path, "w") as handle:
        handle.write("\n".join(out))


def canonical_json(payload: object) -> str:
    """The repo-wide canonical JSON form: sorted keys, compact
    separators — byte-identical for equal payloads, so scorecard
    artifacts can be digest-pinned.  Shared by the detection scorecard
    and the telemetry accuracy scorecard
    (:mod:`repro.telemetry.scorecard`)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def html_head(title: str) -> str:
    """The shared self-contained HTML prologue (no JS, no external
    assets) with ``title`` substituted — so every report the repo emits
    looks the same."""
    return _HTML_HEAD.replace("<title>Scotch health report</title>",
                              f"<title>{title}</title>")


def scorecard_json(scorecard: Scorecard) -> str:
    """The scorecard as one deterministic JSON object (machine use)."""
    payload = {
        "tolerance": scorecard.tolerance,
        "recall": round(scorecard.recall, 6),
        "precision": round(scorecard.precision, 6),
        "classes": {
            cls: {
                "injected": s.injected,
                "detected": s.detected,
                "recall": round(s.recall, 6),
                "latencies": [round(l, 6) for l in s.latencies],
                "detected_by": list(s.detected_by),
            }
            for cls, s in sorted(scorecard.classes.items())
        },
        "rules": {
            name: {
                "firings": s.firings,
                "true_positives": s.true_positives,
                "false_positives": s.false_positives,
                "precision": round(s.precision, 6),
            }
            for name, s in sorted(scorecard.rules.items())
        },
        "false_positives": [
            {"rule": f[0], "t0": f[1], "t1": f[2]}
            for f in scorecard.false_positives
        ],
    }
    return canonical_json(payload)
