"""Schema versioning for every JSONL artifact the repo exports.

Each exporter writes one header line first::

    {"schema":"trace","type":"schema","version":1}

so a reader (and `scotch-repro inspect`) can identify a file from its
first record, and the golden-master tests pin the version numbers —
bumping one here without regenerating the fixtures is a deliberate,
reviewable act.  Readers skip schema records transparently, so
round-tripping a file returns exactly the payload records.

The *in-memory* JSONL strings (``FaultInjector.log_jsonl()``,
``HealthEngine.timeline_jsonl()``) stay headerless: they exist for
byte-for-byte determinism comparisons between runs, and the header
belongs to the file container, not the log itself.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Artifact kind -> current schema version.  Bump on format changes.
#: JSONL streams only: single-object canonical-JSON artifacts (the
#: health and telemetry scorecards) version themselves in-payload —
#: see ``repro.telemetry.scorecard.TELEMETRY_SCORECARD_VERSION``.
SCHEMA_VERSIONS: Dict[str, int] = {
    "trace": 1,
    "metrics": 1,
    "fault_log": 1,
    "alert_timeline": 1,
    "postmortem": 1,
    "pool_events": 1,
}


def schema_record(kind: str) -> Dict[str, Any]:
    """The header record for one artifact kind."""
    return {"type": "schema", "schema": kind,
            "version": SCHEMA_VERSIONS[kind]}


def schema_line(kind: str) -> str:
    """The header as a compact JSON line (no trailing newline)."""
    return json.dumps(schema_record(kind), sort_keys=True,
                      separators=(",", ":"))


def write_schema_header(handle: Any, kind: str) -> None:
    handle.write(schema_line(kind))
    handle.write("\n")


def is_schema_record(record: Any) -> bool:
    return isinstance(record, dict) and record.get("type") == "schema"


def sniff_schema(path: str) -> Optional[Dict[str, Any]]:
    """The schema header of a JSONL file, or None (legacy/headerless)."""
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    return None
                return record if is_schema_record(record) else None
    except OSError:
        return None
    return None
