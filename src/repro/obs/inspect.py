"""Trace summarization — the engine behind ``scotch-repro inspect``.

Reads a JSONL trace (:func:`repro.obs.tracer.read_jsonl` format) and
reduces it to the numbers a human wants first: span counts and
per-stage latency percentiles for the control path, route outcomes of
the Packet-In journeys, and how many rode the overlay relay.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.stats import mean, percentile
from repro.obs.path import SPAN_PACKET_IN
from repro.obs.tracer import read_jsonl


def _duration(record: Dict[str, Any]) -> Optional[float]:
    t1 = record.get("t1")
    return None if t1 is None else t1 - record["t0"]


def summarize_trace(path: str) -> Dict[str, Any]:
    """Load + summarize a JSONL trace.

    Returns::

        {
          "records": int, "spans": int, "instants": int, "open_spans": int,
          "stages": {name: {"count", "mean_ms", "p50_ms", "p99_ms", "max_ms"}},
          "packet_in": {"count", "relayed", "routes": {route: count}},
        }
    """
    records = read_jsonl(path)
    durations: Dict[str, List[float]] = {}
    spans = instants = open_spans = 0
    pktin_count = relayed = 0
    routes: Dict[str, int] = {}
    for record in records:
        if record.get("type") == "instant":
            instants += 1
            continue
        spans += 1
        duration = _duration(record)
        if duration is None:
            open_spans += 1
        else:
            durations.setdefault(record["name"], []).append(duration)
        if record["name"] == SPAN_PACKET_IN:
            pktin_count += 1
            args = record.get("args", {})
            if args.get("relay") is not None:
                relayed += 1
            route = args.get("route", "open")
            routes[route] = routes.get(route, 0) + 1
    stages = {
        name: {
            "count": len(values),
            "mean_ms": mean(values) * 1e3,
            "p50_ms": percentile(values, 50) * 1e3,
            "p99_ms": percentile(values, 99) * 1e3,
            "max_ms": max(values) * 1e3,
        }
        for name, values in sorted(durations.items())
    }
    return {
        "records": len(records),
        "spans": spans,
        "instants": instants,
        "open_spans": open_spans,
        "stages": stages,
        "packet_in": {"count": pktin_count, "relayed": relayed,
                      "routes": dict(sorted(routes.items()))},
    }


def stage_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Tabulation rows: [stage, count, mean ms, p50 ms, p99 ms, max ms]."""
    return [
        [name, stats["count"], round(stats["mean_ms"], 4),
         round(stats["p50_ms"], 4), round(stats["p99_ms"], 4),
         round(stats["max_ms"], 4)]
        for name, stats in summary["stages"].items()
    ]
