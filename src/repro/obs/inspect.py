"""JSONL summarization — the engine behind ``scotch-repro inspect``.

Reads a JSONL trace (:func:`repro.obs.tracer.read_jsonl` format) and
reduces it to the numbers a human wants first: span counts and
per-stage latency percentiles for the control path, route outcomes of
the Packet-In journeys, and how many rode the overlay relay.  Metrics
files (:meth:`repro.obs.metrics.MetricsRegistry.export_jsonl` format)
get their own summary: counter/gauge finals, histogram quantiles and
the sampled time-series extent.

:func:`sniff_kind` classifies a file: the schema header
(:mod:`repro.obs.schema`) settles it immediately for current exports;
legacy headerless files fall back to record-shape detection.  Fault
logs, alert timelines and postmortem bundles each get a light summary
too, and causality-enabled traces additionally carry the critical-path
attribution (:mod:`repro.obs.critpath`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.metrics.stats import mean, percentile
from repro.obs.critpath import attribute, has_causality, longest_chain
from repro.obs.metrics import bucket_quantile
from repro.obs.metrics import read_jsonl as read_metrics_jsonl
from repro.obs.path import SPAN_PACKET_IN
from repro.obs.schema import sniff_schema
from repro.obs.tracer import read_jsonl

#: Record types written by MetricsRegistry.export_jsonl.
METRIC_RECORD_TYPES = frozenset({"sample", "counter", "gauge", "histogram"})


def _duration(record: Dict[str, Any]) -> Optional[float]:
    t1 = record.get("t1")
    return None if t1 is None else t1 - record["t0"]


def summarize_trace(path: str) -> Dict[str, Any]:
    """Load + summarize a JSONL trace.

    Returns::

        {
          "records": int, "spans": int, "instants": int, "open_spans": int,
          "stages": {name: {"count", "mean_ms", "p50_ms", "p99_ms", "max_ms"}},
          "packet_in": {"count", "relayed", "routes": {route: count}},
          "causality": bool,
          # and, when causality is True:
          "attribution": critpath.attribute(...), "longest": journey|None,
        }
    """
    records = read_jsonl(path)
    durations: Dict[str, List[float]] = {}
    spans = instants = open_spans = 0
    pktin_count = relayed = 0
    routes: Dict[str, int] = {}
    for record in records:
        if record.get("type") == "instant":
            instants += 1
            continue
        spans += 1
        duration = _duration(record)
        if duration is None:
            open_spans += 1
        else:
            durations.setdefault(record["name"], []).append(duration)
        if record["name"] == SPAN_PACKET_IN:
            pktin_count += 1
            args = record.get("args", {})
            if args.get("relay") is not None:
                relayed += 1
            route = args.get("route", "open")
            routes[route] = routes.get(route, 0) + 1
    stages = {
        name: {
            "count": len(values),
            "mean_ms": mean(values) * 1e3,
            "p50_ms": percentile(values, 50) * 1e3,
            "p99_ms": percentile(values, 99) * 1e3,
            "max_ms": max(values) * 1e3,
        }
        for name, values in sorted(durations.items())
    }
    summary = {
        "records": len(records),
        "spans": spans,
        "instants": instants,
        "open_spans": open_spans,
        "stages": stages,
        "packet_in": {"count": pktin_count, "relayed": relayed,
                      "routes": dict(sorted(routes.items()))},
        "causality": has_causality(records),
    }
    if summary["causality"]:
        summary["attribution"] = attribute(records)
        summary["longest"] = longest_chain(records)
    return summary


def stage_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Tabulation rows: [stage, count, mean ms, p50 ms, p99 ms, max ms]."""
    return [
        [name, stats["count"], round(stats["mean_ms"], 4),
         round(stats["p50_ms"], 4), round(stats["p99_ms"], 4),
         round(stats["max_ms"], 4)]
        for name, stats in summary["stages"].items()
    ]


# ----------------------------------------------------------------------
# Metrics files
# ----------------------------------------------------------------------
def sniff_kind(path: str) -> str:
    """Classify a JSONL file: ``"trace"``, ``"metrics"``,
    ``"fault_log"``, ``"alert_timeline"``, ``"postmortem"`` or
    ``"telemetry_scorecard"`` (the one single-object kind — canonical
    JSON, versioned in-payload rather than by schema header).

    A schema header (any current export) settles it from the first
    line.  Headerless (legacy) files fall back to record-shape
    detection; empty files default to ``"trace"``."""
    header = sniff_schema(path)
    if header is not None and header.get("schema"):
        return str(header["schema"])
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                return "trace"
            if not isinstance(record, dict):
                return "trace"
            kind = record.get("type")
            if kind in METRIC_RECORD_TYPES:
                return "metrics"
            if kind == "trigger":
                return "postmortem"
            if "telemetry_runs" in record:
                return "telemetry_scorecard"
            if "phase" in record and "target" in record:
                return "fault_log"
            if "alert" in record and "state" in record:
                return "alert_timeline"
            return "trace"
    return "trace"


def summarize_metrics(path: str) -> Dict[str, Any]:
    """Load + summarize a metrics JSONL export.

    Returns::

        {
          "records": int, "samples": int,
          "sample_span": [t0, t1] | None, "sampled_names": int,
          "counters": {name: value}, "gauges": {name: value},
          "histograms": {name: {"count", "mean", "p50", "p99",
                                "min", "max"}},
        }
    """
    records = read_metrics_jsonl(path)
    samples = 0
    t0: Optional[float] = None
    t1: Optional[float] = None
    sampled_names: set = set()
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for record in records:
        kind = record.get("type")
        if kind == "sample":
            samples += 1
            t = record["t"]
            t0 = t if t0 is None else min(t0, t)
            t1 = t if t1 is None else max(t1, t)
            sampled_names.add(record["name"])
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "gauge":
            gauges[record["name"]] = record["value"]
        elif kind == "histogram":
            count = record["count"]
            histograms[record["name"]] = {
                "count": count,
                "mean": record["sum"] / count if count else 0.0,
                "p50": bucket_quantile(record["buckets"], record["counts"],
                                       0.5, lo=record["min"], hi=record["max"]),
                "p99": bucket_quantile(record["buckets"], record["counts"],
                                       0.99, lo=record["min"], hi=record["max"]),
                "min": record["min"],
                "max": record["max"],
            }
    return {
        "records": len(records),
        "samples": samples,
        "sample_span": None if t0 is None else [t0, t1],
        "sampled_names": len(sampled_names),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def instrument_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Tabulation rows for final counter/gauge values:
    [instrument, kind, value]."""
    rows = [[name, "counter", value]
            for name, value in summary["counters"].items()]
    rows += [[name, "gauge", round(float(value), 4)]
             for name, value in summary["gauges"].items()]
    return rows


def histogram_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Tabulation rows: [histogram, count, mean, p50, p99, min, max]."""
    def fmt(value: Optional[float]) -> Any:
        return "-" if value is None else round(float(value), 6)

    return [
        [name, stats["count"], fmt(stats["mean"]), fmt(stats["p50"]),
         fmt(stats["p99"]), fmt(stats["min"]), fmt(stats["max"])]
        for name, stats in summary["histograms"].items()
    ]


# ----------------------------------------------------------------------
# Fault logs, alert timelines, postmortem bundles
# ----------------------------------------------------------------------
def _payload_records(path: str) -> List[Dict[str, Any]]:
    """Every JSON record in the file, schema header excluded."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if isinstance(record, dict) and record.get("type") != "schema":
                records.append(record)
    return records


def summarize_fault_log(path: str) -> Dict[str, Any]:
    """Fault-log summary: action count, time span, per-(kind, phase)
    tallies."""
    records = _payload_records(path)
    by_kind: Dict[str, Dict[str, int]] = {}
    for record in records:
        phases = by_kind.setdefault(str(record.get("kind")), {})
        phase = str(record.get("phase"))
        phases[phase] = phases.get(phase, 0) + 1
    times = [record["t"] for record in records if "t" in record]
    return {
        "records": len(records),
        "span": [min(times), max(times)] if times else None,
        "kinds": {kind: dict(sorted(phases.items()))
                  for kind, phases in sorted(by_kind.items())},
    }


def summarize_alert_timeline(path: str) -> Dict[str, Any]:
    """Alert-timeline summary: transition count and per-alert
    firing/resolve tallies."""
    records = _payload_records(path)
    by_alert: Dict[str, Dict[str, int]] = {}
    for record in records:
        states = by_alert.setdefault(str(record.get("alert")), {})
        state = str(record.get("state"))
        states[state] = states.get(state, 0) + 1
    times = [record["t"] for record in records if "t" in record]
    return {
        "records": len(records),
        "span": [min(times), max(times)] if times else None,
        "alerts": {alert: dict(sorted(states.items()))
                   for alert, states in sorted(by_alert.items())},
    }


def summarize_telemetry_scorecard(path: str) -> Dict[str, Any]:
    """Telemetry-scorecard summary: the scenario header plus per-run
    accuracy/overhead rows (the payload is already a summary — this
    mostly reshapes it for tabulation)."""
    with open(path) as handle:
        payload = json.load(handle)
    runs = payload.get("telemetry_runs", [])
    return {
        "version": payload.get("version"),
        "seed": payload.get("seed"),
        "duration": payload.get("duration"),
        "elephants": payload.get("elephants"),
        "runs": len(runs),
        "modes": [
            (run["mode"] if run.get("period", 0) == 0
             else f"{run['mode']} 1/{run['period']}")
            for run in runs
        ],
        "telemetry_runs": runs,
    }


def telemetry_run_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Tabulation rows: [mode, recall, precision, bytes, reduction,
    cpu share] per run."""
    rows = []
    for label, run in zip(summary["modes"], summary["telemetry_runs"]):
        rows.append([
            label,
            round(float(run["recall"]), 4),
            round(float(run["precision"]), 4),
            run["monitoring_bytes"],
            f"{float(run['byte_reduction']):.1f}x",
            f"{float(run['controller_cpu_share']) * 100:.2f}%",
        ])
    return rows


def summarize_postmortem(path: str) -> Dict[str, Any]:
    """Postmortem-bundle summary: the trigger, the sizes of each
    captured section, and the flight window's latency attribution."""
    from repro.obs.postmortem import read_bundle

    bundle = read_bundle(path)
    flight = bundle["flight"]
    return {
        "bundle": bundle,
        "trigger": bundle["trigger"],
        "ancestry_depth": len(bundle["ancestry"]),
        "flight_events": len(flight["events"]),
        "flight_spans": len(flight["spans"]),
        "metric_deltas": flight["metric_deltas"],
        "alerts_firing": bundle["alerts_firing"],
        "faults_open": bundle["faults_open"],
        "context": bundle["context"],
        "attribution": attribute(flight["spans"]),
        "longest": longest_chain(flight["spans"]),
    }
