"""Structured, simulation-time span/event tracing.

A :class:`Tracer` records *spans* (named intervals of simulation time
with key/value args) and *instants*.  Components open a span with
:meth:`begin`, stash the returned id wherever their context lives (for
the control path: ``packet.metadata``), and close it with :meth:`end`
possibly many events later.  Records are completed in deterministic
simulation order, so two runs with the same seed export byte-identical
JSONL files — the property `tests/test_obs_determinism.py` locks in.

Exports:

* :meth:`export_jsonl` — one JSON object per line, stable key order;
  the format `scotch-repro inspect` and the obs test-suite consume.
* :meth:`export_chrome` — Chrome ``trace_event`` JSON; open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Tracks map to
  threads (named via metadata events), runs map to processes, so a
  multi-deployment experiment (e.g. a figure sweep) stays readable.

Timestamps are **simulation seconds** (exported as microseconds in the
Chrome file).  Wall-clock never enters a trace — that is the
profiler's job (:mod:`repro.obs.profiler`) — because wall times would
break reproducibility.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.schema import is_schema_record, write_schema_header

#: Instant-event scope in the Chrome format ("t" = thread).
_CHROME_INSTANT_SCOPE = "t"


class Tracer:
    """Collects spans/instants across one or more bound simulators.

    With :attr:`causality` on (``Observability(causality=True)``) every
    record additionally carries its span ``id`` and the ``(run, seq)``
    id of the simulator event that produced it (``ev``), linking spans
    into the engine's causal DAG; with it off (the default) records are
    byte-identical to pre-causality traces.
    """

    enabled = True

    def __init__(self) -> None:
        #: Completed records, in completion (simulation) order.
        self._records: List[Dict[str, Any]] = []
        #: span id -> open record.
        self._open: Dict[int, Dict[str, Any]] = {}
        self._next_id = 0
        self._now = lambda: 0.0
        #: Index of the currently bound simulator (a figure sweep builds
        #: several); stamped on every record, mapped to a Chrome pid.
        self.run = -1
        #: Stamp span ids + producing-event ids on records (see class
        #: docstring); set by Observability, not flipped mid-run.
        self.causality = False
        #: A :class:`~repro.obs.flight.FlightRecorder` fed every
        #: *completed* record, or None.
        self.flight: Optional[Any] = None
        self._sim: Optional[Any] = None

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, sim: Any, run: Optional[int] = None) -> None:
        """Attach to ``sim``'s clock; called by Observability.bind()."""
        self.run = (self.run + 1) if run is None else run
        self._now = lambda: sim.now
        self._sim = sim

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "control", track: str = "main",
              **args: Any) -> int:
        """Open a span; returns its id for :meth:`end`/:meth:`annotate`."""
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, Any] = {
            "type": "span",
            "run": self.run,
            "name": name,
            "cat": cat,
            "track": track,
            "t0": self._now(),
            "t1": None,
            "args": dict(args),
        }
        if self.causality:
            record["id"] = span_id
            record["ev"] = self._event_id()
        self._open[span_id] = record
        return span_id

    def _event_id(self) -> Optional[List[int]]:
        sim = self._sim
        if sim is None:
            return None
        ev = sim.current_event_id
        return None if ev is None else [ev[0], ev[1]]

    def end(self, span_id: int, **args: Any) -> None:
        """Close a span (idempotent: unknown/already-closed ids are
        ignored, so double-close along error paths is safe)."""
        record = self._open.pop(span_id, None)
        if record is None:
            return
        record["t1"] = self._now()
        if args:
            record["args"].update(args)
        self._records.append(record)
        if self.flight is not None:
            self.flight.record_span(record)

    def annotate(self, span_id: int, **args: Any) -> None:
        """Attach args to a still-open span."""
        record = self._open.get(span_id)
        if record is not None:
            record["args"].update(args)

    def instant(self, name: str, cat: str = "control", track: str = "main",
                **args: Any) -> None:
        now = self._now()
        record: Dict[str, Any] = {
            "type": "instant",
            "run": self.run,
            "name": name,
            "cat": cat,
            "track": track,
            "t0": now,
            "t1": now,
            "args": dict(args),
        }
        if self.causality:
            record["id"] = self._next_id
            self._next_id += 1
            record["ev"] = self._event_id()
        self._records.append(record)
        if self.flight is not None:
            self.flight.record_span(record)

    def elapsed(self, span_id: int) -> Optional[float]:
        """Simulation time since an open span began (None if unknown)."""
        record = self._open.get(span_id)
        return None if record is None else self._now() - record["t0"]

    # ------------------------------------------------------------------
    # Access / export
    # ------------------------------------------------------------------
    def records(self, include_open: bool = True) -> List[Dict[str, Any]]:
        """All records: completed ones in completion order, then any
        still-open spans (in-flight at simulation end) by span id."""
        out = list(self._records)
        if include_open:
            out.extend(self._open[i] for i in sorted(self._open))
        return out

    def export_jsonl(self, path: str) -> int:
        """Write one record per line (after the schema header); returns
        the payload record count."""
        records = self.records()
        with open(path, "w") as handle:
            write_schema_header(handle, "trace")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")))
                handle.write("\n")
        return len(records)

    def export_chrome(self, path: str) -> int:
        """Write Chrome ``trace_event`` JSON; returns the event count."""
        events = chrome_events(self.records())
        with open(path, "w") as handle:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                      handle, sort_keys=True, separators=(",", ":"))
        return len(events)


def chrome_events(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert tracer/JSONL records to ``trace_event`` dicts."""
    events: List[Dict[str, Any]] = []
    tids: Dict[Any, int] = {}
    for record in records:
        key = (record["run"], record["track"])
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": record["run"],
                "tid": tid, "args": {"name": record["track"]},
            })
        t0 = record["t0"]
        t1 = record["t1"] if record["t1"] is not None else t0
        base = {
            "name": record["name"],
            "cat": record["cat"],
            "pid": record["run"],
            "tid": tid,
            "ts": round(t0 * 1e6, 3),
            "args": record["args"],
        }
        if record["type"] == "instant":
            base.update(ph="i", s=_CHROME_INSTANT_SCOPE)
        else:
            base.update(ph="X", dur=round((t1 - t0) * 1e6, 3))
        events.append(base)
    return events


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace exported by :meth:`Tracer.export_jsonl` (the schema
    header, when present, is skipped)."""
    out: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                record = json.loads(line)
                if not is_schema_record(record):
                    out.append(record)
    return out
