"""Built-in engine profiler: find the hot callbacks.

Attaches to a :class:`~repro.sim.engine.Simulator` through its event
hook (``set_event_hook``) and accounts, per callback ``__qualname__``:
event count, total/max wall-clock seconds spent inside the callback,
plus calendar-heap depth samples.  This is the Fig. 4 exercise turned
inward — profiling the simulator itself so later performance PRs know
where the wall time actually goes.

Wall-clock numbers are inherently non-reproducible; they live only in
the profiler report, never in traces or metrics files.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class CallbackStats:
    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, wall_s: float) -> None:
        self.count += 1
        self.total_s += wall_s
        if wall_s > self.max_s:
            self.max_s = wall_s


class EngineProfiler:
    """Per-callback wall-clock accounting + heap-depth sampling."""

    def __init__(self) -> None:
        self.callbacks: Dict[str, CallbackStats] = {}
        self.events_fired = 0
        self.heap_depth_max = 0
        self._heap_depth_sum = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim: Any) -> None:
        """Install this profiler as ``sim``'s event hook."""
        sim.set_event_hook(self.on_event_fired)

    def detach(self, sim: Any) -> None:
        sim.set_event_hook(None)

    # ------------------------------------------------------------------
    # The hook (called by the engine after every fired event)
    # ------------------------------------------------------------------
    def on_event_fired(self, event: Any, wall_s: float, heap_depth: int) -> None:
        name = getattr(event.callback, "__qualname__", None)
        if name is None:  # e.g. a functools.partial
            name = repr(getattr(event.callback, "func", event.callback))
        stats = self.callbacks.get(name)
        if stats is None:
            stats = self.callbacks[name] = CallbackStats(name)
        stats.add(wall_s)
        self.events_fired += 1
        self._heap_depth_sum += heap_depth
        if heap_depth > self.heap_depth_max:
            self.heap_depth_max = heap_depth

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def heap_depth_mean(self) -> float:
        return self._heap_depth_sum / self.events_fired if self.events_fired else 0.0

    def hot_callbacks(self, top: Optional[int] = 20) -> List[CallbackStats]:
        """Callbacks ordered by total wall time, hottest first."""
        ranked = sorted(self.callbacks.values(),
                        key=lambda s: (-s.total_s, s.name))
        return ranked if top is None else ranked[:top]

    def report_rows(self, top: Optional[int] = 20) -> List[List[Any]]:
        """[[callback, events, total ms, mean us, max us]] for tabulation."""
        return [
            [stats.name, stats.count,
             round(stats.total_s * 1e3, 3),
             round(stats.total_s / stats.count * 1e6, 2) if stats.count else 0.0,
             round(stats.max_s * 1e6, 2)]
            for stats in self.hot_callbacks(top)
        ]

    def summary(self) -> Dict[str, Any]:
        return {
            "events_fired": self.events_fired,
            "distinct_callbacks": len(self.callbacks),
            "heap_depth_max": self.heap_depth_max,
            "heap_depth_mean": round(self.heap_depth_mean, 2),
            "total_callback_wall_s": round(
                sum(s.total_s for s in self.callbacks.values()), 6),
        }
