"""Critical-path analysis of Packet-In journeys (Scotch §4–5, Fig. 7).

A causality-enabled trace (``Observability(causality=True)``) stamps a
``journey`` arg on every control-path stage span pointing at its
``packet_in`` journey span's id.  This module walks that DAG to answer
the paper's question — *where* does Packet-In latency accrue — with
per-stage attribution whose sums reconcile against the end-to-end span
durations:

* :func:`journeys` groups stage spans under their journey;
* :func:`attribute` produces per-stage p50/p95/p99 plus each stage's
  share of total journey time, with the sequencing gap between stages
  reported explicitly as the ``(unattributed)`` pseudo-stage, so
  ``sum(stage totals) == sum(journey durations)`` to float precision;
* :func:`longest_chain` extracts the single slowest journey with its
  ordered stages — the critical path a person should look at first.

Rendered by ``scotch-repro inspect`` (attribution table + span tree)
and ``scotch-repro postmortem`` (JSONL + self-contained HTML).
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional

from repro.metrics.stats import percentile
from repro.obs.path import SPAN_PACKET_IN

#: Name of the reconciliation pseudo-stage: journey time not covered by
#: any stage span (queueing hand-offs, scheduling slack).
UNATTRIBUTED = "(unattributed)"


def journeys(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Group a causality trace into journey dicts.

    Each completed ``packet_in`` span with an ``id`` becomes::

        {"id", "run", "t0", "t1", "duration", "switch", "route",
         "relay", "stages": [stage records sorted by (t0, id)]}

    Journeys are returned in trace (completion) order; stage spans lacking
    a known ``journey`` link are ignored, as are still-open spans.
    """
    by_id: Dict[Any, Dict[str, Any]] = {}
    order: List[Dict[str, Any]] = []
    for record in records:
        if (record.get("type") == "span" and record.get("name") == SPAN_PACKET_IN
                and record.get("id") is not None
                and record.get("t1") is not None):
            args = record.get("args", {})
            journey = {
                "id": record["id"],
                "run": record.get("run", 0),
                "t0": record["t0"],
                "t1": record["t1"],
                "duration": record["t1"] - record["t0"],
                "switch": args.get("switch"),
                "route": args.get("route", "open"),
                "relay": args.get("relay"),
                "stages": [],
            }
            by_id[(record.get("run", 0), record["id"])] = journey
            order.append(journey)
    for record in records:
        if record.get("type") != "span" or record.get("t1") is None:
            continue
        link = record.get("args", {}).get("journey")
        if link is None:
            continue
        journey = by_id.get((record.get("run", 0), link))
        if journey is not None:
            journey["stages"].append(record)
    for journey in order:
        journey["stages"].sort(key=lambda r: (r["t0"], r.get("id", 0)))
    return order


def has_causality(records: List[Dict[str, Any]]) -> bool:
    """True when the trace carries span ids (a causality-enabled run)."""
    return any(record.get("id") is not None for record in records
               if record.get("type") == "span")


def attribute(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-stage latency attribution over every journey in a trace.

    Returns::

        {
          "journeys": N, "total_s": sum of journey durations,
          "stages": {name: {"count", "total_s", "share",
                            "p50_ms", "p95_ms", "p99_ms", "max_ms"}},
          "reconciliation": {"max_abs_gap_s": ..., "negative_gaps": n},
        }

    ``stages`` includes the :data:`UNATTRIBUTED` pseudo-stage (one
    sample per journey: the journey duration minus its stage-span sum),
    which is what makes the stage totals reconcile exactly with the
    end-to-end durations.
    """
    stage_samples: Dict[str, List[float]] = {}
    total = 0.0
    count = 0
    max_gap = 0.0
    negative = 0
    for journey in journeys(records):
        count += 1
        duration = journey["duration"]
        total += duration
        covered = 0.0
        for stage in journey["stages"]:
            stage_s = stage["t1"] - stage["t0"]
            covered += stage_s
            stage_samples.setdefault(stage["name"], []).append(stage_s)
        gap = duration - covered
        if gap < 0:
            negative += 1
        if abs(gap) > max_gap:
            max_gap = abs(gap)
        stage_samples.setdefault(UNATTRIBUTED, []).append(gap)
    stages = {}
    for name in sorted(stage_samples):
        samples = stage_samples[name]
        stage_total = sum(samples)
        stages[name] = {
            "count": len(samples),
            "total_s": stage_total,
            "share": stage_total / total if total else 0.0,
            "p50_ms": percentile(samples, 50) * 1e3,
            "p95_ms": percentile(samples, 95) * 1e3,
            "p99_ms": percentile(samples, 99) * 1e3,
            "max_ms": max(samples) * 1e3,
        }
    return {
        "journeys": count,
        "total_s": total,
        "stages": stages,
        "reconciliation": {"max_abs_gap_s": max_gap,
                           "negative_gaps": negative},
    }


def longest_chain(records: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The slowest journey, or None when the trace has no journeys."""
    worst = None
    for journey in journeys(records):
        if worst is None or journey["duration"] > worst["duration"]:
            worst = journey
    return worst


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def attribution_rows(report: Dict[str, Any]) -> List[List[Any]]:
    """Table rows: [stage, count, total s, share %, p50/p95/p99/max ms]."""
    return [
        [name, stats["count"], round(stats["total_s"], 6),
         f"{stats['share'] * 100:.1f}%", round(stats["p50_ms"], 4),
         round(stats["p95_ms"], 4), round(stats["p99_ms"], 4),
         round(stats["max_ms"], 4)]
        for name, stats in report["stages"].items()
    ]


def format_tree(journey: Dict[str, Any]) -> str:
    """ASCII tree of one journey's stages (the `inspect` span tree)."""
    header = (f"{SPAN_PACKET_IN} #{journey['id']} "
              f"[{journey['t0']:.6f}s .. {journey['t1']:.6f}s] "
              f"{journey['duration'] * 1e3:.3f} ms  "
              f"switch={journey['switch']} route={journey['route']}")
    if journey.get("relay"):
        header += f" relay={journey['relay']}"
    lines = [header]
    stages = journey["stages"]
    covered = 0.0
    for index, stage in enumerate(stages):
        stage_s = stage["t1"] - stage["t0"]
        covered += stage_s
        branch = "└─" if index == len(stages) - 1 else "├─"
        lines.append(f"  {branch} {stage['name']:<22} "
                     f"+{stage['t0'] - journey['t0']:.6f}s  "
                     f"{stage_s * 1e3:.3f} ms")
    gap = journey["duration"] - covered
    lines.append(f"     {UNATTRIBUTED:<22} {gap * 1e3:>14.3f} ms")
    return "\n".join(lines)


def report_jsonl(report: Dict[str, Any],
                 chain: Optional[Dict[str, Any]] = None) -> str:
    """Attribution report as JSON lines (summary, then one line per
    stage, then the longest chain when given)."""
    lines = [json.dumps({"type": "critpath_summary",
                         "journeys": report["journeys"],
                         "total_s": report["total_s"],
                         **report["reconciliation"]},
                        sort_keys=True, separators=(",", ":"))]
    for name, stats in report["stages"].items():
        lines.append(json.dumps({"type": "critpath_stage", "stage": name,
                                 **{k: stats[k] for k in sorted(stats)}},
                                sort_keys=True, separators=(",", ":")))
    if chain is not None:
        plain = {k: v for k, v in chain.items() if k != "stages"}
        plain["stages"] = [
            {"name": s["name"], "t0": s["t0"], "t1": s["t1"]}
            for s in chain["stages"]
        ]
        lines.append(json.dumps({"type": "critpath_longest", **plain},
                                sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def render_html(report: Dict[str, Any],
                chain: Optional[Dict[str, Any]] = None,
                bundle: Optional[Dict[str, Any]] = None,
                title: str = "Postmortem") -> str:
    """A self-contained HTML page: trigger context (when a bundle is
    given), the per-stage attribution table with share bars, and the
    longest-chain breakdown.  No external assets."""
    esc = _html.escape

    def table(headers: List[str], rows: List[List[Any]]) -> str:
        head = "".join(f"<th>{esc(str(h))}</th>" for h in headers)
        body = "\n".join(
            "<tr>" + "".join(f"<td>{esc(str(cell))}</td>" for cell in row)
            + "</tr>"
            for row in rows)
        return (f"<table><thead><tr>{head}</tr></thead>"
                f"<tbody>{body}</tbody></table>")

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title>",
        "<style>body{font:14px/1.5 -apple-system,Segoe UI,sans-serif;"
        "margin:2em auto;max-width:64em;color:#222}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #ccc;padding:.3em .6em;text-align:right}"
        "th{background:#f4f4f4}td:first-child,th:first-child{text-align:left}"
        ".bar{background:#4a90d9;height:.8em;display:inline-block}"
        "pre{background:#f8f8f8;border:1px solid #ddd;padding:1em;"
        "overflow-x:auto}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    if bundle is not None:
        trigger = bundle.get("trigger", {})
        parts.append("<h2>Trigger</h2>")
        rows = [["time (s)", trigger.get("t")],
                ["kind", trigger.get("kind")],
                ["name", trigger.get("name")],
                ["event", trigger.get("event")]]
        for key, value in sorted(trigger.get("detail", {}).items()):
            rows.append([key, value])
        parts.append(table(["field", "value"], rows))
        if bundle.get("alerts_firing"):
            parts.append("<h2>Alerts firing</h2>")
            parts.append(table(["alert", "since (s)"],
                               [[a["alert"], a["since"]]
                                for a in bundle["alerts_firing"]]))
        if bundle.get("faults_open"):
            parts.append("<h2>Faults open</h2>")
            parts.append(table(["fault", "target", "since (s)"],
                               [[f["kind"], f["target"], f["since"]]
                                for f in bundle["faults_open"]]))
        if bundle.get("ancestry"):
            parts.append("<h2>Causal ancestry (newest first)</h2>")
            parts.append(table(
                ["depth", "event", "t (s)", "callback"],
                [[depth, f"({a['run']},{a['seq']})", a["t"], a["callback"]]
                 for depth, a in enumerate(bundle["ancestry"])]))
        deltas = bundle.get("flight", {}).get("metric_deltas", {})
        if deltas:
            parts.append("<h2>Metric deltas (flight window)</h2>")
            parts.append(table(["counter", "delta"],
                               sorted(deltas.items())))
    parts.append("<h2>Per-stage latency attribution</h2>")
    if report["journeys"]:
        rows_html = []
        for name, stats in report["stages"].items():
            width = max(1, int(round(stats["share"] * 200)))
            rows_html.append(
                f"<tr><td>{esc(name)}</td><td>{stats['count']}</td>"
                f"<td>{stats['total_s']:.6f}</td>"
                f"<td><span class='bar' style='width:{width}px'></span> "
                f"{stats['share'] * 100:.1f}%</td>"
                f"<td>{stats['p50_ms']:.4f}</td>"
                f"<td>{stats['p95_ms']:.4f}</td>"
                f"<td>{stats['p99_ms']:.4f}</td>"
                f"<td>{stats['max_ms']:.4f}</td></tr>")
        parts.append(
            "<table><thead><tr><th>stage</th><th>count</th><th>total s</th>"
            "<th>share</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th>"
            "<th>max ms</th></tr></thead><tbody>"
            + "\n".join(rows_html) + "</tbody></table>")
        parts.append(
            f"<p>{report['journeys']} journeys, "
            f"{report['total_s']:.6f} s total; reconciliation max gap "
            f"{report['reconciliation']['max_abs_gap_s']:.3e} s.</p>")
    else:
        parts.append("<p>No completed Packet-In journeys in this window "
                     "(causality tracing off, or none finished).</p>")
    if chain is not None:
        parts.append("<h2>Longest chain</h2>")
        parts.append(f"<pre>{esc(format_tree(chain))}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)
