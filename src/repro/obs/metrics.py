"""Named counters, gauges and fixed-bucket histograms.

Components register instruments once (usually in their constructor) and
update them inline; a :class:`MetricsSampler` daemon snapshots every
gauge and counter on a configurable simulation-time tick, yielding the
time series (OFA queue depth, per-vSwitch relay rate, flow-table
occupancy, ...) that end-of-run aggregates cannot show.

All values are simulation-derived — counts and sim-time latencies —
so a metrics file is as reproducible as the run that produced it.
Export is JSONL, matching the tracer's format family:

* ``{"type": "sample", "run": R, "t": T, "name": N, "value": V}``
* ``{"type": "counter", "name": N, "value": V}``    (final)
* ``{"type": "gauge", "name": N, "value": V}``      (final)
* ``{"type": "histogram", "name": N, "buckets": [...], "counts": [...],
    "count": C, "sum": S, "min": m, "max": M}``
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.schema import is_schema_record, write_schema_header

#: Default histogram buckets for control-path latencies, seconds
#: (100 µs .. 10 s, roughly logarithmic).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for small integer distributions (queue depths, batch
#: sizes).
COUNT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value: either set explicitly or read through a
    callback (``fn``) at sample time — callbacks let components expose
    live state (queue backlogs, table sizes) without a write per event."""

    __slots__ = ("name", "fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def read(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` counts observations
    ``<= buckets[i]``; the implicit last bucket is +inf."""

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket counts (upper bucket bound),
        clamped to ``[min, max]``; ``q=0`` / ``q=1`` are exact."""
        if not self.count:
            return 0.0
        return bucket_quantile(self.buckets, self.counts, q,
                               lo=self.min, hi=self.max)


def bucket_quantile(
    buckets: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Quantile of a bucketed distribution (upper bucket bound).

    ``counts`` may carry the implicit +inf overflow bucket as its last
    element (``len(counts) == len(buckets) + 1``).  When the observed
    extremes are known, the result is clamped into ``[lo, hi]`` so a low
    quantile cannot report a bucket bound below the smallest observation
    (and ``q=0`` / ``q=1`` return them exactly).  Shared by
    :meth:`Histogram.quantile`, the metrics-file inspector and the
    health engine's windowed quantiles.
    """
    total = sum(counts)
    if not total:
        return 0.0
    if q <= 0.0 and lo is not None:
        return lo
    if q >= 1.0 and hi is not None:
        return hi
    target = q * total
    seen = 0
    result = buckets[-1] if hi is None else hi
    for index, count in enumerate(counts):
        seen += count
        if seen >= target:
            if index < len(buckets):
                result = buckets[index]
            break
    if lo is not None and result < lo:
        result = lo
    if hi is not None and result > hi:
        result = hi
    return result


class MetricsRegistry:
    """Name-keyed instrument registry plus the sampled time series."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: (run, sim time, name, value) gauge/counter snapshots.
        self.samples: List[Tuple[int, float, str, float]] = []

    # -- registration (get-or-create; a gauge re-registered with a new
    # callback rebinds, so rebuilt deployments keep their names) --------
    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets)
        return histogram

    # -- sampling -------------------------------------------------------
    def sample(self, now: float, run: int = 0) -> None:
        """Snapshot every gauge and counter at simulation time ``now``
        (what the daemon sampler calls each tick)."""
        for name in sorted(self.gauges):
            self.samples.append((run, now, name, self.gauges[name].read()))
        for name in sorted(self.counters):
            self.samples.append((run, now, name, float(self.counters[name].value)))

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write samples then final instrument states (after the schema
        header); returns the payload line count."""
        lines = 0
        with open(path, "w") as handle:
            write_schema_header(handle, "metrics")

            def emit(record: Dict[str, Any]) -> None:
                nonlocal lines
                handle.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")))
                handle.write("\n")
                lines += 1

            for run, t, name, value in self.samples:
                emit({"type": "sample", "run": run, "t": t,
                      "name": name, "value": value})
            for name in sorted(self.counters):
                emit({"type": "counter", "name": name,
                      "value": self.counters[name].value})
            for name in sorted(self.gauges):
                emit({"type": "gauge", "name": name,
                      "value": self.gauges[name].read()})
            for name in sorted(self.histograms):
                histogram = self.histograms[name]
                emit({
                    "type": "histogram", "name": name,
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "count": histogram.count, "sum": histogram.sum,
                    "min": histogram.min, "max": histogram.max,
                })
        return lines

    def to_prometheus(self) -> str:
        """Final instrument states in the Prometheus text exposition
        format (one flat time series per instrument: dots become
        underscores under a ``scotch_`` prefix, counters gain the
        ``_total`` suffix, histograms emit cumulative ``le`` buckets)."""
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = prometheus_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prometheus_value(self.counters[name].value)}")
        for name in sorted(self.gauges):
            metric = prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prometheus_value(self.gauges[name].read())}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            metric = prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(histogram.buckets, histogram.counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{_prometheus_value(bound)}"}} '
                             f"{cumulative}")
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_prometheus_value(histogram.sum)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus(self, path: str) -> int:
        """Write :meth:`to_prometheus` to ``path``; returns line count."""
        text = self.to_prometheus()
        with open(path, "w") as handle:
            handle.write(text)
        return text.count("\n")


def prometheus_name(name: str) -> str:
    """Sanitize a registry name into a Prometheus metric name."""
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "scotch_" + sanitized


def _prometheus_value(value: Any) -> str:
    """Render a sample value: integral floats print as integers."""
    if value is None:
        return "NaN"
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class MetricsSampler:
    """Daemon process snapshotting a registry on a sim-time tick.

    Scheduled as daemon events, so an un-horizoned run still stops when
    its real work drains.  One sampler is created per bound simulator by
    :meth:`repro.obs.Observability.bind`.
    """

    def __init__(self, sim: Any, registry: MetricsRegistry,
                 interval: float, run: int = 0):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.run = run
        self.ticks = 0
        # Restart-safe tick chain (sim.process.PeriodicTimer owns the
        # pending event, so stop()/start() can never double the chain).
        from repro.sim.process import PeriodicTimer

        self._timer = PeriodicTimer(sim, interval, self._tick)

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _tick_event(self) -> Optional[Any]:
        return self._timer.event

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        self.registry.sample(self.sim.now, run=self.run)
        self.ticks += 1
        self._timer.rearm()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a metrics file exported by
    :meth:`MetricsRegistry.export_jsonl` (schema header skipped)."""
    out: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                record = json.loads(line)
                if not is_schema_record(record):
                    out.append(record)
    return out

