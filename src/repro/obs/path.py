"""Control-path trace stages.

One Packet-In's journey — miss at the data plane, OFA queueing, channel
transit, controller handling — is a single logical trace whose context
must survive hops between components that never see each other.  The
context rides in ``packet.metadata`` under the keys below; these helpers
own all of that bookkeeping so the instrumented components stay one
call each.

Stage spans (each also a row in `scotch-repro inspect`):

* ``packet_in``             — the whole journey (punt → route decision);
  args carry the originating switch id, the overlay relay vSwitch when
  the flow detoured (``relay``), the decision (``route``) and the
  controller handling duration (``handle_s``).
* ``ofa.queue``             — OFA Packet-In queue wait + service.
* ``channel.to_controller`` — management-channel transit.
* ``controller.handle``     — Packet-In arrival at the controller to the
  app's route decision (for Scotch: through the Fig. 7 rate-R queues).
* ``ofa.install``           — FlowMod-ADD admission → committed/lost
  (opened by the OFA itself, not keyed through a packet).

Every helper is a cheap no-op when tracing is disabled.
"""

from __future__ import annotations

from typing import Any, Optional

KEY_PKTIN = "obs_pktin"
KEY_STAGE = "obs_stage"
KEY_HANDLE = "obs_handle"
KEY_DEFERRED = "obs_deferred"

#: Span names (shared with inspect/report code).
SPAN_PACKET_IN = "packet_in"
SPAN_OFA_QUEUE = "ofa.queue"
SPAN_CHANNEL = "channel.to_controller"
SPAN_HANDLE = "controller.handle"
SPAN_INSTALL = "ofa.install"

STAGE_SPANS = (SPAN_OFA_QUEUE, SPAN_CHANNEL, SPAN_HANDLE, SPAN_INSTALL,
               SPAN_PACKET_IN)


def punt_begin(obs: Any, packet: Any, switch: str, in_port: int, reason: str) -> None:
    """The data plane handed a packet to the OFA: open the journey span
    and the OFA-queue stage."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    track = f"switch:{switch}"
    pktin = tracer.begin(
        SPAN_PACKET_IN, track=track, switch=switch, in_port=in_port, reason=reason)
    packet.metadata[KEY_PKTIN] = pktin
    if tracer.causality:
        # Stage spans link back to their journey so the critical-path
        # analyzer can walk the DAG under each packet_in (obs/critpath).
        packet.metadata[KEY_STAGE] = tracer.begin(
            SPAN_OFA_QUEUE, track=track, switch=switch, journey=pktin)
    else:
        packet.metadata[KEY_STAGE] = tracer.begin(
            SPAN_OFA_QUEUE, track=track, switch=switch)


def punt_dropped(obs: Any, packet: Any) -> None:
    """The OFA queue overflowed: the journey ends here."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    tracer.end(packet.metadata.pop(KEY_STAGE, -1), dropped=True)
    # handle_s is 0: the packet never reached the controller.
    tracer.end(packet.metadata.pop(KEY_PKTIN, -1), route="lost", dropped=True,
               handle_s=0.0)


def packet_in_sent(obs: Any, packet: Any, switch: str) -> None:
    """The OFA emitted the Packet-In: OFA-queue stage ends, channel
    transit begins."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    tracer.end(packet.metadata.pop(KEY_STAGE, -1))
    if tracer.causality:
        packet.metadata[KEY_STAGE] = tracer.begin(
            SPAN_CHANNEL, track=f"switch:{switch}", switch=switch,
            journey=packet.metadata.get(KEY_PKTIN, -1))
    else:
        packet.metadata[KEY_STAGE] = tracer.begin(
            SPAN_CHANNEL, track=f"switch:{switch}", switch=switch)


def packet_in_received(obs: Any, packet: Any, dpid: str,
                       relayed: bool) -> None:
    """The controller received the Packet-In: channel stage ends,
    handling begins.  ``relayed`` marks overlay Packet-Ins (``dpid`` is
    then the relaying vSwitch, recorded on the journey span)."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    tracer.end(packet.metadata.pop(KEY_STAGE, -1))
    if tracer.causality:
        packet.metadata[KEY_HANDLE] = tracer.begin(
            SPAN_HANDLE, track="controller", switch=dpid,
            journey=packet.metadata.get(KEY_PKTIN, -1))
    else:
        packet.metadata[KEY_HANDLE] = tracer.begin(
            SPAN_HANDLE, track="controller", switch=dpid)
    if relayed:
        tracer.annotate(packet.metadata.get(KEY_PKTIN, -1), relay=dpid)


def attribute(obs: Any, packet: Any, origin: str, in_port: int) -> None:
    """The app inverted the overlay labels: stamp the true origin switch
    onto the journey span (§5.2 attribution)."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    tracer.annotate(packet.metadata.get(KEY_PKTIN, -1),
                    switch=origin, in_port=in_port)


def defer(packet: Any) -> None:
    """The app queued the flow for a later decision — tell the
    controller's dispatch epilogue not to close the spans."""
    packet.metadata[KEY_DEFERRED] = True


def decision(obs: Any, packet: Any, route: str) -> None:
    """The route decision exists: close the handling stage and the
    journey span.  Idempotent (span keys are popped), so the generic
    close in the controller and an app-side close cannot double-record."""
    tracer = obs.tracer
    if not tracer.enabled:
        return
    packet.metadata.pop(KEY_DEFERRED, None)
    handle_s: Optional[float] = None
    handle = packet.metadata.pop(KEY_HANDLE, None)
    if handle is not None:
        handle_s = tracer.elapsed(handle)
        tracer.end(handle, route=route)
    pktin = packet.metadata.pop(KEY_PKTIN, None)
    if pktin is not None:
        total_s = tracer.elapsed(pktin)
        tracer.end(pktin, route=route,
                   handle_s=handle_s if handle_s is not None else 0.0)
        if total_s is not None and obs.metrics.enabled:
            obs.metrics.histogram("path.packet_in_latency_s").observe(total_s)


def deferred(packet: Any) -> bool:
    return bool(packet.metadata.get(KEY_DEFERRED))
