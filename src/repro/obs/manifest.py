"""Reproducibility manifests.

A manifest is one JSON file that records everything needed to rerun and
cross-check an experiment: the exact command, the seed(s), the
calibrated switch-profile constants and Scotch config in force, package
version, and the paths of any trace/metrics files the run emitted.
The paper's results live or die by this kind of bookkeeping — a figure
without its constants is not reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

MANIFEST_VERSION = 1


def _as_plain(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _as_plain(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _as_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_as_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def build_manifest(
    command: List[str],
    seed: Optional[int] = None,
    config: Any = None,
    profiles: Optional[List[Any]] = None,
    trace_path: Optional[str] = None,
    chrome_trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict (see docs/observability.md for the
    schema)."""
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover - package metadata optional
        repro_version = None
    manifest: Dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "created_at_unix": time.time(),
        "command": list(command),
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repro_version": repro_version,
        "config": _as_plain(config) if config is not None else None,
        "profiles": [_as_plain(p) for p in profiles] if profiles else [],
        "outputs": {
            "trace_jsonl": trace_path,
            "trace_chrome": chrome_trace_path,
            "metrics_jsonl": metrics_path,
        },
    }
    if extra:
        manifest["extra"] = _as_plain(extra)
    return manifest


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_manifest(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
