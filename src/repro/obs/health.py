"""The streaming health engine: windowed SLIs + alert rules, in sim time.

A :class:`HealthEngine` is a read-only daemon on top of the
:class:`~repro.obs.metrics.MetricsRegistry` the instrumented components
already write to.  Each tick it snapshots every counter and histogram,
computes a catalog of **SLIs** over sliding simulation-time windows
(rates from counter deltas, windowed quantiles from bucket-count
deltas, saturations against capacity gauges), feeds them through the
alert rules (:mod:`repro.obs.rules`), and appends any state transitions
to a deterministic alert timeline.

Determinism contract (locked in by ``tests/test_obs_health.py`` and the
scorecard tests): the engine never mutates model state, draws no
randomness, and schedules only daemon events — a run with health
enabled produces bit-identical model results to one without, and equal
seeds produce byte-identical alert timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, bucket_quantile
from repro.obs.rules import AlertRule, AlertState, builtin_rules
from repro.obs.rules import timeline_jsonl as _timeline_jsonl
from repro.sim.process import PeriodicTimer

#: SLI kinds (see :class:`SliSpec`).
KIND_RATE = "rate"
KIND_GAUGE = "gauge"
KIND_QUANTILE = "quantile"
KIND_SATURATION = "saturation"
KIND_RATIO = "ratio"


@dataclass(frozen=True)
class SliSpec:
    """Recipe for one streaming SLI.

    * ``rate``: sum over counters matching ``patterns`` of the windowed
      increment, divided by the window span (events/second).
    * ``gauge``: aggregate (``agg``: ``max`` or ``sum``) of the current
      values of gauges matching ``gauge_pattern``.
    * ``quantile``: windowed quantile ``q`` of histogram ``histogram``
      (bucket-count deltas over the window).
    * ``saturation``: per-entity rate over ``patterns`` divided by the
      entity's capacity gauge.  Each pattern carries exactly one ``*``;
      the captured wildcard fills ``capacity`` (a ``{}`` template).
      ``agg='max'`` reports the most saturated entity, ``agg='total'``
      the ratio of summed rates to summed capacities.
    * ``ratio``: windowed rate over ``patterns`` divided by the rate
      over ``denominator``; reads 1.0 while the denominator rate is
      below ``min_demand`` (no demand ⇒ healthy).
    """

    name: str
    kind: str
    window: float = 1.0
    patterns: Tuple[str, ...] = ()
    agg: str = "sum"
    gauge_pattern: str = ""
    histogram: str = ""
    q: float = 0.5
    capacity: str = ""
    denominator: Tuple[str, ...] = ()
    min_demand: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (KIND_RATE, KIND_GAUGE, KIND_QUANTILE,
                             KIND_SATURATION, KIND_RATIO):
            raise ValueError(f"SLI {self.name!r}: unknown kind {self.kind!r}")
        if self.window <= 0:
            raise ValueError(f"SLI {self.name!r}: window must be positive")


def default_slis() -> Tuple[SliSpec, ...]:
    """The SLI catalog of docs/observability.md#streaming-slis."""
    return (
        SliSpec("packet_in.latency_p50", KIND_QUANTILE, window=1.0,
                histogram="path.packet_in_latency_s", q=0.5),
        SliSpec("packet_in.latency_p99", KIND_QUANTILE, window=1.0,
                histogram="path.packet_in_latency_s", q=0.99),
        SliSpec("packet_in.drop_rate", KIND_RATE, window=1.0,
                patterns=("ofa.*.packet_in_drops",)),
        SliSpec("ofa.queue_depth", KIND_GAUGE,
                gauge_pattern="ofa.*.packet_in_queue", agg="max"),
        # Packet-In *arrivals* (emitted + queue-dropped) against the
        # OFA's generation capacity: >1 means the flash crowd is
        # offering more than the weakest OFA can punt (§3).
        SliSpec("ofa.saturation", KIND_SATURATION, window=1.0,
                patterns=("ofa.*.packet_ins", "ofa.*.packet_in_drops"),
                capacity="ofa.{}.packet_in_capacity", agg="max"),
        SliSpec("overlay.relay_rate", KIND_RATE, window=1.0,
                patterns=("overlay.relay.*",)),
        SliSpec("overlay.utilization", KIND_SATURATION, window=1.0,
                patterns=("overlay.relay.*",),
                capacity="ofa.{}.packet_in_capacity", agg="total"),
        SliSpec("channel.error_rate", KIND_RATE, window=0.75,
                patterns=("channel.*.to_switch_dropped",
                          "channel.*.to_controller_dropped",
                          "channel.*.to_switch_dead",
                          "channel.*.to_controller_dead")),
        SliSpec("heartbeat.miss_rate", KIND_RATE, window=1.0,
                patterns=("heartbeat.misses",)),
        SliSpec("install.retry_rate", KIND_RATE, window=1.0,
                patterns=("reliable.retries",)),
        SliSpec("controller.packet_in_rate", KIND_RATE, window=0.5,
                patterns=("controller.packet_ins",)),
        SliSpec("controller.delivery_ratio", KIND_RATIO, window=0.5,
                patterns=("controller.packet_ins",),
                denominator=("ofa.*.packet_ins",), min_demand=10.0),
        # Control-channel bytes the flow-measurement machinery itself
        # consumes (stats requests + replies + sample exports) — the
        # overhead axis of the sampled-telemetry scorecard.
        SliSpec("monitoring_bytes_rate", KIND_RATE, window=1.0,
                patterns=("stats.bytes.*",)),
        # Seconds since the flow estimator last heard from its
        # worst-served vSwitch.  The gauges exist only in sample/hybrid
        # stats modes, so under full polling this reads 0.0 and the
        # estimator-starvation alert is inert.
        SliSpec("estimate_staleness", KIND_GAUGE,
                gauge_pattern="telemetry.*.estimate_staleness", agg="max"),
    )


def pool_slis() -> Tuple[SliSpec, ...]:
    """Controller-pool SLIs (docs/cluster.md) — appended to
    :func:`default_slis` by pool scenarios; never part of the default
    catalog, so single-controller health output is unchanged."""
    return (
        # Packet-Ins arriving at the pool frontend while their switch
        # has no live acked master (the failover pain signal).
        SliSpec("pool.orphan_rate", KIND_RATE, window=1.0,
                patterns=("pool.orphaned",)),
        # Aggregate Packet-In rate across the whole pool — the
        # autoscaler's input, exposed for the flash-crowd rule.
        SliSpec("pool.packet_in_rate", KIND_RATE, window=0.5,
                patterns=("pool.packet_ins",)),
        SliSpec("pool.members_live", KIND_GAUGE,
                gauge_pattern="pool.members_live", agg="max"),
        # Tail of the crash -> new-master-acked window.
        SliSpec("pool.failover_p95", KIND_QUANTILE, window=5.0,
                histogram="pool.failover_window_s", q=0.95),
    )


@dataclass
class _Snapshot:
    t: float
    counters: Dict[str, int] = field(default_factory=dict)
    hist_counts: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


def _wildcard_capture(pattern: str, name: str) -> Optional[str]:
    """The text matched by the single ``*`` in ``pattern``, or None."""
    prefix, star, suffix = pattern.partition("*")
    if not star:
        return name if name == pattern else None
    if (name.startswith(prefix) and name.endswith(suffix)
            and len(name) >= len(prefix) + len(suffix)):
        return name[len(prefix):len(name) - len(suffix)] or None
    return None


class HealthEngine:
    """Streaming SLI computation + alert evaluation on a sim-time tick.

    Read-only over ``registry``; schedules only daemon events (an
    un-horizoned run still stops when its real work drains).  ``series``
    maps SLI name to ``[(t, value), ...]``; ``timeline`` is the ordered
    list of alert transitions (:mod:`repro.obs.rules` record format).
    """

    def __init__(
        self,
        sim: Any,
        registry: MetricsRegistry,
        rules: Optional[Sequence[AlertRule]] = None,
        slis: Optional[Sequence[SliSpec]] = None,
        interval: float = 0.25,
    ):
        if interval <= 0:
            raise ValueError("health interval must be positive")
        if not getattr(registry, "enabled", False):
            raise ValueError("HealthEngine needs an enabled MetricsRegistry")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.slis: Tuple[SliSpec, ...] = tuple(
            slis if slis is not None else default_slis())
        self.rules: List[AlertRule] = list(
            rules if rules is not None else builtin_rules())
        sli_names = {spec.name for spec in self.slis}
        for rule in self.rules:
            if rule.sli not in sli_names:
                raise ValueError(
                    f"rule {rule.name!r} references unknown SLI {rule.sli!r}")
        self.states: Dict[str, AlertState] = {
            rule.name: AlertState(rule) for rule in self.rules}
        self.series: Dict[str, List[Tuple[float, float]]] = {
            spec.name: [] for spec in self.slis}
        self.timeline: List[Dict[str, object]] = []
        #: Called with each appended timeline record (after the append);
        #: how the postmortem collector sees firings the moment they
        #: happen.  Must be read-only over the model.
        self.on_transition: Optional[Any] = None
        self.ticks = 0
        # Restart-safe tick chain (sim.process.PeriodicTimer owns the
        # pending event, so stop()/start() can never double the chain).
        self._timer = PeriodicTimer(sim, interval, self._tick)
        self._history: List[_Snapshot] = []
        self._max_window = max((s.window for s in self.slis), default=1.0)

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _tick_event(self) -> Optional[Any]:
        return self._timer.event

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._timer.running:
            return
        self._history = [self._snapshot()]
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # -- tick -----------------------------------------------------------
    def _snapshot(self) -> _Snapshot:
        registry = self.registry
        return _Snapshot(
            t=self.sim.now,
            counters={name: counter.value
                      for name, counter in registry.counters.items()},
            hist_counts={name: tuple(histogram.counts)
                         for name, histogram in registry.histograms.items()},
        )

    def _tick(self) -> None:
        if not self._timer.running:
            return
        now = self.sim.now
        snap = self._snapshot()
        self._history.append(snap)
        values = self.compute(now, snap)
        for name, value in values.items():
            self.series[name].append((round(now, 9), round(value, 9)))
        for state in self.states.values():
            value = values.get(state.rule.sli, 0.0)
            transitions = state.evaluate(now, value)
            self.timeline.extend(transitions)
            if self.on_transition is not None:
                for record in transitions:
                    self.on_transition(record)
        self.ticks += 1
        self._trim(now)
        self._timer.rearm()

    def _trim(self, now: float) -> None:
        horizon = now - self._max_window - self.interval
        keep = 0
        while (keep + 1 < len(self._history)
               and self._history[keep + 1].t <= horizon):
            keep += 1
        if keep:
            del self._history[:keep]

    def _baseline(self, now: float, window: float) -> _Snapshot:
        """Latest snapshot at or before ``now - window`` (the earliest
        one early in the run, so short histories use the actual span)."""
        target = now - window + 1e-9
        best = self._history[0]
        for snap in self._history:
            if snap.t <= target:
                best = snap
            else:
                break
        return best

    # -- SLI computation ------------------------------------------------
    def compute(self, now: float,
                snap: Optional[_Snapshot] = None) -> Dict[str, float]:
        """Every SLI's value at ``now`` (insertion order preserved)."""
        if snap is None:
            snap = self._snapshot()
        values: Dict[str, float] = {}
        for spec in self.slis:
            values[spec.name] = self._compute_one(spec, now, snap)
        return values

    def _compute_one(self, spec: SliSpec, now: float, snap: _Snapshot) -> float:
        if spec.kind == KIND_GAUGE:
            matched = [gauge.read()
                       for name, gauge in sorted(self.registry.gauges.items())
                       if fnmatchcase(name, spec.gauge_pattern)]
            if not matched:
                return 0.0
            return max(matched) if spec.agg == "max" else sum(matched)

        base = self._baseline(now, spec.window)
        span = now - base.t
        if span <= 0:
            return 1.0 if spec.kind == KIND_RATIO else 0.0

        if spec.kind == KIND_RATE:
            delta = self._delta(spec.patterns, snap, base)
            return delta / span

        if spec.kind == KIND_QUANTILE:
            histogram = self.registry.histograms.get(spec.histogram)
            if histogram is None:
                return 0.0
            cur = snap.hist_counts.get(spec.histogram)
            old = base.hist_counts.get(spec.histogram)
            if cur is None:
                return 0.0
            if old is None or len(old) != len(cur):
                old = (0,) * len(cur)
            deltas = [c - o for c, o in zip(cur, old)]
            return bucket_quantile(histogram.buckets, deltas, spec.q,
                                   lo=histogram.min, hi=histogram.max)

        if spec.kind == KIND_SATURATION:
            rates: Dict[str, float] = {}
            for pattern in spec.patterns:
                for name in snap.counters:
                    entity = _wildcard_capture(pattern, name)
                    if entity is None:
                        continue
                    delta = snap.counters[name] - base.counters.get(name, 0)
                    rates[entity] = rates.get(entity, 0.0) + delta / span
            ratios: List[float] = []
            total_rate = total_capacity = 0.0
            for entity in sorted(rates):
                gauge = self.registry.gauges.get(spec.capacity.format(entity))
                capacity = gauge.read() if gauge is not None else 0.0
                if capacity <= 0:
                    continue
                ratios.append(rates[entity] / capacity)
                total_rate += rates[entity]
                total_capacity += capacity
            if spec.agg == "total":
                return total_rate / total_capacity if total_capacity else 0.0
            return max(ratios) if ratios else 0.0

        if spec.kind == KIND_RATIO:
            demand = self._delta(spec.denominator, snap, base) / span
            if demand < spec.min_demand:
                return 1.0
            return (self._delta(spec.patterns, snap, base) / span) / demand

        raise AssertionError(spec.kind)  # unreachable; __post_init__ guards

    def _delta(self, patterns: Tuple[str, ...], snap: _Snapshot,
               base: _Snapshot) -> float:
        total = 0.0
        for pattern in patterns:
            if "*" in pattern or "?" in pattern or "[" in pattern:
                for name in snap.counters:
                    if fnmatchcase(name, pattern):
                        total += snap.counters[name] - base.counters.get(name, 0)
            else:
                total += (snap.counters.get(pattern, 0)
                          - base.counters.get(pattern, 0))
        return total

    # -- results --------------------------------------------------------
    def latest(self) -> Dict[str, float]:
        """The most recent value of every SLI (0.0 before any tick)."""
        return {name: points[-1][1] if points else 0.0
                for name, points in self.series.items()}

    def firing_intervals(self, end: float) -> List[Tuple[str, float, float]]:
        """Every firing as ``(rule, t0, t1)``; open firings clamp to
        ``end``.  Sorted by start time then rule name."""
        out: List[Tuple[str, float, float]] = []
        for name, state in self.states.items():
            for t0, t1 in state.firings:
                out.append((name, t0, end if t1 is None else t1))
        out.sort(key=lambda item: (item[1], item[0]))
        return out

    def timeline_jsonl(self) -> str:
        """The alert timeline as JSON lines — byte-identical for equal
        seeds (same contract as the fault log)."""
        return _timeline_jsonl(self.timeline)

    def export_timeline(self, path: str) -> int:
        """Write the timeline JSONL to ``path`` (behind the schema
        header); returns the transition record count."""
        from repro.obs.schema import write_schema_header

        text = self.timeline_jsonl()
        with open(path, "w") as handle:
            write_schema_header(handle, "alert_timeline")
            handle.write(text)
            if text:
                handle.write("\n")
        return len(self.timeline)
