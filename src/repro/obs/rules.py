"""Declarative alert rules over streaming SLIs (docs/observability.md).

A rule is one line of a small Prometheus-flavoured DSL::

    name: <sli> <op> <threshold> [for SEC] [clear VALUE]
          [detects class[,class...]] [severity LEVEL]

* ``op`` is ``>`` or ``<`` against the SLI's current windowed value;
* ``for`` is the hold duration — the condition must stay breached that
  many simulation seconds before the alert fires (Prometheus ``for:``);
* ``clear`` is the hysteresis level: a firing ``>``-rule resolves only
  once the SLI falls back to ``<= clear`` (a ``<``-rule once it climbs
  back to ``>= clear``), so an SLI jittering around the threshold does
  not flap the alert;
* ``detects`` names the fault classes (``FaultInjector`` kinds, plus the
  synthetic ``flash_crowd``) whose ground-truth windows this rule is
  expected to cover — the detection scorecard joins on it;
* ``severity`` is a free-form label carried into the timeline.

Evaluation is a pending → firing → resolved state machine
(:class:`AlertState`), advanced once per health-engine tick.  Every
transition appends one record to the deterministic alert timeline:
same seed ⇒ byte-identical JSONL.

``<``-rules additionally *arm on activity*: the rule stays inactive
until its SLI first reaches the clear level, so "rate fell to zero"
alerts cannot fire before the measured subsystem has ever been active
(e.g. at the very start of a run, before traffic begins).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Alert states / timeline transition kinds.
STATE_INACTIVE = "inactive"
STATE_PENDING = "pending"
STATE_FIRING = "firing"
TRANSITION_RESOLVED = "resolved"
TRANSITION_CANCELLED = "cancelled"


@dataclass(frozen=True)
class AlertRule:
    """One parsed rule; immutable, hashable, order-preserving."""

    name: str
    sli: str
    op: str
    threshold: float
    for_s: float = 0.0
    clear: Optional[float] = None
    detects: Tuple[str, ...] = ()
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"rule {self.name!r}: op must be '>' or '<'")
        if self.for_s < 0:
            raise ValueError(f"rule {self.name!r}: 'for' must be >= 0")

    @property
    def clear_level(self) -> float:
        return self.threshold if self.clear is None else self.clear

    def breached(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" else value < self.threshold

    def cleared(self, value: float) -> bool:
        level = self.clear_level
        return value <= level if self.op == ">" else value >= level

    def to_line(self) -> str:
        """Render back to DSL form (parse/render round-trips)."""
        parts = [f"{self.name}: {self.sli} {self.op} {self.threshold:g}"]
        if self.for_s:
            parts.append(f"for {self.for_s:g}")
        if self.clear is not None:
            parts.append(f"clear {self.clear:g}")
        if self.detects:
            parts.append("detects " + ",".join(self.detects))
        if self.severity != "warning":
            parts.append(f"severity {self.severity}")
        return " ".join(parts)


def _number(token: str, rule: str, key: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"rule {rule!r}: {key} wants a number, got {token!r}")


def parse_rule(line: str) -> AlertRule:
    """Parse one DSL line into an :class:`AlertRule`."""
    head, sep, rest = line.partition(":")
    name = head.strip()
    if not sep or not name:
        raise ValueError(f"alert rule needs 'name: expression': {line!r}")
    tokens = rest.split()
    if len(tokens) < 3:
        raise ValueError(f"rule {name!r} needs '<sli> <op> <threshold>'")
    sli, op = tokens[0], tokens[1]
    if op not in (">", "<"):
        raise ValueError(f"rule {name!r}: unknown operator {op!r}")
    threshold = _number(tokens[2], name, "threshold")
    for_s = 0.0
    clear: Optional[float] = None
    detects: Tuple[str, ...] = ()
    severity = "warning"
    index = 3
    while index < len(tokens):
        key = tokens[index]
        if index + 1 >= len(tokens):
            raise ValueError(f"rule {name!r}: dangling keyword {key!r}")
        value = tokens[index + 1]
        if key == "for":
            for_s = _number(value, name, "for")
        elif key == "clear":
            clear = _number(value, name, "clear")
        elif key == "detects":
            detects = tuple(c for c in value.split(",") if c)
        elif key == "severity":
            severity = value
        else:
            raise ValueError(f"rule {name!r}: unknown keyword {key!r}")
        index += 2
    return AlertRule(name=name, sli=sli, op=op, threshold=threshold,
                     for_s=for_s, clear=clear, detects=detects,
                     severity=severity)


def parse_rules(text: str) -> List[AlertRule]:
    """Parse a rule file: one rule per line, ``#`` comments, blanks ok.
    Duplicate rule names are rejected."""
    rules: List[AlertRule] = []
    seen: set = set()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rule = parse_rule(line)
        if rule.name in seen:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)
        rules.append(rule)
    return rules


#: The built-in rules: one per failure shape of the paper's scenario
#: family (flash-crowd/OFA overload §3, overlay-path congestion §5.3,
#: dead vSwitch §5.6, controller outage).  Thresholds assume the SLI
#: catalog of :func:`repro.obs.health.default_slis` and the chaos
#: scenario's traffic scale; `detects` lists every fault class whose
#: telemetry signature legitimately trips the rule, so the scorecard
#: can tell designed coverage from a false positive.
BUILTIN_RULES_TEXT = """\
# OFA overload / flash-crowd onset: Packet-In arrivals (emitted +
# dropped) exceed the weakest OFA's generation capacity.
ofa_overload: ofa.saturation > 0.9 for 0.5 clear 0.6 detects flash_crowd severity critical

# Overlay-path congestion: control-channel messages dying (impairment
# drops + disconnect dead-letters) faster than background noise.
path_congestion: channel.error_rate > 2 for 0.2 clear 0.5 detects channel_loss,channel_flap,partition,vswitch_crash,controller_outage severity warning

# Dead vSwitch: heartbeat echoes going unanswered.
vswitch_dead: heartbeat.miss_rate > 0.5 for 0.2 clear 0.25 detects vswitch_crash,ofa_stall,partition,controller_outage severity critical

# Controller outage: the controller stops receiving the Packet-Ins the
# OFAs are still emitting (ratio of delivered to generated).
controller_outage: controller.delivery_ratio < 0.1 for 0.25 clear 0.5 detects controller_outage severity critical

# Estimator starvation (sampled-telemetry mode only): a sampling
# vSwitch's timer exports stop reaching the flow estimator — the
# vSwitch died, the path partitioned, or the controller went dark.
# Inert under full polling: no staleness gauges exist, the SLI reads 0.
estimator_starved: estimate_staleness > 1.5 for 0.5 clear 0.75 detects vswitch_crash,partition,controller_outage severity warning
"""


def builtin_rules() -> List[AlertRule]:
    """The four built-in failure-shape rules (parsed fresh per call)."""
    return parse_rules(BUILTIN_RULES_TEXT)


#: Controller-pool rules (docs/cluster.md) — kept OUT of
#: :data:`BUILTIN_RULES_TEXT` so single-controller deployments (and
#: their golden alert timelines) never see them; pool scenarios append
#: ``pool_rules()`` explicitly.  SLI catalog:
#: :func:`repro.obs.health.pool_slis`.  Thresholds assume the default
#: pool config (scale-up high-water 4000 pps).
POOL_RULES_TEXT = """\
# A pool member died (or a partition isolated it): its switches'
# Packet-Ins land in the orphan buffer until the leader promotes a new
# master for each.
pool_member_down: pool.orphan_rate > 1 for 0.2 clear 0.5 detects pool_member_crash,pool_partition severity critical

# Pool-wide flash crowd: aggregate Packet-In rate at the pool frontend
# crosses the autoscaler's high-water mark.
pool_flash_crowd: pool.packet_in_rate > 4000 for 0.5 clear 2000 detects flash_crowd severity warning
"""


def pool_rules() -> List[AlertRule]:
    """The controller-pool failure-shape rules (parsed fresh per call)."""
    return parse_rules(POOL_RULES_TEXT)


class AlertState:
    """Runtime state machine of one rule.

    ``firings`` accumulates ``[t0, t1]`` intervals (``t1`` is None while
    still firing); the scorecard reads them directly.
    """

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.state = STATE_INACTIVE
        #: ``<``-rules arm once the SLI first shows activity (reaches
        #: the clear level); ``>``-rules are armed from the start.
        self.armed = rule.op == ">"
        self.pending_since: Optional[float] = None
        self.firings: List[List[Optional[float]]] = []

    @property
    def firing(self) -> bool:
        return self.state == STATE_FIRING

    def evaluate(self, now: float, value: float) -> List[Dict[str, object]]:
        """Advance one tick; returns the transition records emitted."""
        out: List[Dict[str, object]] = []
        rule = self.rule
        if not self.armed:
            if value >= rule.clear_level:
                self.armed = True
            else:
                return out
        breached = rule.breached(value)
        if self.state == STATE_INACTIVE:
            if breached:
                if rule.for_s > 0:
                    self.state = STATE_PENDING
                    self.pending_since = now
                    out.append(self._record(now, STATE_PENDING, value))
                else:
                    self._fire(now, value, out)
        elif self.state == STATE_PENDING:
            if not breached:
                self.state = STATE_INACTIVE
                self.pending_since = None
                out.append(self._record(now, TRANSITION_CANCELLED, value))
            elif now - self.pending_since >= rule.for_s - 1e-12:
                self._fire(now, value, out)
        elif self.state == STATE_FIRING:
            if rule.cleared(value):
                self.state = STATE_INACTIVE
                self.firings[-1][1] = now
                out.append(self._record(now, TRANSITION_RESOLVED, value))
        return out

    def _fire(self, now: float, value: float, out: list) -> None:
        self.state = STATE_FIRING
        self.pending_since = None
        self.firings.append([now, None])
        out.append(self._record(now, STATE_FIRING, value))

    def _record(self, now: float, state: str, value: float) -> Dict[str, object]:
        return {
            "t": round(now, 9),
            "alert": self.rule.name,
            "state": state,
            "sli": self.rule.sli,
            "value": round(value, 9),
            "severity": self.rule.severity,
        }


def timeline_jsonl(timeline: List[Dict[str, object]]) -> str:
    """Render an alert timeline as JSON lines (stable key order) —
    byte-identical for equal seeds."""
    return "\n".join(
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in timeline
    )
