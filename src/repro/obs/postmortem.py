"""Postmortem bundles: the "why", captured at the moment of failure.

When an alert fires (:class:`~repro.obs.health.HealthEngine` transition
callback) or an invariant trips
(:class:`~repro.faults.invariants.InvariantChecker.on_violation`), a
:class:`PostmortemCollector` freezes everything a person needs to
explain the failure, *at the time it happened*:

* the trigger itself (time, kind, name, detail, producing event id);
* the **causal ancestry** of the triggering simulator event — the
  engine's provenance chain (:meth:`repro.sim.engine.Simulator.ancestry`),
  bounded in depth;
* the **flight-recorder window** — recent dispatched events, completed
  trace spans and counter deltas (:mod:`repro.obs.flight`);
* the active alert/fault context — alerts currently firing, injected
  faults currently open;
* a deterministic run **context** (seed, rates, config) supplied by the
  scenario.

Bundles contain only simulation-derived values (no wall clock, no
platform strings, no object reprs), so two same-seed runs emit
byte-identical bundle files — ``tests/test_postmortem.py`` pins this.
Serialization is JSONL with typed records behind a schema header
(:mod:`repro.obs.schema`, kind ``postmortem``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.schema import is_schema_record, schema_line

#: Keep at most this many bundles per run (first-N; later triggers are
#: counted in ``dropped`` rather than collected).
DEFAULT_MAX_BUNDLES = 16
#: Ancestry depth bound.
DEFAULT_MAX_DEPTH = 48


def open_faults(log: List[Dict[str, Any]], now: float) -> List[Dict[str, Any]]:
    """Fault windows still open at ``now``, from an injector log.

    ``inject``/``down`` opens a ``(kind, target)`` window,
    ``clear``/``up`` closes it; self-expiring faults (entries carrying a
    ``duration`` detail, e.g. ``ofa_stall``) auto-close at
    ``t + duration``.
    """
    windows: Dict[tuple, Dict[str, Any]] = {}
    for entry in log:
        t = float(entry["t"])
        if t > now:
            break
        key = (entry["kind"], entry["target"])
        phase = entry["phase"]
        if phase in ("inject", "down"):
            until = None
            if "duration" in entry:
                until = t + float(entry["duration"])
            windows[key] = {"kind": entry["kind"], "target": entry["target"],
                            "since": t, "until": until}
        elif phase in ("clear", "up"):
            windows.pop(key, None)
    out = []
    for key in sorted(windows):
        window = windows[key]
        until = window.pop("until")
        if until is not None and now >= until:
            continue
        out.append(window)
    return out


class PostmortemCollector:
    """Builds bundles on alert firings and invariant violations.

    Wire it up with ``health.on_transition = collector.on_alert`` and
    ``checker.on_violation = collector.on_violation`` (run_chaos does
    both when ``postmortem=True``).  The collector only reads — it
    never schedules events or mutates model state, so a collecting run
    stays bit-identical to a non-collecting one.
    """

    def __init__(
        self,
        sim: Any,
        flight: Optional[Any] = None,
        injector: Optional[Any] = None,
        context: Optional[Dict[str, Any]] = None,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        self.sim = sim
        self.flight = flight
        self.injector = injector
        self.context = dict(context or {})
        self.max_bundles = max_bundles
        self.max_depth = max_depth
        self.bundles: List[Dict[str, Any]] = []
        #: Triggers past the bundle cap (counted, not collected).
        self.dropped = 0
        self._firing: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Trigger entry points
    # ------------------------------------------------------------------
    def on_alert(self, record: Dict[str, Any]) -> None:
        """Health-engine transition feed; bundles on ``firing``."""
        name = str(record.get("alert"))
        state = record.get("state")
        if state == "firing":
            self._firing[name] = float(record["t"])
            self._trigger("alert", name, {
                "sli": record.get("sli"),
                "value": record.get("value"),
                "severity": record.get("severity"),
            })
        elif state == "resolved":
            self._firing.pop(name, None)

    def on_violation(self, violation: Any) -> None:
        """Invariant-checker feed; bundles on every violation."""
        self._trigger("invariant", violation.name,
                      {"detail": violation.detail})

    # ------------------------------------------------------------------
    def _trigger(self, kind: str, name: str, detail: Dict[str, Any]) -> None:
        if len(self.bundles) >= self.max_bundles:
            self.dropped += 1
            return
        sim = self.sim
        event = sim.current_event_id
        if self.flight is not None:
            flight = self.flight.window()
        else:
            flight = {"events": [], "spans": [], "metric_deltas": {}}
        self.bundles.append({
            "trigger": {
                "index": len(self.bundles),
                "t": round(sim.now, 9),
                "kind": kind,
                "name": name,
                "detail": {key: detail[key] for key in sorted(detail)
                           if detail[key] is not None},
                "event": None if event is None else [event[0], event[1]],
            },
            "ancestry": sim.ancestry(max_depth=self.max_depth),
            "flight": flight,
            "alerts_firing": [{"alert": alert, "since": since}
                              for alert, since in sorted(self._firing.items())],
            "faults_open": (open_faults(self.injector.log, sim.now)
                            if self.injector is not None else []),
            "context": self.context,
        })


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def bundle_jsonl(bundle: Dict[str, Any]) -> str:
    """One bundle as JSONL: schema header, then typed records, in a
    fixed order — byte-identical across same-seed runs."""
    lines = [schema_line("postmortem")]
    lines.append(_dump({"type": "trigger", **bundle["trigger"]}))
    for depth, ancestor in enumerate(bundle["ancestry"]):
        lines.append(_dump({"type": "ancestor", "depth": depth, **ancestor}))
    flight = bundle["flight"]
    for event in flight["events"]:
        lines.append(_dump({"type": "flight_event", **event}))
    for span in flight["spans"]:
        lines.append(_dump({"type": "flight_span", "span": span}))
    for name, delta in flight["metric_deltas"].items():
        lines.append(_dump({"type": "metric_delta", "name": name,
                            "delta": delta}))
    for alert in bundle["alerts_firing"]:
        lines.append(_dump({"type": "alert_context", **alert}))
    for fault in bundle["faults_open"]:
        lines.append(_dump({"type": "fault_open", **fault}))
    lines.append(_dump({"type": "context", **bundle["context"]}))
    return "\n".join(lines) + "\n"


def bundle_filename(bundle: Dict[str, Any]) -> str:
    trigger = bundle["trigger"]
    safe = "".join(c if c.isalnum() or c in "-_" else "_"
                   for c in str(trigger["name"]))
    return f"postmortem-{trigger['index']:03d}-{trigger['kind']}-{safe}.jsonl"


def export_bundles(bundles: List[Dict[str, Any]], directory: str) -> List[str]:
    """Write every bundle under ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for bundle in bundles:
        path = os.path.join(directory, bundle_filename(bundle))
        with open(path, "w") as handle:
            handle.write(bundle_jsonl(bundle))
        paths.append(path)
    return paths


def read_bundle(path: str) -> Dict[str, Any]:
    """Load a bundle file back into the in-memory bundle shape."""
    bundle: Dict[str, Any] = {
        "trigger": {}, "ancestry": [],
        "flight": {"events": [], "spans": [], "metric_deltas": {}},
        "alerts_firing": [], "faults_open": [], "context": {},
    }
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if is_schema_record(record):
                continue
            kind = record.pop("type", None)
            if kind == "trigger":
                bundle["trigger"] = record
            elif kind == "ancestor":
                record.pop("depth", None)
                bundle["ancestry"].append(record)
            elif kind == "flight_event":
                bundle["flight"]["events"].append(record)
            elif kind == "flight_span":
                bundle["flight"]["spans"].append(record["span"])
            elif kind == "metric_delta":
                bundle["flight"]["metric_deltas"][record["name"]] = \
                    record["delta"]
            elif kind == "alert_context":
                bundle["alerts_firing"].append(record)
            elif kind == "fault_open":
                bundle["faults_open"].append(record)
            elif kind == "context":
                bundle["context"] = record
    return bundle
