"""The flight recorder: bounded ring buffers of recent activity.

A :class:`FlightRecorder` keeps the last-N dispatched engine events,
the last-N completed trace spans/instants, and counter deltas since the
last :meth:`mark` — cheap enough (one deque append per event, one per
completed span) to leave on for entire chaos runs, and the raw material
of postmortem bundles (:mod:`repro.obs.postmortem`): when an alert
fires or an invariant trips, :meth:`window` freezes the recent past
into a deterministic snapshot.

Everything captured is simulation-derived, so two same-seed runs
produce identical windows — the byte-identity property the postmortem
tests pin.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.sim.engine import callback_name

#: Default ring depths: enough to cover the dispatch storm around a
#: fault without holding more than a few hundred tuples alive.
DEFAULT_EVENTS = 256
DEFAULT_SPANS = 128


class FlightRecorder:
    """Bounded, deterministic rings of recent events/spans/metric deltas."""

    def __init__(self, events: int = DEFAULT_EVENTS,
                 spans: int = DEFAULT_SPANS):
        if events < 1 or spans < 1:
            raise ValueError("flight-recorder ring sizes must be >= 1")
        #: Fed inline by the engine dispatch loop: one entry per fired
        #: event — a bare seq int when provenance is on, a
        #: ``(run, t, seq, callback)`` tuple otherwise.
        self.events: Deque[Any] = deque(maxlen=events)
        #: Fed by the tracer on every completed span/instant (record
        #: dict references; the tracer owns them).
        self.spans: Deque[Dict[str, Any]] = deque(maxlen=spans)
        self._registry: Optional[Any] = None
        self._marks: Dict[str, int] = {}
        self._sim: Optional[Any] = None

    # ------------------------------------------------------------------
    # Wiring (called by Observability.bind / run_chaos)
    # ------------------------------------------------------------------
    def bind(self, sim: Any, run: int = 0) -> None:
        """Attach the event ring to ``sim``'s dispatch loop."""
        self._sim = sim
        sim.set_flight_feed(self.events, run=run)

    def attach_metrics(self, registry: Any) -> None:
        """Track counter deltas of ``registry`` between marks."""
        if getattr(registry, "enabled", False):
            self._registry = registry
            self.mark()

    def record_span(self, record: Dict[str, Any]) -> None:
        """Tracer feed: one completed span/instant record."""
        self.spans.append(record)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Reset the counter-delta baseline to the current values."""
        if self._registry is not None:
            self._marks = {name: counter.value for name, counter
                           in self._registry.counters.items()}

    def counter_deltas(self) -> Dict[str, int]:
        """Counter increments since the last :meth:`mark` (zero-delta
        counters omitted), sorted by name."""
        if self._registry is None:
            return {}
        deltas: Dict[str, int] = {}
        for name in sorted(self._registry.counters):
            delta = (self._registry.counters[name].value
                     - self._marks.get(name, 0))
            if delta:
                deltas[name] = delta
        return deltas

    def window(self, remark: bool = True) -> Dict[str, Any]:
        """Freeze the recent past into a plain, deterministic dict.

        Returns ``{"events": [...], "spans": [...], "metric_deltas":
        {...}}`` with events rendered as ``{"run", "t", "seq",
        "callback"}`` (names resolved via the engine's deterministic
        :func:`~repro.sim.engine.callback_name`) and spans as shallow
        copies of the tracer records.  With ``remark`` (the default)
        the counter-delta baseline advances, so consecutive windows
        report disjoint increments.
        """
        events: List[Dict[str, Any]] = []
        for entry in self.events:
            if type(entry) is int:
                # Provenance-on feed: a bare seq, resolved through the
                # engine's provenance tables (dropping the parent link —
                # flight events keep the flat 4-key shape).
                info = self._sim.event_info(entry) if self._sim else None
                if info is None:
                    events.append({"run": 0, "t": 0.0, "seq": entry,
                                   "callback": "(unknown)"})
                else:
                    events.append({"run": info["run"], "t": info["t"],
                                   "seq": entry,
                                   "callback": info["callback"]})
            else:
                run, t, seq, callback = entry
                events.append({"run": run, "t": round(t, 9), "seq": seq,
                               "callback": callback_name(callback)})
        spans = [dict(record) for record in self.spans]
        window = {
            "events": events,
            "spans": spans,
            "metric_deltas": self.counter_deltas(),
        }
        if remark:
            self.mark()
        return window
