"""No-op observability primitives and the process-wide default.

Every :class:`~repro.sim.engine.Simulator` carries an ``obs`` attribute
so model components can write ``self.sim.obs.tracer`` / ``.metrics``
unconditionally.  When observability is off (the default) those point at
the null singletons below: ``enabled`` is False, every method is a
no-op, and hot paths guard their span bookkeeping behind
``tracer.enabled`` so a disabled tracer costs one attribute load.

This module must stay import-free of the rest of :mod:`repro` — the
engine imports it, and everything imports the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class NullCounter:
    """Counter that discards increments."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge:
    """Gauge that discards writes and reads as 0."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def read(self) -> float:
        return 0.0


class NullHistogram:
    """Histogram that discards observations."""

    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullTracer:
    """Tracer whose spans vanish; ``enabled`` is False so callers can
    skip building span arguments entirely."""

    enabled = False
    causality = False
    flight = None

    def bind(self, sim: Any, run: int = 0) -> None:
        pass

    def begin(self, name: str, cat: str = "control", track: str = "main",
              **args: Any) -> int:
        return -1

    def end(self, span_id: int, **args: Any) -> None:
        pass

    def annotate(self, span_id: int, **args: Any) -> None:
        pass

    def instant(self, name: str, cat: str = "control", track: str = "main",
                **args: Any) -> None:
        pass

    def elapsed(self, span_id: int) -> Optional[float]:
        return None


class NullMetrics:
    """Registry that hands out the null instruments."""

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, buckets=None) -> NullHistogram:
        return NULL_HISTOGRAM

    def sample(self, now: float, run: int = 0) -> None:
        pass


NULL_TRACER = NullTracer()
NULL_METRICS = NullMetrics()


class NullObservability:
    """The ``sim.obs`` of an uninstrumented simulation."""

    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_METRICS
    profiler = None
    causality = False
    flight = None

    def bind(self, sim: Any) -> None:
        pass


NULL_OBS = NullObservability()

#: Process-wide default picked up by Simulator() when no ``obs`` is
#: passed explicitly — how the CLI instruments experiment runners it
#: does not construct itself.
_default_obs: Any = NULL_OBS


def get_default_obs() -> Any:
    return _default_obs


def set_default_obs(obs: Optional[Any]) -> Any:
    """Install ``obs`` as the process default; returns the previous one
    so callers can restore it (None resets to the null singleton)."""
    global _default_obs
    previous = _default_obs
    _default_obs = obs if obs is not None else NULL_OBS
    return previous
