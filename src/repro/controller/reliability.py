"""Barrier-acknowledged control-state installation with bounded retries.

The base protocol gives the controller no delivery guarantee for a
FlowMod/GroupMod: on a healthy channel the TCP connection provides one,
but under the chaos layer's faults (message loss, flaps, partitions,
vSwitch restarts — docs/robustness.md) critical state can silently fail
to land, wedging the overlay in a half-configured shape.

:class:`ReliableSender` closes the loop with the standard OpenFlow
idiom: send the batch, then a BarrierRequest; the BarrierReply proves
the switch processed everything before the barrier.  No reply within a
timeout ⇒ re-send the whole batch (all messages here are idempotent:
GroupMod bucket refreshes and FlowMod ADDs that replace an identical
match+priority entry) with capped exponential backoff, up to
``reliable_install_max_retries`` attempts, then abandon and count it.

Sends can be *keyed*: a new send with the same key supersedes a
still-retrying older one, so a burst of group refreshes during a flap
converges on the newest bucket set instead of replaying stale ones.
:meth:`supersede` cancels a keyed batch without a replacement — the
resync path uses it to kill pre-outage batches whose retries would
otherwise land *after* the fresh state push and resurrect stale
entries.

The sender itself can be stopped and restarted (controller outage,
pool-member handoff): :meth:`stop` freezes every in-flight batch —
retry timers cancelled, attempt counts preserved — while late barrier
replies still ack normally; :meth:`start` replays the surviving
batches (idempotent re-install) and resumes their backoff schedule
where it left off.

Caveat: a barrier proves *processing*, not table commitment — a
FlowMod can still be lost to the OFA's probabilistic insertion model
(Fig. 9).  The layer is a channel-level guarantee; insertion loss is
handled where it always was (activation re-sends, table-miss retry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Sequence

from repro.openflow.messages import BarrierReply, BarrierRequest, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.core.config import ScotchConfig
    from repro.sim.engine import Event, Simulator


class _PendingSend:
    """One acknowledged batch in flight (possibly being retried)."""

    __slots__ = ("dpid", "messages", "key", "on_ack", "on_abandon",
                 "attempts", "timer", "superseded", "barrier_xid")

    def __init__(self, dpid: str, messages: List[Message],
                 key: Optional[Hashable], on_ack: Optional[Callable[[], None]],
                 on_abandon: Optional[Callable[[], None]]):
        self.dpid = dpid
        self.messages = messages
        self.key = key
        self.on_ack = on_ack
        self.on_abandon = on_abandon
        self.attempts = 0
        self.timer: Optional["Event"] = None
        self.superseded = False
        self.barrier_xid: Optional[int] = None


class ReliableSender:
    """Barrier-acked batch sender with capped-exponential-backoff retry."""

    def __init__(self, sim: "Simulator", controller: "OpenFlowController",
                 config: "ScotchConfig"):
        self.sim = sim
        self.controller = controller
        self.config = config
        #: barrier xid -> in-flight batch.
        self._await_ack: Dict[int, _PendingSend] = {}
        #: key -> latest batch for that key (for supersession).
        self._by_key: Dict[Hashable, _PendingSend] = {}
        #: Batches submitted or frozen while stopped, replayed on start().
        self._paused: List[_PendingSend] = []
        self._running = True
        self.sent = 0
        self.acked = 0
        self.retries = 0
        self.abandoned = 0
        self.superseded = 0
        metrics = sim.obs.metrics
        self._m_retries = metrics.counter("reliable.retries")
        self._m_acked = metrics.counter("reliable.acked")
        self._m_abandoned = metrics.counter("reliable.abandoned")

    # ------------------------------------------------------------------
    def send(
        self,
        dpid: str,
        messages: Sequence[Message],
        key: Optional[Hashable] = None,
        on_ack: Optional[Callable[[], None]] = None,
        on_abandon: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``messages`` to ``dpid`` followed by a barrier; retry the
        batch until the barrier is acknowledged or retries run out."""
        entry = _PendingSend(dpid, list(messages), key, on_ack, on_abandon)
        if key is not None:
            previous = self._by_key.get(key)
            if previous is not None and not previous.superseded:
                previous.superseded = True
                self.superseded += 1
                if previous.timer is not None:
                    previous.timer.cancel()
                if previous.barrier_xid is not None:
                    self._await_ack.pop(previous.barrier_xid, None)
            self._by_key[key] = entry
        self.sent += 1
        if not self._running:
            self._paused.append(entry)
            return
        self._transmit(entry)

    def supersede(self, key: Hashable) -> bool:
        """Cancel the in-flight batch for ``key`` without replacing it.

        Returns True if a live batch was cancelled.  Used by resync: the
        full state re-push that follows re-claims the key with current
        state, so the stale batch's pending retries must die first."""
        entry = self._by_key.pop(key, None)
        if entry is None or entry.superseded:
            return False
        entry.superseded = True
        self.superseded += 1
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        if entry.barrier_xid is not None:
            self._await_ack.pop(entry.barrier_xid, None)
        return True

    def supersede_all(self) -> int:
        """Cancel every in-flight keyed batch (resync entry point)."""
        count = 0
        for key in list(self._by_key):
            if self.supersede(key):
                count += 1
        return count

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Freeze the sender: cancel retry timers, keep in-flight state.

        Attempt counts survive, so a batch resumes its backoff schedule
        on :meth:`start` rather than getting a fresh retry budget.  Late
        barrier replies arriving while stopped still ack normally."""
        if not self._running:
            return
        self._running = False
        for entry in self._await_ack.values():
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None

    def start(self) -> None:
        """Resume: replay every surviving batch (idempotent re-install).

        Batches whose retry budget was already exhausted when the stop
        hit are abandoned instead of replayed, so the invariant that
        attempts never exceed ``max_retries + 1`` holds across
        stop()/start() cycles."""
        if self._running:
            return
        self._running = True
        frozen = [e for e in self._await_ack.values() if not e.superseded]
        self._await_ack.clear()
        replay = frozen + [e for e in self._paused if not e.superseded]
        self._paused = []
        for entry in replay:
            entry.barrier_xid = None
            if entry.attempts > self.config.reliable_install_max_retries:
                self.abandoned += 1
                self._m_abandoned.inc()
                self._forget_key(entry)
                if entry.on_abandon is not None:
                    entry.on_abandon()
                continue
            self._transmit(entry)

    def pending(self) -> int:
        """Batches awaiting acknowledgement (retry timers live)."""
        return sum(1 for e in self._await_ack.values() if not e.superseded)

    def max_attempts_in_flight(self) -> int:
        """Highest attempt count among unacked batches — the invariant
        checker asserts this stays within the configured retry budget."""
        live = [e.attempts for e in self._await_ack.values() if not e.superseded]
        return max(live, default=0)

    # ------------------------------------------------------------------
    def _transmit(self, entry: _PendingSend) -> None:
        if entry.superseded:
            return
        if not self._running:
            self._paused.append(entry)
            return
        handle = self.controller.datapaths.get(entry.dpid)
        if handle is None:
            return
        entry.attempts += 1
        for message in entry.messages:
            handle.send(message)
        barrier = BarrierRequest()
        self._await_ack[barrier.xid] = entry
        entry.barrier_xid = barrier.xid
        handle.send(barrier)
        timeout = min(
            self.config.reliable_install_timeout * (2 ** (entry.attempts - 1)),
            self.config.reliable_install_timeout_cap,
        )
        entry.timer = self.sim.schedule(timeout, self._timeout, barrier.xid, daemon=True)

    def _timeout(self, barrier_xid: int) -> None:
        entry = self._await_ack.pop(barrier_xid, None)
        if entry is None or entry.superseded:
            return
        if entry.attempts > self.config.reliable_install_max_retries:
            self.abandoned += 1
            self._m_abandoned.inc()
            self._forget_key(entry)
            if entry.on_abandon is not None:
                entry.on_abandon()
            return
        self.retries += 1
        self._m_retries.inc()
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant("reliable.retry", track="reliable",
                           switch=entry.dpid, attempt=entry.attempts)
        self._transmit(entry)

    def barrier_reply(self, dpid: str, message: BarrierReply) -> None:
        entry = self._await_ack.pop(message.request_xid, None)
        if entry is None:
            return
        if entry.timer is not None:
            entry.timer.cancel()
        if entry.superseded:
            return
        self.acked += 1
        self._m_acked.inc()
        self._forget_key(entry)
        if entry.on_ack is not None:
            entry.on_ack()

    def _forget_key(self, entry: _PendingSend) -> None:
        if entry.key is not None and self._by_key.get(entry.key) is entry:
            del self._by_key[entry.key]
