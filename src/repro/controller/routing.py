"""Route computation over the physical network.

The :class:`Router` indexes hosts by IP and turns shortest paths into
per-switch forwarding rules.  Path installation order is significant
(paper §5.3: "the forwarding rule on the first hop switch is added at
last so that packets are forwarded on the new path only after all
switches on the path are ready") — :meth:`rules_for_path` returns rules
in exactly that order (last hop first), and callers that want the naive
order can reverse it (the ablation test does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.flow import FlowKey
from repro.net.host import Host
from repro.net.topology import Network
from repro.switch.actions import Action, Output
from repro.switch.match import Match
from repro.switch.switch import OpenFlowSwitch


@dataclass
class HopRule:
    """One forwarding rule to be installed at one switch."""

    dpid: str
    match: Match
    actions: List[Action]


class Router:
    """Host lookup + physical path and rule computation."""

    def __init__(self, network: Network):
        self.network = network
        self._hosts_by_ip: Dict[str, Host] = {}
        self.refresh_hosts()

    def refresh_hosts(self) -> None:
        """Re-index hosts (call after topology construction)."""
        self._hosts_by_ip = {
            node.ip: node for node in self.network.nodes.values() if isinstance(node, Host)
        }

    def host_for(self, ip: str) -> Optional[Host]:
        return self._hosts_by_ip.get(ip)

    def attachment_switch(self, host: Host) -> Optional[str]:
        """Name of the switch the host's NIC connects to."""
        for neighbor in self.network.neighbors(host.name):
            if isinstance(self.network[neighbor], OpenFlowSwitch):
                return neighbor
        return None

    # ------------------------------------------------------------------
    # Paths and rules
    # ------------------------------------------------------------------
    def path_to(self, from_node: str, dst_ip: str, exclude: Iterable[str] = ()) -> Optional[List[str]]:
        """Minimum-delay node path from ``from_node`` to the host owning
        ``dst_ip`` (inclusive), or None if the host is unknown or
        unreachable."""
        host = self.host_for(dst_ip)
        if host is None:
            return None
        import networkx as nx

        try:
            return self.network.shortest_path(from_node, host.name, exclude=exclude)
        except nx.NetworkXNoPath:
            return None

    def rules_for_path(
        self,
        path: Sequence[str],
        key: FlowKey,
        first_hop_in_port: Optional[int] = None,
    ) -> List[HopRule]:
        """Exact-match forwarding rules for ``key`` along ``path``.

        Returned **last hop first** — installing in list order implements
        the paper's make-before-break ordering.  ``first_hop_in_port``
        additionally pins the first hop's rule to the flow's ingress port
        when given.
        """
        rules: List[HopRule] = []
        for index in range(len(path) - 1):
            node_name = path[index]
            if not isinstance(self.network[node_name], OpenFlowSwitch):
                continue
            out_port = self.network.port_between(node_name, path[index + 1])
            match = Match.exact(
                key.src_ip,
                key.dst_ip,
                key.proto,
                key.src_port,
                key.dst_port,
                in_port=first_hop_in_port if index == 0 else None,
            )
            rules.append(HopRule(node_name, match, [Output(out_port)]))
        rules.reverse()
        return rules
