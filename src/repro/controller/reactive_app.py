"""Vanilla reactive forwarding — the paper's baseline SDN behaviour.

Every Packet-In triggers: path computation to the destination host,
exact-match FlowMods along the path (make-before-break order), and a
Packet-Out of the buffered packet at the punting switch.  All FlowMods
are subject to the OFA's insertion-loss model, and the Packet-In itself
already survived the OFA bottleneck — which is why, under a flood, this
app exhibits exactly the Fig. 3 failure curve.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.controller.base_app import BaseApp
from repro.controller.routing import Router
from repro.switch.actions import Output

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.messages import PacketIn

#: Priority for reactively installed per-flow rules ("red" rules, §5.4).
REACTIVE_RULE_PRIORITY = 100


class ReactiveForwardingApp(BaseApp):
    """Plain reactive L3 forwarding over the physical network."""

    def __init__(
        self,
        idle_timeout: float = 10.0,
        hard_timeout: float = 0.0,
        install_full_path: bool = True,
    ):
        super().__init__()
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.install_full_path = install_full_path
        self.router: Optional[Router] = None
        self.flows_handled = 0
        self.unroutable = 0

    def start(self) -> None:
        self.router = Router(self.network)

    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        packet = message.packet
        if packet is None:
            return
        path = self.router.path_to(dpid, packet.dst_ip)
        if path is None:
            self.unroutable += 1
            return
        self.flows_handled += 1
        key = packet.flow_key
        rules = self.router.rules_for_path(path, key)
        if not self.install_full_path and rules:
            rules = rules[-1:]  # only the punting switch's rule
        for rule in rules:
            self.controller.flow_mod(
                rule.dpid,
                rule.match,
                REACTIVE_RULE_PRIORITY,
                rule.actions,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout,
            )
        # Forward the buffered first packet explicitly.
        out_port = self.network.port_between(path[0], path[1]) if len(path) > 1 else None
        if out_port is not None:
            self.controller.packet_out(dpid, packet, [Output(out_port)], in_port=message.in_port)
