"""The central OpenFlow controller."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs import path as obs_path
from repro.openflow.messages import (
    ADD,
    BarrierReply,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    Message,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    RoleStatus,
    SampleReport,
    wire_bytes,
)
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.base_app import BaseApp
    from repro.net.topology import Network
    from repro.sim.engine import Simulator
    from repro.switch.switch import OpenFlowSwitch


class DatapathHandle:
    """The controller's view of one connected switch."""

    def __init__(self, switch: "OpenFlowSwitch"):
        self.switch = switch
        self.dpid = switch.name
        self.channel = switch.channel
        self.profile = switch.profile

    def send(self, message: Message) -> None:
        self.channel.send_to_switch(message)


class OpenFlowController:
    """Event dispatcher + convenience senders, in the Ryu mould."""

    def __init__(self, sim: "Simulator", network: "Network"):
        self.sim = sim
        self.network = network
        self.datapaths: Dict[str, DatapathHandle] = {}
        self.apps: List["BaseApp"] = []
        self.packet_ins_received = 0
        self.stats_replies_received = 0
        self.sample_reports_received = 0
        self.flow_removed_received = 0
        self.errors_received = 0
        self._obs = sim.obs
        self._m_packet_ins = sim.obs.metrics.counter("controller.packet_ins")
        self._m_errors = sim.obs.metrics.counter("controller.errors")
        # Monitoring-cost counters (docs/observability.md, "Sampled
        # telemetry"): how much control-channel attention flow
        # measurement itself consumes.  Byte counts use the nominal wire
        # model of repro.openflow.messages.wire_bytes; the
        # ``monitoring_bytes_rate`` SLI aggregates the ``stats.bytes.*``
        # family.
        metrics = sim.obs.metrics
        self._m_stats_polls = metrics.counter("stats.polls_sent")
        self._m_stats_replies = metrics.counter("stats.replies")
        self._m_stats_entries = metrics.counter("stats.reply_entries")
        self._m_stats_bytes_requests = metrics.counter("stats.bytes.requests")
        self._m_stats_bytes_replies = metrics.counter("stats.bytes.replies")
        self._m_sample_reports = metrics.counter("stats.sample_reports")
        self._m_sample_records = metrics.counter("stats.sample_records")
        self._m_stats_bytes_samples = metrics.counter("stats.bytes.samples")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_switch(self, switch: "OpenFlowSwitch") -> DatapathHandle:
        if switch.name in self.datapaths:
            raise ValueError(f"switch {switch.name!r} already registered")
        handle = DatapathHandle(switch)
        switch.channel.controller_sink = self._receive
        self.datapaths[switch.name] = handle
        return handle

    def add_app(self, app: "BaseApp") -> "BaseApp":
        app.bind(self)
        self.apps.append(app)
        app.start()
        return app

    def datapath(self, dpid: str) -> DatapathHandle:
        return self.datapaths[dpid]

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def _receive(self, dpid: str, message: Message) -> None:
        if isinstance(message, PacketIn):
            self.packet_ins_received += 1
            self._m_packet_ins.inc()
            packet = message.packet
            if packet is not None:
                obs_path.packet_in_received(
                    self._obs, packet, dpid,
                    relayed=message.metadata.get("tunnel_id") is not None,
                )
            for app in self.apps:
                app.packet_in(dpid, message)
            # Apps that decide asynchronously (Scotch's Fig. 7 queues)
            # mark the packet deferred and close the trace at decision
            # time; everything else (reactive installs, unclaimed
            # Packet-Ins) is settled by the time dispatch returns.
            if packet is not None and not obs_path.deferred(packet):
                obs_path.decision(self._obs, packet, route="inline")
        elif isinstance(message, FlowStatsReply):
            self.stats_replies_received += 1
            self._m_stats_replies.inc()
            self._m_stats_entries.inc(len(message.entries))
            self._m_stats_bytes_replies.inc(wire_bytes(message))
            for app in self.apps:
                app.stats_reply(dpid, message)
        elif isinstance(message, SampleReport):
            self.sample_reports_received += 1
            self._m_sample_reports.inc()
            self._m_sample_records.inc(len(message.records))
            self._m_stats_bytes_samples.inc(wire_bytes(message))
            for app in self.apps:
                app.sample_report(dpid, message)
        elif isinstance(message, FlowRemoved):
            self.flow_removed_received += 1
            for app in self.apps:
                app.flow_removed(dpid, message)
        elif isinstance(message, ErrorMessage):
            self.errors_received += 1
            self._m_errors.inc()
            for app in self.apps:
                app.error(dpid, message)
        elif isinstance(message, PortStatsReply):
            for app in self.apps:
                app.port_stats_reply(dpid, message)
        elif isinstance(message, EchoReply):
            for app in self.apps:
                app.echo_reply(dpid, message)
        elif isinstance(message, BarrierReply):
            for app in self.apps:
                app.barrier_reply(dpid, message)
        elif isinstance(message, RoleStatus):
            for app in self.apps:
                app.role_status(dpid, message)
        else:
            raise TypeError(f"controller cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------
    # Outbound helpers
    # ------------------------------------------------------------------
    def flow_mod(
        self,
        dpid: str,
        match: Match,
        priority: int,
        actions: list,
        table_id: int = 0,
        command: str = ADD,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: Optional[object] = None,
    ) -> FlowMod:
        message = FlowMod(
            match=match,
            priority=priority,
            actions=actions,
            table_id=table_id,
            command=command,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
        )
        self.datapaths[dpid].send(message)
        return message

    def group_mod(
        self, dpid: str, group_id: int, buckets: list, command: str = ADD, group_type: str = "select"
    ) -> GroupMod:
        message = GroupMod(
            group_id=group_id, group_type=group_type, buckets=buckets, command=command
        )
        self.datapaths[dpid].send(message)
        return message

    def packet_out(self, dpid: str, packet, actions: list, in_port: int = 0) -> PacketOut:
        message = PacketOut(packet=packet, actions=actions, in_port=in_port)
        self.datapaths[dpid].send(message)
        return message

    def request_flow_stats(
        self, dpid: str, table_id: Optional[int] = None, match: Optional[Match] = None
    ) -> FlowStatsRequest:
        message = FlowStatsRequest(table_id=table_id, match=match)
        self._m_stats_polls.inc()
        self._m_stats_bytes_requests.inc(wire_bytes(message))
        self.datapaths[dpid].send(message)
        return message

    def request_port_stats(self, dpid: str, port_no=None) -> PortStatsRequest:
        message = PortStatsRequest(port_no=port_no)
        self.datapaths[dpid].send(message)
        return message

    def echo(self, dpid: str) -> EchoRequest:
        message = EchoRequest()
        self.datapaths[dpid].send(message)
        return message
