"""The Flow Info Database (paper §5.2).

"The controller maintains the flow's first-hop physical switch id and
the ingress port id at the Flow Info Database. Such information will be
used for large flow migration."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.flow import FlowKey

ROUTE_PENDING = "pending"
ROUTE_PHYSICAL = "physical"
ROUTE_OVERLAY = "overlay"
ROUTE_DROPPED = "dropped"


@dataclass
class FlowInfo:
    """What the controller knows about one observed flow."""

    key: FlowKey
    first_hop_switch: str
    ingress_port: int
    first_seen: float
    route: str = ROUTE_PENDING
    #: Entry vSwitch when the flow rides the overlay.
    entry_vswitch: Optional[str] = None
    #: Middlebox chain the flow's policy requires, in traversal order.
    middlebox_chain: List[str] = field(default_factory=list)
    #: (dpid, match) of the per-flow overlay rules installed for this
    #: flow, so migration can delete them afterwards.
    overlay_sites: List[tuple] = field(default_factory=list)
    #: Last time a flow-stats dump showed this flow's packet count
    #: *growing* — the controller's best signal that the flow is still
    #: sending (§5.5 pins only flows "currently being routed over the
    #: Scotch overlay").
    last_stats_seen: Optional[float] = None
    #: Packet count at the last stats dump (for the growth check).
    last_stats_packets: int = 0
    #: (dpid, actions) used to re-inject duplicate Packet-In payloads
    #: along the flow's chosen path while its rules are still settling.
    reinject: Optional[tuple] = None
    #: Packets punted while the flow still awaits its routing decision,
    #: held at the controller (the buffer_id role) and flushed along the
    #: chosen path once it exists.  Bounded by the app.
    held_packets: List = field(default_factory=list)
    migrated_at: Optional[float] = None


class FlowInfoDatabase:
    """Keyed by five-tuple; tracks route placement over the flow's life."""

    def __init__(self):
        self._flows: Dict[FlowKey, FlowInfo] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    def record(
        self,
        key: FlowKey,
        first_hop_switch: str,
        ingress_port: int,
        now: float,
        entry_vswitch: Optional[str] = None,
    ) -> FlowInfo:
        """Insert (or return the existing) record for a flow."""
        info = self._flows.get(key)
        if info is None:
            info = FlowInfo(
                key=key,
                first_hop_switch=first_hop_switch,
                ingress_port=ingress_port,
                first_seen=now,
                entry_vswitch=entry_vswitch,
            )
            self._flows[key] = info
        return info

    def get(self, key: FlowKey) -> Optional[FlowInfo]:
        return self._flows.get(key)

    def set_route(self, key: FlowKey, route: str, now: Optional[float] = None) -> None:
        info = self._flows[key]
        if route == ROUTE_PHYSICAL and info.route == ROUTE_OVERLAY and now is not None:
            info.migrated_at = now
        info.route = route

    def flows_on(self, route: str) -> List[FlowInfo]:
        return [info for info in self._flows.values() if info.route == route]

    def overlay_flows_via(self, first_hop_switch: str) -> List[FlowInfo]:
        return [
            info
            for info in self._flows.values()
            if info.route == ROUTE_OVERLAY and info.first_hop_switch == first_hop_switch
        ]

    def forget(self, key: FlowKey) -> None:
        self._flows.pop(key, None)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for info in self._flows.values():
            out[info.route] = out.get(info.route, 0) + 1
        return out
