"""Ryu-like OpenFlow controller framework.

:class:`OpenFlowController` owns the control channels and dispatches
events to registered applications (:class:`BaseApp` subclasses) — the
same programming model as the Ryu controller the paper uses.  The
controller itself is not a throughput bottleneck (the paper: "a single
node multithreaded controller can handle millions of PacketIn/sec";
scaling the controller is explicitly out of scope), so message handling
is charged no CPU cost here; all control-path limits live in the OFA.
"""

from repro.controller.base_app import BaseApp
from repro.controller.controller import DatapathHandle, OpenFlowController
from repro.controller.flow_info_db import FlowInfo, FlowInfoDatabase
from repro.controller.reactive_app import ReactiveForwardingApp
from repro.controller.reliability import ReliableSender
from repro.controller.routing import Router
from repro.controller.stats_service import StatsPoller

__all__ = [
    "BaseApp",
    "DatapathHandle",
    "FlowInfo",
    "FlowInfoDatabase",
    "OpenFlowController",
    "ReactiveForwardingApp",
    "ReliableSender",
    "Router",
    "StatsPoller",
]
