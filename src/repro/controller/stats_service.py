"""Periodic flow-stats polling (paper §5.3).

"The controller sends the flow-stats query messages to the vswitches,
and collects the flow stats including packet counts."  Replies are
dispatched through the normal controller event path, so any app (the
Scotch migrator) sees them via ``stats_reply``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.process import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController


class StatsPoller:
    """Polls a (dynamic) set of datapaths at a fixed interval."""

    def __init__(
        self,
        controller: "OpenFlowController",
        targets: Callable[[], Iterable[str]],
        interval: float = 1.0,
        table_id: Optional[int] = None,
    ):
        if interval <= 0:
            raise ValueError("poll interval must be positive")
        self.controller = controller
        self.targets = targets
        self.interval = interval
        self.table_id = table_id
        self.polls_sent = 0
        #: Targets skipped because their dpid left ``controller.datapaths``
        #: (e.g. an unregistered/torn-down switch still in the target set).
        self.targets_departed = 0
        self._m_departed = controller.sim.obs.metrics.counter(
            "stats.targets_departed"
        )
        # Restart-safe tick chain (sim.process.PeriodicTimer owns the
        # pending event, so stop()/start() can never double the chain).
        self._timer = PeriodicTimer(controller.sim, interval, self._tick)

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _tick_event(self):
        return self._timer.event

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        for dpid in self.targets():
            if dpid not in self.controller.datapaths:
                # A target that departed the controller's datapath set is
                # skipped — visibly: silently dropping it hid torn-down
                # switches lingering in target callables.
                self.targets_departed += 1
                self._m_departed.inc()
                tracer = self.controller.sim.obs.tracer
                if tracer.enabled:
                    tracer.instant(
                        "stats.target_departed", track="stats", dpid=dpid
                    )
                continue
            self.controller.request_flow_stats(dpid, table_id=self.table_id)
            self.polls_sent += 1
        self._timer.rearm()
