"""Periodic flow-stats polling (paper §5.3).

"The controller sends the flow-stats query messages to the vswitches,
and collects the flow stats including packet counts."  Replies are
dispatched through the normal controller event path, so any app (the
Scotch migrator) sees them via ``stats_reply``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController


class StatsPoller:
    """Polls a (dynamic) set of datapaths at a fixed interval."""

    def __init__(
        self,
        controller: "OpenFlowController",
        targets: Callable[[], Iterable[str]],
        interval: float = 1.0,
        table_id: Optional[int] = None,
    ):
        if interval <= 0:
            raise ValueError("poll interval must be positive")
        self.controller = controller
        self.targets = targets
        self.interval = interval
        self.table_id = table_id
        self.polls_sent = 0
        #: Targets skipped because their dpid left ``controller.datapaths``
        #: (e.g. an unregistered/torn-down switch still in the target set).
        self.targets_departed = 0
        self._m_departed = controller.sim.obs.metrics.counter(
            "stats.targets_departed"
        )
        self._running = False
        # Held so stop() can cancel the pending tick; otherwise a
        # stop()/start() cycle doubles the tick chain (same bug and fix
        # as the heartbeat and congestion monitors).
        self._tick_event = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick_event = self.controller.sim.schedule(
            self.interval, self._tick, daemon=True
        )

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _tick(self) -> None:
        if not self._running:
            return
        for dpid in self.targets():
            if dpid not in self.controller.datapaths:
                # A target that departed the controller's datapath set is
                # skipped — visibly: silently dropping it hid torn-down
                # switches lingering in target callables.
                self.targets_departed += 1
                self._m_departed.inc()
                tracer = self.controller.sim.obs.tracer
                if tracer.enabled:
                    tracer.instant(
                        "stats.target_departed", track="stats", dpid=dpid
                    )
                continue
            self.controller.request_flow_stats(dpid, table_id=self.table_id)
            self.polls_sent += 1
        self._tick_event = self.controller.sim.schedule(
            self.interval, self._tick, daemon=True
        )
