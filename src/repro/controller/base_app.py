"""Controller application base class (the Ryu app model)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.openflow.messages import BarrierReply, EchoReply, FlowStatsReply, PacketIn


class BaseApp:
    """Subclass and override the event hooks you care about."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.controller: Optional["OpenFlowController"] = None

    def bind(self, controller: "OpenFlowController") -> None:
        self.controller = controller

    @property
    def sim(self):
        return self.controller.sim

    @property
    def network(self):
        return self.controller.network

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the app is added to a controller."""

    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        """A Packet-In arrived from switch ``dpid``."""

    def stats_reply(self, dpid: str, message: "FlowStatsReply") -> None:
        """A flow-stats dump arrived."""

    def sample_report(self, dpid: str, message) -> None:
        """A packet-sample export arrived (sampled-telemetry mode)."""

    def flow_removed(self, dpid: str, message) -> None:
        """A rule expired at a switch (SEND_FLOW_REM)."""

    def error(self, dpid: str, message) -> None:
        """The switch reported a failed request (e.g. table full)."""

    def port_stats_reply(self, dpid: str, message) -> None:
        """Per-port transmit counters arrived."""

    def echo_reply(self, dpid: str, message: "EchoReply") -> None:
        """A heartbeat response arrived."""

    def barrier_reply(self, dpid: str, message: "BarrierReply") -> None:
        """A barrier completed."""

    def role_status(self, dpid: str, message) -> None:
        """The switch accepted a controller-pool role change."""
