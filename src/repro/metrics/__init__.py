"""Measurement: packet recorders, rate meters, time series, statistics.

:class:`PacketRecorder` plays the role of the paper's tcpdump taps at the
client/attacker/server; :func:`client_flow_failure_fraction` computes the
Fig. 3 metric from those traces exactly as §3.2 defines it.
"""

from repro.metrics.export import read_flow_records, write_flow_records
from repro.metrics.failure import client_flow_failure_fraction, flow_success_stats
from repro.metrics.meters import Ewma, RateEstimator, WindowRateMeter
from repro.metrics.plot import ascii_plot, sparkline
from repro.metrics.recorder import PacketRecorder
from repro.metrics.series import TimeSeries
from repro.metrics.stats import cdf_points, mean, percentile, stddev

__all__ = [
    "Ewma",
    "ascii_plot",
    "read_flow_records",
    "sparkline",
    "write_flow_records",
    "PacketRecorder",
    "RateEstimator",
    "TimeSeries",
    "WindowRateMeter",
    "cdf_points",
    "client_flow_failure_fraction",
    "flow_success_stats",
    "mean",
    "percentile",
    "stddev",
]
