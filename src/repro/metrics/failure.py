"""The paper's §3.2 metric: client flow failure fraction.

"We define the client flow failure fraction to be the fraction of client
flows that are not able to pass through the switch and reach the server.
The client flow failure fraction is computed using the collected network
traces."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.recorder import PacketRecorder


def client_flow_failure_fraction(
    client_tap: PacketRecorder,
    server_tap: PacketRecorder,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> float:
    """Fraction of flows the client sent whose packets never reached the
    server, computed from the two packet traces.

    ``start``/``end`` (on the client's first-send time) restrict the
    computation to a measurement window, excluding warm-up/cool-down.
    """
    sent = {
        key
        for key, record in client_tap.records.items()
        if record.packets_sent > 0
        and (start is None or (record.first_sent_at is not None and record.first_sent_at >= start))
        and (end is None or (record.first_sent_at is not None and record.first_sent_at < end))
    }
    if not sent:
        return 0.0
    arrived = server_tap.received_flow_keys()
    failed = sum(1 for key in sent if key not in arrived)
    return failed / len(sent)


@dataclass
class FlowSuccessStats:
    """Aggregate delivery statistics at one sink."""

    flows_seen: int
    flows_succeeded: int
    packets: int
    bytes: int

    @property
    def success_fraction(self) -> float:
        return self.flows_succeeded / self.flows_seen if self.flows_seen else 0.0


def flow_success_stats(sent_tap: PacketRecorder, sink_tap: PacketRecorder) -> FlowSuccessStats:
    """Delivery stats for every flow recorded as sent at ``sent_tap``."""
    sent = sent_tap.sent_flow_keys()
    arrived = sink_tap.received_flow_keys()
    return FlowSuccessStats(
        flows_seen=len(sent),
        flows_succeeded=sum(1 for key in sent if key in arrived),
        packets=sink_tap.total_packets,
        bytes=sink_tap.total_bytes,
    )
