"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Iterable[float]) -> float:
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)


def stddev(values: Iterable[float]) -> float:
    data = list(values)
    if len(data) < 2:
        return 0.0
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (len(data) - 1))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, pct in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (pct / 100) * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


def cdf_points(values: Sequence[float], points: int = 50) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs suitable for plotting a CDF."""
    if not values:
        return []
    data = sorted(values)
    n = len(data)
    step = max(1, n // points)
    out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
    if out[-1][0] != data[-1]:
        out.append((data[-1], 1.0))
    return out
