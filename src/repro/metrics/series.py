"""Simple time series collection."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Simulator


class TimeSeries:
    """(time, value) samples with a few reductions."""

    def __init__(self, name: str = ""):
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def add(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def last(self, default: float = 0.0) -> float:
        return self.points[-1][1] if self.points else default

    def max(self, default: float = 0.0) -> float:
        return max(self.values(), default=default)

    def mean_over(self, start: float, end: float) -> float:
        window = [v for t, v in self.points if start <= t < end]
        return sum(window) / len(window) if window else 0.0

    def __len__(self) -> int:
        return len(self.points)


def sample_periodically(
    sim: Simulator,
    series: TimeSeries,
    probe: Callable[[], float],
    interval: float,
    until: Optional[float] = None,
) -> None:
    """Schedule periodic sampling of ``probe()`` into ``series``."""

    def _tick() -> None:
        series.add(sim.now, probe())
        if until is None or sim.now + interval <= until:
            sim.schedule(interval, _tick)

    sim.schedule(interval, _tick)
