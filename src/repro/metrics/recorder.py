"""Packet recording — the simulator's tcpdump.

Hosts attach a :class:`PacketRecorder` to their NIC; the recorder indexes
traffic by flow key, which is all the §3.2 failure-fraction computation
and the trace-driven experiment's FCT computation need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.net.flow import FlowKey, FlowRecord
from repro.net.packet import Packet


class PacketRecorder:
    """Records send or receive events per flow at one vantage point."""

    def __init__(self, name: str = "tap"):
        self.name = name
        self.records: Dict[FlowKey, FlowRecord] = {}
        self.total_packets = 0
        self.total_bytes = 0

    def _record(self, key: FlowKey) -> FlowRecord:
        record = self.records.get(key)
        if record is None:
            record = FlowRecord(key)
            self.records[key] = record
        return record

    def on_send(self, packet: Packet, now: float) -> None:
        record = self._record(packet.flow_key)
        if record.first_sent_at is None:
            record.first_sent_at = now
        record.packets_sent += packet.count

    def on_receive(self, packet: Packet, now: float) -> None:
        record = self._record(packet.flow_key)
        if record.first_received_at is None:
            record.first_received_at = now
        record.last_received_at = now
        record.packets_received += packet.count
        record.bytes_received += packet.size * packet.count
        self.total_packets += packet.count
        self.total_bytes += packet.size * packet.count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def flows(self) -> List[FlowRecord]:
        return list(self.records.values())

    def flow(self, key: FlowKey) -> Optional[FlowRecord]:
        return self.records.get(key)

    def flow_keys(self) -> Set[FlowKey]:
        return set(self.records.keys())

    def sent_flow_keys(self) -> Set[FlowKey]:
        return {k for k, r in self.records.items() if r.packets_sent > 0}

    def received_flow_keys(self) -> Set[FlowKey]:
        return {k for k, r in self.records.items() if r.packets_received > 0}

    def received_in(self, start: float, end: float) -> Set[FlowKey]:
        """Flows whose first packet arrived within [start, end)."""
        return {
            k
            for k, r in self.records.items()
            if r.first_received_at is not None and start <= r.first_received_at < end
        }
