"""ASCII charts for benchmark/CLI output.

The benches print the paper's tables; these helpers add a visual read
of the curve shapes (Fig. 3's failure growth, Fig. 9's saturation,
Fig. 10's cliff) without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar chart: each value scaled into eight glyph levels."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def ascii_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A scatter/step plot of (x, y) points on a character grid."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_low) / x_span * (width - 1))
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines: List[str] = []
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    pad = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(pad)
        elif index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * pad + "  " + x_axis)
    if x_label or y_label:
        lines.append(" " * pad + f"  x: {x_label}   y: {y_label}".rstrip())
    return "\n".join(lines)
