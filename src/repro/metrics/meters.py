"""Rate estimation primitives.

:class:`RateEstimator` is the arrival-rate estimator used inside the OFA
model (insertion-rate dependent behaviour, Figs. 9/10) and by the Scotch
congestion monitor (Packet-In rate per switch, §4.2): a sliding window of
recent event timestamps.  :class:`Ewma` is a plain exponentially weighted
moving average.  :class:`WindowRateMeter` counts events into fixed bins
for reporting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple


class RateEstimator:
    """Sliding-window arrival-rate estimator.

    Keeps the last ``window_events`` event times (optionally age-bounded
    by ``window_seconds``) and reports ``(n - 1) / span``.  Returns 0
    until two events have been seen.
    """

    def __init__(self, window_events: int = 32, window_seconds: Optional[float] = None):
        if window_events < 2:
            raise ValueError("window must hold at least two events")
        self._times: Deque[float] = deque(maxlen=window_events)
        self.window_seconds = window_seconds
        self.total_events = 0

    def observe(self, now: float, count: int = 1) -> None:
        for _ in range(count):
            self._times.append(now)
        self.total_events += count

    def rate(self, now: Optional[float] = None) -> float:
        times = self._times
        if self.window_seconds is not None and now is not None:
            cutoff = now - self.window_seconds
            while times and times[0] < cutoff:
                times.popleft()
        if len(times) < 2:
            return 0.0
        span = times[-1] - times[0]
        if span <= 0:
            # A burst at one instant: treat as very fast, bounded for sanity.
            return float(len(times)) * 1e6
        return (len(times) - 1) / span


class Ewma:
    """Exponentially weighted moving average with gain ``alpha``."""

    def __init__(self, alpha: float = 0.2, initial: Optional[float] = None):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = initial

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        return self.value if self.value is not None else default


class WindowRateMeter:
    """Counts events into fixed time bins; yields a rate time series."""

    def __init__(self, bin_seconds: float = 1.0):
        if bin_seconds <= 0:
            raise ValueError("bin size must be positive")
        self.bin_seconds = bin_seconds
        self._bins: dict = {}
        self.total = 0

    def observe(self, now: float, count: int = 1) -> None:
        index = int(now / self.bin_seconds)
        self._bins[index] = self._bins.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """[(bin start time, events/second)] sorted by time."""
        return [
            (index * self.bin_seconds, count / self.bin_seconds)
            for index, count in sorted(self._bins.items())
        ]

    def rate_in(self, start: float, end: float) -> float:
        """Average event rate over [start, end)."""
        if end <= start:
            return 0.0
        total = sum(
            count
            for index, count in self._bins.items()
            if start <= index * self.bin_seconds < end
        )
        return total / (end - start)
