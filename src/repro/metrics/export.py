"""Exporting measurements for offline analysis.

The paper's workflow is tcpdump → offline trace analysis; the analogue
here is dumping a :class:`~repro.metrics.recorder.PacketRecorder`'s
per-flow records (or a whole experiment's taps) to CSV or JSONL, so
results can be re-analyzed without re-running the simulation.  The
JSONL variant shares its format family with the observability exports
(:mod:`repro.obs`): one object per line, stable key order, types
preserved (no string round-trip for floats/None).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional

from repro.metrics.recorder import PacketRecorder

FLOW_FIELDS = [
    "src_ip",
    "dst_ip",
    "proto",
    "src_port",
    "dst_port",
    "first_sent_at",
    "first_received_at",
    "last_received_at",
    "packets_sent",
    "packets_received",
    "bytes_received",
    "succeeded",
    "setup_latency",
    "completion_time",
]


def write_flow_records(path: str, tap: PacketRecorder) -> int:
    """Dump one tap's per-flow records to CSV; returns the row count."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(FLOW_FIELDS)
        for key, record in sorted(tap.records.items()):
            writer.writerow([
                key.src_ip, key.dst_ip, key.proto, key.src_port, key.dst_port,
                _fmt(record.first_sent_at), _fmt(record.first_received_at),
                _fmt(record.last_received_at),
                record.packets_sent, record.packets_received, record.bytes_received,
                int(record.succeeded), _fmt(record.setup_latency),
                _fmt(record.completion_time),
            ])
            rows += 1
    return rows


def read_flow_records(path: str) -> List[Dict[str, object]]:
    """Load a CSV produced by :func:`write_flow_records` (typed)."""
    out: List[Dict[str, object]] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            out.append({
                "src_ip": row["src_ip"],
                "dst_ip": row["dst_ip"],
                "proto": int(row["proto"]),
                "src_port": int(row["src_port"]),
                "dst_port": int(row["dst_port"]),
                "first_sent_at": _parse(row["first_sent_at"]),
                "first_received_at": _parse(row["first_received_at"]),
                "last_received_at": _parse(row["last_received_at"]),
                "packets_sent": int(row["packets_sent"]),
                "packets_received": int(row["packets_received"]),
                "bytes_received": int(row["bytes_received"]),
                "succeeded": bool(int(row["succeeded"])),
                "setup_latency": _parse(row["setup_latency"]),
                "completion_time": _parse(row["completion_time"]),
            })
    return out


def _record_dict(key, record) -> Dict[str, object]:
    return {
        "src_ip": key.src_ip,
        "dst_ip": key.dst_ip,
        "proto": key.proto,
        "src_port": key.src_port,
        "dst_port": key.dst_port,
        "first_sent_at": record.first_sent_at,
        "first_received_at": record.first_received_at,
        "last_received_at": record.last_received_at,
        "packets_sent": record.packets_sent,
        "packets_received": record.packets_received,
        "bytes_received": record.bytes_received,
        "succeeded": record.succeeded,
        "setup_latency": record.setup_latency,
        "completion_time": record.completion_time,
    }


def write_flow_records_jsonl(path: str, tap: PacketRecorder) -> int:
    """Dump one tap's per-flow records as JSONL; returns the row count."""
    rows = 0
    with open(path, "w") as handle:
        for key, record in sorted(tap.records.items()):
            handle.write(json.dumps(_record_dict(key, record), sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
            rows += 1
    return rows


def read_flow_records_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL file produced by :func:`write_flow_records_jsonl`;
    same record shape as :func:`read_flow_records`."""
    out: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def _fmt(value: Optional[float]) -> str:
    return "" if value is None else f"{value:.9f}"


def _parse(text: str) -> Optional[float]:
    return None if text == "" else float(text)
