"""The Scotch overlay: vSwitch mesh, tunnels, labels, activation.

Construction is offline configuration (paper §5.6) — tunnels and their
static label-switching rules never touch any OFA.  Activation/withdrawal
rule *changes* at a physical switch go through its OFA via the
controller, exactly as in the paper.

Label scheme (§5.2):  every packet detoured to the overlay carries two
MPLS labels — the inner one identifies the original ingress port, the
outer one the switch->vSwitch tunnel.  The overlay keeps the two
registries that let the controller invert them: ``tunnel_origin``
(tunnel id -> physical switch) and ``port_labels`` (label -> (switch,
port)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import (
    LB_TABLE,
    MAIN_TABLE,
    PRIORITY_LB,
    PRIORITY_PHYSICAL_FLOW,
    PRIORITY_SCOTCH_DEFAULT,
    SCOTCH_GROUP_ID,
    VSWITCH_FLOW_TABLE,
    ScotchConfig,
)
from repro.net.host import Host
from repro.net.tunnel import Tunnel, TunnelFabric
from repro.openflow.messages import ADD, MODIFY, DELETE, FlowMod, GroupMod
from repro.switch.actions import Action, GotoTable, Group, Output, PushMpls
from repro.switch.group_table import Bucket
from repro.switch.match import Match
from repro.switch.switch import OpenFlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flow import FlowKey
    from repro.net.topology import Network


class OverlayError(Exception):
    """Raised on inconsistent overlay configuration."""


@dataclass
class OverlayRule:
    """One per-flow rule to install at a vSwitch (with its priority —
    middlebox return-leg rules need a label-qualified higher priority,
    see :mod:`repro.core.policy`)."""

    dpid: str
    match: Match
    actions: List[Action]
    priority: int = PRIORITY_PHYSICAL_FLOW


class ScotchOverlay:
    """Topology-level state of the overlay."""

    def __init__(self, network: "Network", config: Optional[ScotchConfig] = None):
        self.network = network
        self.config = config or ScotchConfig()
        self.fabric = TunnelFabric(network)

        self.mesh: List[str] = []
        self.backups: List[str] = []
        self.dead: Set[str] = set()

        #: host name -> its host vSwitch (if it has one).
        self.host_vswitch_of: Dict[str, str] = {}
        #: host name -> the mesh vSwitch covering its location.
        self.local_mesh_of: Dict[str, str] = {}
        #: physical switch -> the mesh vSwitches its group spreads over.
        self.assignment: Dict[str, List[str]] = {}
        #: switch->vSwitch tunnel registries (§5.2 mapping tables).
        self.tunnel_origin: Dict[int, str] = {}
        self.tunnel_entry_vswitch: Dict[int, str] = {}
        #: Tunnels by purpose (a (src, dst) pair may carry several
        #: tunnels with different terminal behaviour).
        self.switch_tunnels: Dict[Tuple[str, str], "Tunnel"] = {}
        self.mesh_tunnels: Dict[Tuple[str, str], "Tunnel"] = {}
        self.delivery_tunnels: Dict[Tuple[str, str], "Tunnel"] = {}
        #: (switch, port) <-> inner ingress-port label.
        self.port_labels: Dict[int, Tuple[str, int]] = {}
        self._label_of_port: Dict[Tuple[str, int], int] = {}
        #: switches where the overlay is currently active.
        self.active: Set[str] = set()
        self._round_robin = 0
        self._obs = network.sim.obs
        if self._obs.metrics.enabled:
            metrics = self._obs.metrics
            metrics.gauge("overlay.mesh_vswitches", fn=lambda: len(self.mesh))
            metrics.gauge("overlay.dead_vswitches", fn=lambda: len(self.dead))
            metrics.gauge("overlay.active_switches", fn=lambda: len(self.active))
            metrics.gauge("overlay.tunnels", fn=lambda: len(self.fabric.tunnels))

    # ------------------------------------------------------------------
    # Offline construction
    # ------------------------------------------------------------------
    def _vswitch(self, name: str) -> OpenFlowSwitch:
        node = self.network[name]
        if not isinstance(node, OpenFlowSwitch):
            raise OverlayError(f"{name!r} is not a switch")
        return node

    def add_mesh_vswitch(self, name: str, backup: bool = False) -> None:
        """Add a vSwitch to the (fully connected) mesh."""
        self._vswitch(name)
        if name in self.mesh or name in self.backups:
            raise OverlayError(f"vSwitch {name!r} already in the overlay")
        kind = self.config.tunnel_kind
        for peer in self.mesh + self.backups:
            self.mesh_tunnels[(name, peer)] = self.fabric.create(
                name, peer, terminal_pops=1, kind=kind
            )
            self.mesh_tunnels[(peer, name)] = self.fabric.create(
                peer, name, terminal_pops=1, kind=kind
            )
        (self.backups if backup else self.mesh).append(name)

    def set_host_delivery(self, host_name: str, host_vswitch: Optional[str], local_mesh: str) -> None:
        """Declare how ``host_name`` is reached from the overlay: via its
        host vSwitch when it has one (tunnel + static dst rules), else by
        a direct tunnel from its local mesh vSwitch."""
        if local_mesh not in self.mesh and local_mesh not in self.backups:
            raise OverlayError(f"{local_mesh!r} is not a mesh vSwitch")
        host = self.network[host_name]
        if not isinstance(host, Host):
            raise OverlayError(f"{host_name!r} is not a host")
        self.local_mesh_of[host_name] = local_mesh
        if host_vswitch is not None:
            hv = self._vswitch(host_vswitch)
            self.host_vswitch_of[host_name] = host_vswitch
            port_no = hv.port_to(host_name)
            if port_no is None:
                raise OverlayError(f"{host_vswitch!r} has no link to {host_name!r}")
            # Static delivery rules in both the decap-continue table and
            # the main table (so physical-path traffic needs no per-flow
            # rule at the host vSwitch either).
            for table_id in (MAIN_TABLE, VSWITCH_FLOW_TABLE):
                hv.install_static(
                    Match(dst_ip=host.ip),
                    priority=PRIORITY_PHYSICAL_FLOW,
                    actions=[Output(port_no.port_no)],
                    table_id=table_id,
                )
            for mesh_name in set(self.mesh + self.backups):
                if mesh_name != host_vswitch:
                    self.delivery_tunnels[(mesh_name, host_name)] = self.fabric.create(
                        mesh_name, host_vswitch, terminal_pops=1,
                        kind=self.config.tunnel_kind,
                    )
        else:
            for mesh_name in set(self.mesh + self.backups):
                self.delivery_tunnels[(mesh_name, host_name)] = self.fabric.create(
                    mesh_name, host_name, terminal_pops=0,
                    kind=self.config.tunnel_kind,
                )

    def port_label(self, switch: str, port_no: int) -> int:
        """The inner MPLS label for (switch, ingress port), allocated on
        first use and registered for reverse lookup."""
        key = (switch, port_no)
        label = self._label_of_port.get(key)
        if label is None:
            label = self.fabric.allocate_label()
            self._label_of_port[key] = label
            self.port_labels[label] = key
        return label

    def register_switch(self, switch_name: str, vswitches: Optional[Sequence[str]] = None) -> None:
        """Connect a physical switch to the overlay: pick its serving
        vSwitches, build the tunnels (to backups too, for failover), and
        pre-allocate its ingress-port labels."""
        switch = self.network[switch_name]
        if not isinstance(switch, OpenFlowSwitch):
            raise OverlayError(f"{switch_name!r} is not a switch")
        if not switch.profile.supports_tunnels or not switch.profile.supports_groups:
            raise OverlayError(
                f"{switch_name} ({switch.profile.name}) lacks tunnel/group support"
            )
        if vswitches is None:
            if not self.mesh:
                raise OverlayError("overlay has no mesh vSwitches")
            count = min(self.config.vswitches_per_switch, len(self.mesh))
            start = self._round_robin
            vswitches = [self.mesh[(start + i) % len(self.mesh)] for i in range(count)]
            self._round_robin += count
        for vswitch_name in list(vswitches) + self.backups:
            tunnel = self.fabric.create(
                switch_name, vswitch_name, terminal_pops=2, kind=self.config.tunnel_kind
            )
            self.switch_tunnels[(switch_name, vswitch_name)] = tunnel
            self.tunnel_origin[tunnel.tunnel_id] = switch_name
            self.tunnel_entry_vswitch[tunnel.tunnel_id] = vswitch_name
        self.assignment[switch_name] = list(vswitches)
        for port_no in switch.ports:
            self.port_label(switch_name, port_no)

    def attribute_packet_in(self, dpid: str, message) -> Optional[Tuple[str, int]]:
        """Recover the (origin physical switch, ingress port) of a
        Packet-In that arrived over the overlay (via its tunnel id and
        inner ingress-port label, §5.2).  Returns None for Packet-Ins
        that did not come through a Scotch tunnel."""
        tunnel_id = message.metadata.get("tunnel_id")
        if tunnel_id is None or tunnel_id not in self.tunnel_origin:
            return None
        origin = self.tunnel_origin[tunnel_id]
        if self._obs.metrics.enabled:
            # Per-tunnel relay load: the control-plane "utilization" of
            # the switch->vSwitch tunnel this Packet-In rode in on.
            entry = self.tunnel_entry_vswitch.get(tunnel_id)
            self._obs.metrics.counter(
                f"overlay.tunnel.{origin}->{entry}.packet_ins"
            ).inc()
        inner = message.metadata.get("inner_label")
        port_info = self.port_labels.get(inner) if inner is not None else None
        return origin, (port_info[1] if port_info else 0)

    # ------------------------------------------------------------------
    # Activation / withdrawal rule sets (sent by the app via the controller)
    # ------------------------------------------------------------------
    def live_assignment(self, switch_name: str) -> List[str]:
        """The switch's serving vSwitches with dead ones replaced by
        backups (in order), as §5.6's bucket replacement does."""
        serving = list(self.assignment.get(switch_name, ()))
        spares = [b for b in self.backups if b not in self.dead and b not in serving]
        out = []
        for name in serving:
            if name in self.dead:
                if spares:
                    out.append(spares.pop(0))
            else:
                out.append(name)
        return out

    def group_buckets(self, switch_name: str) -> List[Bucket]:
        buckets: List[Bucket] = []
        for vswitch_name in self.live_assignment(switch_name):
            tunnel = self.switch_tunnels.get((switch_name, vswitch_name))
            if tunnel is None:
                raise OverlayError(f"no tunnel {switch_name}->{vswitch_name}")
            buckets.append(
                Bucket(actions=tunnel.entry_actions(self.network), label=vswitch_name)
            )
        if not buckets:
            raise OverlayError(f"no live vSwitches serve {switch_name}")
        return buckets

    def activation_messages(self, switch_name: str) -> Tuple[GroupMod, List[FlowMod]]:
        """The GroupMod + FlowMods that turn the overlay on at a switch:
        one default rule per ingress port (push port label, go to the LB
        table) and the LB table's group rule (§5.1, §5.2)."""
        switch = self.network[switch_name]
        group = GroupMod(
            group_id=SCOTCH_GROUP_ID,
            group_type="select",
            buckets=self.group_buckets(switch_name),
            command=ADD,
        )
        mods: List[FlowMod] = []
        for port_no in switch.ports:
            mods.append(
                FlowMod(
                    match=Match(in_port=port_no),
                    priority=PRIORITY_SCOTCH_DEFAULT,
                    actions=[
                        PushMpls(self.port_label(switch_name, port_no)),
                        GotoTable(LB_TABLE),
                    ],
                    table_id=MAIN_TABLE,
                )
            )
        mods.append(
            FlowMod(
                match=Match.any(),
                priority=PRIORITY_LB,
                actions=[Group(SCOTCH_GROUP_ID)],
                table_id=LB_TABLE,
            )
        )
        return group, mods

    def withdrawal_messages(self, switch_name: str) -> List[FlowMod]:
        """FlowMod deletes removing the per-port default-to-overlay rules
        (§5.5 step two).

        The LB-table rule and the select group are deliberately left in
        place: they are unreachable except via the defaults — and via the
        per-flow *pin* rules withdrawal installs, which jump to the LB
        table so the residual flows keep hashing to their vSwitches.
        """
        switch = self.network[switch_name]
        return [
            FlowMod(
                match=Match(in_port=port_no),
                priority=PRIORITY_SCOTCH_DEFAULT,
                table_id=MAIN_TABLE,
                command=DELETE,
            )
            for port_no in switch.ports
        ]

    # ------------------------------------------------------------------
    # Overlay routing
    # ------------------------------------------------------------------
    def exit_vswitch_for(self, host_name: str) -> str:
        exit_name = self.local_mesh_of.get(host_name)
        if exit_name is None:
            raise OverlayError(f"host {host_name!r} has no overlay delivery mapping")
        if exit_name in self.dead:
            for candidate in self.backups + self.mesh:
                if candidate not in self.dead:
                    return candidate
            raise OverlayError("no live vSwitch can deliver")
        return exit_name

    def delivery_actions(self, mesh_vswitch: str, host_name: str) -> List[Action]:
        """Actions at ``mesh_vswitch`` that deliver to the host: enter the
        delivery tunnel toward its host vSwitch (or the host itself)."""
        tunnel = self.delivery_tunnels.get((mesh_vswitch, host_name))
        if tunnel is None:
            raise OverlayError(f"no delivery tunnel {mesh_vswitch}->{host_name}")
        return tunnel.entry_actions(self.network)

    def mesh_hop_actions(self, src_vswitch: str, dst_vswitch: str) -> List[Action]:
        tunnel = self.mesh_tunnels.get((src_vswitch, dst_vswitch))
        if tunnel is None:
            raise OverlayError(f"no mesh tunnel {src_vswitch}->{dst_vswitch}")
        return tunnel.entry_actions(self.network)

    def overlay_route(
        self, key: "FlowKey", entry_vswitch: str, dst_host: str
    ) -> List[OverlayRule]:
        """Per-flow vSwitch rules forwarding ``key`` from its entry
        vSwitch to the destination host across the mesh, **last hop
        first** (make-before-break).  All targets are vSwitches (cheap
        installs)."""
        match = Match.for_flow(key)
        exit_vswitch = self.exit_vswitch_for(dst_host)
        # Build in forward (entry -> exit) order, then flip once.
        rules: List[OverlayRule] = []
        if entry_vswitch == exit_vswitch:
            rules.append(
                OverlayRule(entry_vswitch, match, self.delivery_actions(entry_vswitch, dst_host))
            )
        else:
            rules.append(
                OverlayRule(entry_vswitch, match, self.mesh_hop_actions(entry_vswitch, exit_vswitch))
            )
            rules.append(
                OverlayRule(exit_vswitch, match, self.delivery_actions(exit_vswitch, dst_host))
            )
        rules.reverse()
        return rules

    # ------------------------------------------------------------------
    # Failure handling hooks (driven by core.failover)
    # ------------------------------------------------------------------
    def mark_dead(self, vswitch_name: str) -> List[str]:
        """Mark a vSwitch dead; returns the switches whose group buckets
        must be refreshed."""
        self.dead.add(vswitch_name)
        return [s for s, serving in self.assignment.items() if vswitch_name in serving]

    def mark_alive(self, vswitch_name: str) -> None:
        self.dead.discard(vswitch_name)

    def refresh_group(self, switch_name: str) -> GroupMod:
        """A GroupMod MODIFY with the current live bucket set."""
        return GroupMod(
            group_id=SCOTCH_GROUP_ID,
            group_type="select",
            buckets=self.group_buckets(switch_name),
            command=MODIFY,
        )
