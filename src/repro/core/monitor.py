"""Congestion detection (paper §4.2) and withdrawal detection (§5.5).

"The OpenFlow controller monitors the rate of Packet-In messages sent by
the OFA of each physical switch to determine if the control path is
congested."  While the overlay is active the switch's own OFA goes
quiet (the default rule swallows table misses), so the monitor instead
counts the new-flow arrivals attributed to the switch via the overlay's
tunnel metadata — which is also what §5.5 prescribes for detecting that
the congestion has passed ("monitoring the new flow arrival rate at
physical switches").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.config import ScotchConfig
from repro.metrics.meters import RateEstimator
from repro.sim.process import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event, Simulator
    from repro.switch.profiles import SwitchProfile


class _SwitchState:
    def __init__(self, profile: "SwitchProfile"):
        self.profile = profile
        self.meter = RateEstimator(window_events=64, window_seconds=2.0)
        self.table_full_meter = RateEstimator(window_events=32, window_seconds=2.0)
        self.congested = False
        self.below_since: Optional[float] = None


class CongestionMonitor:
    """Per-switch new-flow rate tracking with activation/withdrawal events."""

    def __init__(
        self,
        sim: "Simulator",
        config: ScotchConfig,
        on_congested: Callable[[str], None],
        on_cleared: Callable[[str], None],
        pressure_check: Optional[Callable[[str], bool]] = None,
    ):
        self.sim = sim
        self.config = config
        self.on_congested = on_congested
        self.on_cleared = on_cleared
        #: Extra veto on withdrawal: while this returns True for a
        #: switch, it is never declared calm (used for predicted TCAM
        #: pressure, which is invisible in the rates while mitigated).
        self.pressure_check = pressure_check
        self._switches: Dict[str, _SwitchState] = {}
        #: Restart-safe tick chain (sim.process.PeriodicTimer owns the
        #: pending event, so stop()/start() can never double the chain).
        self._timer = PeriodicTimer(sim, config.monitor_interval, self._tick)
        self._obs = sim.obs

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _tick_event(self) -> Optional["Event"]:
        return self._timer.event

    def watch(self, dpid: str, profile: "SwitchProfile") -> None:
        if dpid not in self._switches:
            self._switches[dpid] = _SwitchState(profile)
            if self._obs.metrics.enabled:
                self._obs.metrics.gauge(
                    f"monitor.{dpid}.new_flow_rate", fn=lambda d=dpid: self.rate(d)
                )
                self._obs.metrics.gauge(
                    f"monitor.{dpid}.congested",
                    fn=lambda d=dpid: float(self.is_congested(d)),
                )

    def observe_new_flow(self, dpid: str, count: int = 1) -> None:
        """Record new-flow arrivals attributed to ``dpid`` (direct
        Packet-Ins or overlay Packet-Ins carrying its tunnel id)."""
        state = self._switches.get(dpid)
        if state is not None:
            state.meter.observe(self.sim.now, count)

    def observe_table_full(self, dpid: str) -> None:
        """Record a TABLE_FULL error from ``dpid`` — the §3.3 TCAM
        bottleneck also warrants detouring new flows to the overlay."""
        state = self._switches.get(dpid)
        if state is not None:
            state.table_full_meter.observe(self.sim.now)

    def table_full_rate(self, dpid: str) -> float:
        state = self._switches.get(dpid)
        return state.table_full_meter.rate(self.sim.now) if state else 0.0

    def rate(self, dpid: str) -> float:
        state = self._switches.get(dpid)
        return state.meter.rate(self.sim.now) if state else 0.0

    def is_congested(self, dpid: str) -> bool:
        state = self._switches.get(dpid)
        return bool(state and state.congested)

    def force_congested(self, dpid: str) -> None:
        """Declare congestion out-of-band (e.g. predicted TCAM
        exhaustion) — fires ``on_congested`` once; the ordinary calm
        conditions later clear it."""
        state = self._switches.get(dpid)
        if state is not None and not state.congested:
            state.congested = True
            state.below_since = None
            self._instant("overlay.activate", dpid, reason="forced")
            self.on_congested(dpid)

    def _instant(self, name: str, dpid: str, **args) -> None:
        tracer = self._obs.tracer
        if tracer.enabled:
            tracer.instant(name, track="monitor", switch=dpid,
                           rate=self.rate(dpid), **args)

    # ------------------------------------------------------------------
    # Periodic evaluation
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        for dpid, state in self._switches.items():
            rate = state.meter.rate(self.sim.now)
            table_full = state.table_full_meter.rate(self.sim.now)
            capacity = state.profile.packet_in_rate
            if not state.congested:
                if (
                    rate >= self.config.activate_fraction * capacity
                    or table_full >= self.config.table_full_rate_threshold
                ):
                    state.congested = True
                    state.below_since = None
                    self._instant("overlay.activate", dpid,
                                  table_full_rate=table_full)
                    self.on_congested(dpid)
            else:
                calm = (
                    rate <= self.config.withdraw_fraction * capacity
                    and table_full < self.config.table_full_rate_threshold / 2
                    and not (self.pressure_check is not None and self.pressure_check(dpid))
                )
                if calm:
                    if state.below_since is None:
                        state.below_since = self.sim.now
                    elif self.sim.now - state.below_since >= self.config.withdraw_hold:
                        state.congested = False
                        state.below_since = None
                        self._instant("overlay.withdraw", dpid)
                        self.on_cleared(dpid)
                else:
                    state.below_since = None
        self._timer.rearm()
