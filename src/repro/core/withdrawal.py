"""Overlay withdrawal (paper §5.5).

Three steps, in order, all through the switch's admitted queue so they
stay R-rate-limited and FIFO-ordered:

1. per-flow *pin* rules keep the flows currently on the overlay going to
   the overlay ("the controller inserts rules at the switch to
   continuously forward these flows to the Scotch overlay");
2. the default-to-overlay rules are deleted, so new flows punt to the
   OFA and reach the controller directly again;
3. any residual overlay flow that later grows large is still migrated by
   the ordinary §5.3 machinery (nothing to do here — the migrator keeps
   running).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.controller.flow_info_db import FlowInfoDatabase
from repro.core.config import (
    LB_TABLE,
    MAIN_TABLE,
    PRIORITY_OVERLAY_PIN,
    ScotchConfig,
)
from repro.core.flow_manager import InstallJob, InstallScheduler
from repro.core.overlay import ScotchOverlay
from repro.openflow.messages import FlowMod
from repro.switch.actions import GotoTable, PushMpls
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class WithdrawalManager:
    """Runs the §5.5 sequence for one switch at a time."""

    def __init__(
        self,
        sim: "Simulator",
        overlay: ScotchOverlay,
        flow_db: FlowInfoDatabase,
        schedulers: Dict[str, InstallScheduler],
        config: ScotchConfig,
    ):
        self.sim = sim
        self.overlay = overlay
        self.flow_db = flow_db
        self.schedulers = schedulers
        self.config = config
        self.withdrawals = 0
        self.pins_installed = 0

    def withdraw(self, switch_name: str, on_complete: Optional[Callable[[], None]] = None) -> None:
        scheduler = self.schedulers.get(switch_name)
        if scheduler is None:
            raise KeyError(f"no scheduler for switch {switch_name!r}")
        self.withdrawals += 1

        # Step 1: pin every flow *currently* riding the overlay via this
        # switch — those with recent flow-stats activity (dead flows'
        # vSwitch rules idle out and stop appearing in stats).  The pin
        # replicates what the shared default rule did for this one flow
        # (push its ingress-port label, go to the LB table) and idles
        # out with the flow.
        now = self.sim.now
        window = self.config.pin_activity_window
        pin_jobs: List[InstallJob] = []
        for info in self.flow_db.overlay_flows_via(switch_name):
            seen = info.last_stats_seen if info.last_stats_seen is not None else info.first_seen
            if now - seen > window:
                continue
            label = self.overlay.port_label(switch_name, info.ingress_port)
            pin = FlowMod(
                match=Match.for_flow(info.key),
                priority=PRIORITY_OVERLAY_PIN,
                actions=[PushMpls(label), GotoTable(LB_TABLE)],
                table_id=MAIN_TABLE,
                idle_timeout=self.config.pin_idle_timeout,
            )
            pin_jobs.append(InstallJob(switch_name, pin))
        self.pins_installed += len(pin_jobs)

        # Step 2: remove the default rules — enqueued after the pins on
        # the same FIFO admitted queue, so ordering holds.  Overlay
        # routing at the controller stays enabled until the default
        # rules are actually gone (new flows keep arriving over the
        # overlay data path until then).
        removal_jobs = [
            InstallJob(switch_name, mod) for mod in self.overlay.withdrawal_messages(switch_name)
        ]

        def removal_done() -> None:
            scheduler.set_overlay_enabled(False)
            self.overlay.active.discard(switch_name)
            if on_complete is not None:
                on_complete()

        removal_jobs[-1].on_sent = removal_done

        for job in pin_jobs + removal_jobs:
            scheduler.submit_admitted(job)
