"""Scotch configuration: every tunable with its paper provenance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# ----------------------------------------------------------------------
# Pipeline layout at Scotch-enabled physical switches
# ----------------------------------------------------------------------
#: Main table (reactive red rules, static tunnel rules, Scotch defaults).
MAIN_TABLE = 0
#: Table where tunnel-decapsulated packets continue at vSwitches.
VSWITCH_FLOW_TABLE = 1
#: Load-balancing table at the physical switch (§5.2: "two flow tables
#: are needed at the physical switch: the first ... sets the ingress
#: port; the second ... load balancing").
LB_TABLE = 2

# ----------------------------------------------------------------------
# Rule priorities (paper Fig. 8: red physical rules beat green overlay
# rules; static tunnel label-switching beats everything reactive).
# ----------------------------------------------------------------------
PRIORITY_TUNNEL = 3000
PRIORITY_PHYSICAL_FLOW = 100  # red per-flow rules
PRIORITY_OVERLAY_PIN = 20  # §5.5 withdrawal: keep residual flows on overlay
PRIORITY_SCOTCH_DEFAULT = 10  # green shared default-to-overlay rules
PRIORITY_LB = 1

#: Group id used for the Scotch select group at each physical switch.
SCOTCH_GROUP_ID = 1


@dataclass
class ScotchConfig:
    """Tunables of the Scotch controller application."""

    # -- congestion detection (§4.2, §5.5) ---------------------------------
    #: Activate the overlay when a switch's observed new-flow (Packet-In)
    #: rate reaches this fraction of its OFA Packet-In capacity.
    activate_fraction: float = 0.8
    #: Withdraw when the new-flow rate falls below this fraction ...
    withdraw_fraction: float = 0.6
    #: ... and stays there for this long (avoids flapping).
    withdraw_hold: float = 3.0
    #: Monitor evaluation period, seconds.
    monitor_interval: float = 0.25
    #: TABLE_FULL error rate (errors/second) that also activates the
    #: overlay — §3.3: "the solution proposed in this paper is
    #: applicable to the TCAM bottleneck scenario as well".
    table_full_rate_threshold: float = 10.0
    #: Divert a flow to the overlay (instead of installing rules) when
    #: any path switch's *estimated* flow-table occupancy exceeds this
    #: fraction of its TCAM capacity.  The controller predicts occupancy
    #: from its own install history and rule timeouts, avoiding the
    #: install-fail/blackhole cycle entirely.
    tcam_headroom_fraction: float = 0.85

    # -- controller install budget (Fig. 7, §5.2, §6.1) --------------------
    #: Per-switch rule install rate R.  None = the switch profile's
    #: lossless insertion rate, the paper's recommendation ("the maximum
    #: rate at which the OpenFlow controller can install rules at the
    #: physical switch without insertion failure").
    install_rate: Optional[float] = None
    #: Ingress-port queue length beyond which new flows are routed over
    #: the overlay instead of the physical network.
    overlay_threshold: int = 10
    #: Queue length beyond which Packet-Ins are simply dropped.
    drop_threshold: int = 200
    #: Rate at which queued flows beyond the overlay threshold are set up
    #: on the overlay, per switch (vSwitch rule installs are cheap; this
    #: bounds controller-side work per congested switch).
    overlay_install_rate: float = 5000.0

    # -- large-flow migration (§5.3) ----------------------------------------
    #: Packet count at which an overlay flow is declared an elephant.
    elephant_packet_threshold: int = 200
    #: Flow-stats polling interval toward vSwitches, seconds.
    stats_interval: float = 1.0

    # -- sampled telemetry (docs/observability.md, "Sampled telemetry") -----
    #: How the controller measures per-flow counters at the vSwitches.
    #: ``poll``   — the paper's §5.3 loop: full flow-stats dumps every
    #:              ``stats_interval`` (the default; bit-identical to the
    #:              pre-telemetry behaviour).
    #: ``sample`` — NetFlow-style 1-in-N packet sampling at each mesh
    #:              vSwitch; the controller scales samples into per-flow
    #:              estimates and feeds them down the same stats path.
    #: ``hybrid`` — sampling plus a slow full poll (every
    #:              ``stats_interval * hybrid_poll_multiplier``) to
    #:              true-up the estimates.
    #: ``off``    — no flow measurement at all (baseline for the
    #:              monitoring-overhead benchmark).
    stats_mode: str = "poll"
    #: Sample 1 packet in this many (the NetFlow/sFlow sampling period N).
    sampling_period: int = 10
    #: How often each sampling vSwitch exports its accumulated sample
    #: records to the controller, seconds.
    sample_export_interval: float = 0.25
    #: In ``hybrid`` mode, full polls run this many times slower than
    #: ``stats_interval``.
    hybrid_poll_multiplier: float = 5.0
    #: Skip migrating onto switches whose pending install backlog exceeds
    #: this ("checks the message rate of all switches on the path to make
    #: sure their control plane is not overloaded").
    migration_backlog_limit: int = 50

    # -- rule lifetimes ------------------------------------------------------
    #: Idle timeout for reactive per-flow rules (the paper's experiments
    #: use 10 s rules).
    flow_idle_timeout: float = 10.0
    #: Idle timeout for §5.5 pin rules keeping residual flows on the overlay.
    pin_idle_timeout: float = 10.0
    #: A flow counts as "currently on the overlay" for §5.5 pinning if a
    #: stats dump reported its rule this recently (seconds).
    pin_activity_window: float = 3.0

    # -- load balancing / overlay shape (§5.1) -------------------------------
    #: How many mesh vSwitches each congested switch spreads over.
    vswitches_per_switch: int = 2
    #: Tunnel encapsulation for the overlay: "mpls" (default) or "gre"
    #: (§4.1: "any of the available tunneling protocols").
    tunnel_kind: str = "mpls"

    # -- failure detection (§5.6) -------------------------------------------
    heartbeat_interval: float = 1.0
    #: Declare a vSwitch dead after this many missed heartbeats.
    heartbeat_miss_limit: int = 3

    # -- reliable installs (docs/robustness.md) ------------------------------
    #: Send critical control state (activation rule sets, failover group
    #: refreshes) Barrier-acknowledged with timeout + retries, so it
    #: survives control-channel loss, flaps and vSwitch restarts.
    reliable_installs: bool = True
    #: Initial barrier-acknowledgement timeout, seconds (doubles per
    #: attempt — capped exponential backoff).
    reliable_install_timeout: float = 0.3
    #: Ceiling on the per-attempt timeout, seconds.
    reliable_install_timeout_cap: float = 2.0
    #: Re-send budget per batch; beyond this the batch is abandoned (and
    #: counted — the invariant checker asserts the counter stays sane).
    reliable_install_max_retries: int = 5

    # -- controller pool (docs/cluster.md, §beyond-paper) --------------------
    #: Number of controller-pool members.  1 (the default) builds no
    #: pool at all — the single-controller deployment is untouched and
    #: stays bit-identical to the pre-pool seed.
    controllers: int = 1
    #: Autoscaling floor / ceiling on live pool members.
    pool_min_controllers: int = 1
    pool_max_controllers: int = 4
    #: Leader lease: the leader broadcasts a beat this often ...
    pool_lease_interval: float = 0.5
    #: ... and a member that hears nothing for this long starts an
    #: election (candidacy with term + 1).
    pool_lease_timeout: float = 2.0
    #: A candidate that hears no higher-precedence claim for this long
    #: assumes leadership.
    pool_election_timeout: float = 1.0
    #: Pool bus one-way delivery delay, seconds (member-to-member
    #: election and coordination traffic).
    pool_bus_delay: float = 0.01
    #: Scale up when pool-wide Packet-In PPS stays above this ...
    pool_scale_up_pps: float = 4000.0
    #: ... for this long (hysteresis hold, seconds).
    pool_scale_up_hold: float = 1.0
    #: Scale down when pool-wide PPS stays below this for
    #: ``pool_scale_cooldown`` seconds.
    pool_scale_down_pps: float = 500.0
    pool_scale_cooldown: float = 5.0
    #: Minimum spacing between any two scale actions (warmup guard:
    #: a freshly spawned member must see traffic before the next
    #: decision).
    pool_warmup: float = 2.0
    #: Load-rebalance evaluation period, seconds.
    pool_rebalance_interval: float = 1.0
    #: Migrate a switch when the busiest member carries more than this
    #: multiple of the idlest member's Packet-In load.
    pool_imbalance_ratio: float = 2.0

    #: Re-send the activation rule set this many times (the activation
    #: FlowMods themselves cross the congested OFA; re-sends are
    #: idempotent and make activation robust to its insertion loss).
    activation_resends: int = 2
    #: Spacing between activation re-sends, seconds.
    activation_resend_gap: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.withdraw_fraction < self.activate_fraction <= 1:
            raise ValueError("need 0 < withdraw_fraction < activate_fraction <= 1")
        if self.overlay_threshold >= self.drop_threshold:
            raise ValueError("overlay_threshold must be below drop_threshold")
        if self.vswitches_per_switch < 1:
            raise ValueError("need at least one vSwitch per switch")
        if self.tunnel_kind not in ("mpls", "gre"):
            raise ValueError(f"unknown tunnel kind {self.tunnel_kind!r}")
        if self.reliable_install_timeout <= 0:
            raise ValueError("reliable_install_timeout must be positive")
        if self.reliable_install_timeout_cap < self.reliable_install_timeout:
            raise ValueError("reliable_install_timeout_cap must be >= the timeout")
        if self.reliable_install_max_retries < 0:
            raise ValueError("reliable_install_max_retries must be non-negative")
        if self.stats_mode not in ("poll", "sample", "hybrid", "off"):
            raise ValueError(f"unknown stats mode {self.stats_mode!r}")
        if self.sampling_period < 1:
            raise ValueError("sampling_period must be >= 1")
        if self.sample_export_interval <= 0:
            raise ValueError("sample_export_interval must be positive")
        if self.hybrid_poll_multiplier < 1:
            raise ValueError("hybrid_poll_multiplier must be >= 1")
        if self.controllers < 1:
            raise ValueError("controllers must be >= 1")
        if not 1 <= self.pool_min_controllers <= self.pool_max_controllers:
            raise ValueError("need 1 <= pool_min_controllers <= pool_max_controllers")
        if self.pool_lease_interval <= 0 or self.pool_election_timeout <= 0:
            raise ValueError("pool lease interval and election timeout must be positive")
        if self.pool_lease_timeout <= self.pool_lease_interval:
            raise ValueError("pool_lease_timeout must exceed pool_lease_interval")
        if self.pool_bus_delay < 0:
            raise ValueError("pool_bus_delay must be non-negative")
        if self.pool_scale_down_pps >= self.pool_scale_up_pps:
            raise ValueError("pool_scale_down_pps must be below pool_scale_up_pps")
        if self.pool_scale_up_hold < 0 or self.pool_scale_cooldown < 0:
            raise ValueError("pool scale hold/cooldown must be non-negative")
        if self.pool_warmup < 0:
            raise ValueError("pool_warmup must be non-negative")
        if self.pool_rebalance_interval <= 0:
            raise ValueError("pool_rebalance_interval must be positive")
        if self.pool_imbalance_ratio <= 1:
            raise ValueError("pool_imbalance_ratio must exceed 1")
