"""Controller-side flow management (paper Fig. 7, §5.2-§5.3).

Per physical switch the controller keeps:

* an **admitted-flow queue** (highest priority) — concrete FlowMods for
  flows already admitted to the physical network;
* a **large-flow migration queue** — FlowMods that move elephants from
  the overlay onto physical paths;
* **per-ingress-port queues** (lowest priority) — pending new flows,
  served round-robin so one attacked port cannot starve the others.
  The grouping is pluggable (§5.2: "we can classify the flows into
  different groups and enforce fair sharing of the SDN network across
  groups", e.g. per customer): pass ``group_key`` to change how pending
  flows map to queues.

One server per switch drains these in strict priority order at rate R —
the switch's lossless rule-insertion rate (§6.1) — so the controller
never pushes the OFA into its insertion-loss region.

Flows beyond the per-port *overlay threshold* are routed over the Scotch
overlay instead (drained from the queue tail at ``overlay_install_rate``,
which only costs cheap vSwitch installs); beyond the *dropping
threshold* the Packet-Ins are discarded outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.config import ScotchConfig
from repro.openflow.messages import FlowMod
from repro.sim.queues import BoundedQueue, RoundRobinScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.net.flow import FlowKey
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator

#: Disposition values returned by :meth:`InstallScheduler.submit_new_flow`.
QUEUED = "queued"
DROPPED = "dropped"


@dataclass
class PendingFlow:
    """A new flow awaiting a routing decision."""

    key: "FlowKey"
    first_hop: str
    ingress_port: int
    packet: Optional["Packet"]
    entry_vswitch: Optional[str] = None
    enqueued_at: float = 0.0


@dataclass
class InstallJob:
    """A FlowMod destined for one switch, with a sent-notification."""

    dpid: str
    flow_mod: FlowMod
    on_sent: Optional[Callable[[], None]] = None


@dataclass
class MigrationRequest:
    """A §5.3 large-flow migration request awaiting its service slot.

    The migration queue holds *requests*, not rules: when a request is
    served, ``run()`` computes the path and pushes the flow's rules into
    the **admitted** queues of the path's switches (paper: "inserting
    the flow forwarding rules into the admitted flow queue of the
    corresponding switches").
    """

    run: Callable[[], None]


class InstallScheduler:
    """The per-switch queue system + rate-R server of Fig. 7."""

    def __init__(
        self,
        sim: "Simulator",
        controller: "OpenFlowController",
        dpid: str,
        rate: float,
        config: ScotchConfig,
        on_admit: Callable[[PendingFlow], None],
        on_overlay: Callable[[PendingFlow], None],
        group_key: Optional[Callable[[PendingFlow], object]] = None,
    ):
        if rate <= 0:
            raise ValueError("install rate R must be positive")
        #: Maps a pending flow to its fair-sharing queue; the default is
        #: the paper's per-ingress-port differentiation.
        self.group_key = group_key or (lambda pending: pending.ingress_port)
        self.sim = sim
        self.controller = controller
        self.dpid = dpid
        self.rate = rate
        self.config = config
        self.on_admit = on_admit
        self.on_overlay = on_overlay

        self.admitted = BoundedQueue(name=f"{dpid}.admitted")
        self.migration = BoundedQueue(name=f"{dpid}.migration")
        self.ingress = RoundRobinScheduler()
        self.overlay_enabled = False
        # Small service jitter: real controllers are not clock-exact.
        # Without it, an admission stream at exactly rate R locks step
        # with downstream servers also running at R and the strictly
        # lower-priority migration queue would never see an idle slot.
        self._rng = sim.rng.stream(f"scheduler:{dpid}")
        self._jitter = 0.05

        self._busy = False
        self._overlay_busy = False
        self.flows_admitted = 0
        self.flows_overlaid = 0
        self.flows_dropped = 0
        self.mods_sent = 0

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    def _group_queue(self, key: object) -> BoundedQueue:
        queue = self.ingress.get_queue(key)
        if queue is None:
            queue = BoundedQueue(name=f"{self.dpid}.group{key}")
            self.ingress.add_queue(key, queue)
        return queue

    def submit_new_flow(self, pending: PendingFlow) -> str:
        """Enqueue a Packet-In onto its fair-sharing queue (per ingress
        port by default); drops beyond the dropping threshold (§5.2)."""
        queue = self._group_queue(self.group_key(pending))
        if len(queue) >= self.config.drop_threshold:
            self.flows_dropped += 1
            queue.dropped += 1
            return DROPPED
        pending.enqueued_at = self.sim.now
        queue.push(pending)
        self._kick()
        self._kick_overlay()
        return QUEUED

    def submit_admitted(self, job: InstallJob) -> None:
        self.admitted.push(job)
        self._kick()

    def submit_migration(self, request: MigrationRequest) -> None:
        self.migration.push(request)
        self._kick()

    def set_overlay_enabled(self, enabled: bool) -> None:
        self.overlay_enabled = enabled
        if enabled:
            self._kick_overlay()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Pending FlowMods ahead of any new migration rule (used by the
        migrator's §5.3 overload check)."""
        return len(self.admitted) + len(self.migration)

    def port_backlog(self, key: object) -> int:
        """Backlog of one fair-sharing queue (keyed by ingress port under
        the default grouping)."""
        queue = self.ingress.get_queue(key)
        return len(queue) if queue is not None else 0

    # ------------------------------------------------------------------
    # Rate-R priority server
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return bool(self.admitted or self.migration or self.ingress.total_backlog())

    def _kick(self) -> None:
        if not self._busy and self._has_work():
            self._busy = True
            gap = (1.0 / self.rate) * self._rng.uniform(1 - self._jitter, 1 + self._jitter)
            self.sim.schedule(gap, self._serve)

    def _serve(self) -> None:
        self._busy = False
        if self.admitted:
            self._send(self.admitted.pop())
        elif self.migration:
            self.migration.pop().run()
        else:
            popped = self.ingress.pop_next()
            if popped is not None:
                _, pending = popped
                self.flows_admitted += 1
                self.on_admit(pending)
        self._kick()

    def _send(self, job: InstallJob) -> None:
        self.controller.datapaths[job.dpid].send(job.flow_mod)
        self.mods_sent += 1
        if job.on_sent is not None:
            job.on_sent()

    # ------------------------------------------------------------------
    # Overlay drain: tail of any queue beyond the overlay threshold
    # ------------------------------------------------------------------
    def _overlay_candidates(self) -> Optional[BoundedQueue]:
        longest: Optional[BoundedQueue] = None
        for port in self.ingress:
            queue = self.ingress.get_queue(port)
            if len(queue) > self.config.overlay_threshold:
                if longest is None or len(queue) > len(longest):
                    longest = queue
        return longest

    def _kick_overlay(self) -> None:
        if (
            self.overlay_enabled
            and not self._overlay_busy
            and self._overlay_candidates() is not None
        ):
            self._overlay_busy = True
            self.sim.schedule(1.0 / self.config.overlay_install_rate, self._serve_overlay)

    def _serve_overlay(self) -> None:
        self._overlay_busy = False
        if not self.overlay_enabled:
            return
        queue = self._overlay_candidates()
        if queue is not None:
            pending = queue.pop_tail()
            self.flows_overlaid += 1
            self.on_overlay(pending)
        self._kick_overlay()


class PathInstaller:
    """Sequenced cross-switch rule installation.

    Rules are supplied **last hop first**; each physical-switch rule is
    enqueued to the *next* switch's queue only after the previous one was
    actually sent — the §5.3 make-before-break ordering ("the forwarding
    rule on the first hop switch is added at last").  Rules addressed to
    vSwitches bypass the per-switch budget (vSwitch installs are cheap)
    and are sent immediately.
    """

    #: Per-hop settle time after sending a FlowMod before the next hop is
    #: attempted: one-way control latency + OFA rule commit.  Real
    #: controllers get the same pacing from a barrier round trip.
    SETTLE_DELAY = 4e-3

    def __init__(
        self,
        controller: "OpenFlowController",
        schedulers: Dict[str, InstallScheduler],
        settle_delay: float = SETTLE_DELAY,
    ):
        self.controller = controller
        self.schedulers = schedulers
        self.settle_delay = settle_delay

    def install(
        self,
        jobs: List[InstallJob],
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``jobs`` (last hop first) with sequencing through the
        per-switch **admitted** queues; calls ``on_complete`` one settle
        delay after the final rule is sent, i.e. when the whole path is
        expected to be live."""
        sim = self.controller.sim

        def send_from(index: int) -> None:
            if index >= len(jobs):
                if on_complete is not None:
                    on_complete()
                return
            job = jobs[index]
            chained = job.on_sent

            def advance() -> None:
                if chained is not None:
                    chained()
                sim.schedule(self.settle_delay, send_from, index + 1)

            scheduler = self.schedulers.get(job.dpid)
            if scheduler is None:
                # A vSwitch (or unmanaged switch): send directly.
                self.controller.datapaths[job.dpid].send(job.flow_mod)
                advance()
            else:
                scheduler.submit_admitted(InstallJob(job.dpid, job.flow_mod, on_sent=advance))

        send_from(0)
