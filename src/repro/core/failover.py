"""vSwitch failure detection and failover (paper §5.6).

"vSwitch has a built-in heartbeat module that periodically sends the
ECHO_REQUEST message to the OpenFlow controller" — our controller drives
the echo exchange; a vSwitch that misses ``heartbeat_miss_limit``
consecutive replies is declared dead, and every physical switch whose
select group contained a bucket to it gets a GroupMod that swaps in a
backup vSwitch.  Flows that hashed to the dead vSwitch re-appear at the
backup as new flows (table miss -> Packet-In), exactly as the paper
describes.  A recovered vSwitch (echo replies resume) rejoins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.openflow.messages import EchoReply
    from repro.sim.engine import Simulator


class HeartbeatMonitor:
    """Echo-driven liveness tracking for the overlay's vSwitches."""

    def __init__(
        self,
        sim: "Simulator",
        controller: "OpenFlowController",
        overlay: ScotchOverlay,
        config: ScotchConfig,
        groups_installed: Set[str],
        on_failover: Optional[Callable[[str], None]] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.overlay = overlay
        self.config = config
        #: Switches whose Scotch group exists (set by the app at
        #: activation time); only these receive bucket refreshes.
        self.groups_installed = groups_installed
        self.on_failover = on_failover
        self._pending: Dict[str, int] = {}
        self.failures_detected = 0
        self.recoveries_detected = 0
        self._running = False

    def targets(self):
        return list(self.overlay.mesh) + list(self.overlay.backups)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.config.heartbeat_interval, self._tick, daemon=True)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        for dpid in self.targets():
            if dpid not in self.controller.datapaths:
                continue
            outstanding = self._pending.get(dpid, 0)
            if outstanding >= self.config.heartbeat_miss_limit and dpid not in self.overlay.dead:
                self._declare_dead(dpid)
            self._pending[dpid] = outstanding + 1
            self.controller.echo(dpid)
        self.sim.schedule(self.config.heartbeat_interval, self._tick, daemon=True)

    def echo_reply(self, dpid: str, message: "EchoReply") -> None:
        self._pending[dpid] = 0
        if dpid in self.overlay.dead:
            self._declare_recovered(dpid)

    # ------------------------------------------------------------------
    def _declare_dead(self, dpid: str) -> None:
        self.failures_detected += 1
        affected = self.overlay.mark_dead(dpid)
        self._refresh_groups(affected)

    def _declare_recovered(self, dpid: str) -> None:
        self.recoveries_detected += 1
        self.overlay.mark_alive(dpid)
        affected = [
            s for s, serving in self.overlay.assignment.items() if dpid in serving
        ]
        self._refresh_groups(affected)

    def _refresh_groups(self, switches) -> None:
        for switch_name in switches:
            if switch_name in self.groups_installed:
                self.controller.datapaths[switch_name].send(
                    self.overlay.refresh_group(switch_name)
                )
            if self.on_failover is not None:
                self.on_failover(switch_name)
