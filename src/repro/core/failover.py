"""vSwitch failure detection and failover (paper §5.6).

"vSwitch has a built-in heartbeat module that periodically sends the
ECHO_REQUEST message to the OpenFlow controller" — our controller drives
the echo exchange; a vSwitch that misses ``heartbeat_miss_limit``
consecutive replies is declared dead, and every physical switch whose
select group contained a bucket to it gets a GroupMod that swaps in a
backup vSwitch.  Flows that hashed to the dead vSwitch re-appear at the
backup as new flows (table miss -> Packet-In), exactly as the paper
describes.  A recovered vSwitch (echo replies resume) rejoins.

Robustness (docs/robustness.md): group refreshes can ride the
controller's reliable-install layer (Barrier-acked with retries) so a
bucket swap survives a lossy or flapping control channel, and when every
candidate vSwitch for a switch is dead the monitor *degrades* — it skips
the refresh and leaves the previous buckets in place rather than pushing
a group with no live targets — instead of crashing the tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.core.config import ScotchConfig
from repro.core.overlay import OverlayError, ScotchOverlay
from repro.sim.process import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.controller.reliability import ReliableSender
    from repro.openflow.messages import EchoReply
    from repro.sim.engine import Event, Simulator


class HeartbeatMonitor:
    """Echo-driven liveness tracking for the overlay's vSwitches."""

    def __init__(
        self,
        sim: "Simulator",
        controller: "OpenFlowController",
        overlay: ScotchOverlay,
        config: ScotchConfig,
        groups_installed: Set[str],
        on_failover: Optional[Callable[[str], None]] = None,
        reliable: Optional["ReliableSender"] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.overlay = overlay
        self.config = config
        #: Switches whose Scotch group exists (set by the app at
        #: activation time); only these receive bucket refreshes.
        self.groups_installed = groups_installed
        self.on_failover = on_failover
        #: When set, group refreshes go through the Barrier-acked
        #: reliable-install layer (keyed, so a newer refresh for the same
        #: switch supersedes a still-retrying older one).
        self.reliable = reliable
        self._pending: Dict[str, int] = {}
        self.failures_detected = 0
        self.recoveries_detected = 0
        #: Echo replies outstanding at tick time (one count per target
        #: per tick while unanswered) — the health engine's
        #: ``heartbeat.miss_rate`` SLI reads the matching counter.
        self.misses = 0
        self._m_misses = sim.obs.metrics.counter("heartbeat.misses")
        #: Refreshes skipped because no live vSwitch serves the switch
        #: (backups exhausted) — the degraded mode of §5.6 failover.
        self.degraded_refreshes = 0
        #: Restart-safe tick chain (sim.process.PeriodicTimer owns the
        #: pending event, so stop()/start() can never double the chain).
        self._timer = PeriodicTimer(sim, config.heartbeat_interval, self._tick)

    @property
    def _running(self) -> bool:
        return self._timer.running

    @property
    def _tick_event(self) -> Optional["Event"]:
        return self._timer.event

    def targets(self):
        return list(self.overlay.mesh) + list(self.overlay.backups)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        """Stop ticking and forget outstanding miss counts — a restarted
        monitor (e.g. a standby controller taking over) must not declare
        a vSwitch dead from echoes *it* never sent."""
        self._timer.stop()
        self._pending.clear()

    def _tick(self) -> None:
        if not self._timer.running:
            return
        for dpid in self.targets():
            if dpid not in self.controller.datapaths:
                continue
            outstanding = self._pending.get(dpid, 0)
            if outstanding >= 1:
                self.misses += 1
                self._m_misses.inc()
            if outstanding >= self.config.heartbeat_miss_limit and dpid not in self.overlay.dead:
                self._declare_dead(dpid)
            self._pending[dpid] = outstanding + 1
            self.controller.echo(dpid)
        self._timer.rearm()

    def echo_reply(self, dpid: str, message: "EchoReply") -> None:
        self._pending[dpid] = 0
        if dpid in self.overlay.dead:
            self._declare_recovered(dpid)

    # ------------------------------------------------------------------
    def _declare_dead(self, dpid: str) -> None:
        self.failures_detected += 1
        self._instant("failover.dead", dpid)
        affected = self.overlay.mark_dead(dpid)
        self._refresh_groups(affected)

    def _declare_recovered(self, dpid: str) -> None:
        self.recoveries_detected += 1
        self._instant("failover.recovered", dpid)
        self.overlay.mark_alive(dpid)
        affected = [
            s for s, serving in self.overlay.assignment.items() if dpid in serving
        ]
        self._refresh_groups(affected)

    def _refresh_groups(self, switches) -> None:
        for switch_name in switches:
            if switch_name in self.groups_installed:
                try:
                    group_mod = self.overlay.refresh_group(switch_name)
                except OverlayError:
                    # Backups exhausted: nothing alive to point a bucket
                    # at.  Keep the previous buckets (stale but harmless
                    # once nothing answers behind them) and note the
                    # degradation; a later recovery refreshes normally.
                    self.degraded_refreshes += 1
                    self._instant("failover.degraded", switch_name)
                    continue
                if self.reliable is not None:
                    self.reliable.send(
                        switch_name, [group_mod], key=("group", switch_name)
                    )
                else:
                    self.controller.datapaths[switch_name].send(group_mod)
            if self.on_failover is not None:
                self.on_failover(switch_name)

    def _instant(self, name: str, dpid: str) -> None:
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant(name, track="failover", switch=dpid)
