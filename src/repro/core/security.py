"""A security application on top of Scotch's preserved visibility.

The paper's motivation for keeping every new flow visible to the
controller even under overload: "The collected flow information can be
fed into the security tools to help pinpoint the root cause of the
overloading" (§1) and "Existing network security tools or solutions can
be readily integrated into our framework, e.g., as a new application at
the SDN controller" (§5.2).

:class:`SecurityApp` is exactly that application.  It taps the same
Packet-In stream (attributed back to the original switch/port via the
overlay's §5.2 label registries), tracks per-ingress-port new-flow rates
and source/destination dispersion, and raises an :class:`AttackReport`
when a port's rate crosses its threshold — diagnosing spoofed-source
floods by their source dispersion and naming the victim destination.

Mitigation is pluggable:

* ``"report"`` (default) — detection only; reports accumulate and an
  optional callback fires.
* ``"block"`` — install a drop rule at the attacked switch for
  (ingress port, victim destination), at a priority above the Scotch
  defaults but *below* per-flow red rules, so already-admitted flows
  keep working while the unadmitted flood is shed in the data plane.
  The rule idles out, so mitigation decays with the attack — the
  trade-off (legitimate *new* flows from that port to the victim are
  collateral during the attack) is inherent to spoofed sources and is
  the operator's call, which is why it is not the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.controller.base_app import BaseApp
from repro.core.config import MAIN_TABLE, PRIORITY_SCOTCH_DEFAULT
from repro.core.overlay import ScotchOverlay
from repro.switch.actions import Drop
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.messages import PacketIn

#: Priority of mitigation drop rules: above the green overlay defaults,
#: below red per-flow rules (admitted flows are never collateral).
PRIORITY_MITIGATION = PRIORITY_SCOTCH_DEFAULT + 5

REPORT = "report"
BLOCK = "block"


@dataclass
class AttackReport:
    """One detection event."""

    time: float
    switch: str
    port: int
    new_flow_rate: float
    distinct_sources: int
    top_destination: Optional[str]
    spoofing_suspected: bool
    mitigated: bool = False


class _PortWindow:
    """Per-(switch, port) accounting for the current detection window."""

    __slots__ = ("flows", "sources", "destinations")

    def __init__(self):
        self.flows = 0
        self.sources: Set[str] = set()
        self.destinations: Dict[str, int] = {}

    def observe(self, packet) -> None:
        self.flows += 1
        self.sources.add(packet.src_ip)
        self.destinations[packet.dst_ip] = self.destinations.get(packet.dst_ip, 0) + 1

    def top_destination(self) -> Optional[str]:
        if not self.destinations:
            return None
        return max(self.destinations.items(), key=lambda kv: kv[1])[0]


class SecurityApp(BaseApp):
    """Attack detection (and optional mitigation) over Scotch visibility."""

    def __init__(
        self,
        overlay: ScotchOverlay,
        rate_threshold: float = 500.0,
        interval: float = 1.0,
        mitigation: str = REPORT,
        spoofing_dispersion: float = 0.8,
        mitigation_idle_timeout: float = 30.0,
        on_attack: Optional[Callable[[AttackReport], None]] = None,
    ):
        super().__init__()
        if mitigation not in (REPORT, BLOCK):
            raise ValueError(f"unknown mitigation {mitigation!r}")
        if interval <= 0 or rate_threshold <= 0:
            raise ValueError("interval and rate_threshold must be positive")
        self.overlay = overlay
        self.rate_threshold = rate_threshold
        self.interval = interval
        self.mitigation = mitigation
        #: Fraction of distinct sources per flow above which the flood is
        #: diagnosed as spoofed (spoofed floods use a fresh source per
        #: packet; flash crowds repeat sources).
        self.spoofing_dispersion = spoofing_dispersion
        self.mitigation_idle_timeout = mitigation_idle_timeout
        self.on_attack = on_attack
        self.reports: List[AttackReport] = []
        self.mitigations_installed = 0
        self._windows: Dict[Tuple[str, int], _PortWindow] = {}
        self._mitigated: Set[Tuple[str, int, str]] = set()

    def start(self) -> None:
        self.sim.schedule(self.interval, self._evaluate)

    # ------------------------------------------------------------------
    # Packet-In tap
    # ------------------------------------------------------------------
    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        packet = message.packet
        if packet is None:
            return
        attribution = self.overlay.attribute_packet_in(dpid, message)
        if attribution is not None:
            origin, port = attribution
        elif dpid in self.overlay.assignment:
            origin, port = dpid, message.in_port
        else:
            return
        window = self._windows.get((origin, port))
        if window is None:
            window = self._windows[(origin, port)] = _PortWindow()
        window.observe(packet)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        for (switch, port), window in self._windows.items():
            rate = window.flows / self.interval
            if rate >= self.rate_threshold:
                self._raise_attack(switch, port, rate, window)
        self._windows = {}
        self.sim.schedule(self.interval, self._evaluate)

    def _raise_attack(self, switch: str, port: int, rate: float, window: _PortWindow) -> None:
        dispersion = len(window.sources) / max(1, window.flows)
        report = AttackReport(
            time=self.sim.now,
            switch=switch,
            port=port,
            new_flow_rate=rate,
            distinct_sources=len(window.sources),
            top_destination=window.top_destination(),
            spoofing_suspected=dispersion >= self.spoofing_dispersion,
        )
        # Only spoofed floods are blocked: a flash crowd is *legitimate*
        # load, and carrying it is exactly what the Scotch overlay is for.
        if (
            self.mitigation == BLOCK
            and report.spoofing_suspected
            and report.top_destination is not None
        ):
            report.mitigated = self._block(switch, port, report.top_destination)
        self.reports.append(report)
        if self.on_attack is not None:
            self.on_attack(report)

    # ------------------------------------------------------------------
    # Mitigation
    # ------------------------------------------------------------------
    def _block(self, switch: str, port: int, victim: str) -> bool:
        token = (switch, port, victim)
        if token in self._mitigated:
            return True
        if switch not in self.controller.datapaths:
            return False
        self.controller.flow_mod(
            switch,
            Match(in_port=port, dst_ip=victim),
            PRIORITY_MITIGATION,
            [Drop()],
            table_id=MAIN_TABLE,
            idle_timeout=self.mitigation_idle_timeout,
        )
        self._mitigated.add(token)
        self.mitigations_installed += 1
        return True
