"""Large-flow migration out of the overlay (paper §5.3).

The controller polls the vSwitches' flow stats, identifies flows with
high packet counts, verifies the control planes along the candidate
physical path are not overloaded, and installs the path through the
migration queues — first-hop rule strictly last, so packets only switch
paths once the whole path is ready.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from repro.controller.flow_info_db import ROUTE_OVERLAY, ROUTE_PHYSICAL, FlowInfoDatabase
from repro.core.config import PRIORITY_PHYSICAL_FLOW, VSWITCH_FLOW_TABLE, ScotchConfig
from repro.core.flow_manager import InstallJob, InstallScheduler, MigrationRequest, PathInstaller
from repro.net.flow import FlowKey
from repro.openflow.messages import DELETE, FlowMod, FlowStatsReply

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import OpenFlowController
    from repro.controller.routing import Router
    from repro.core.policy import PolicyRegistry
    from repro.sim.engine import Simulator

#: Cookie stamped on per-flow overlay rules so stats replies are
#: attributable (and deletable) per flow.
OVERLAY_COOKIE = "scotch-overlay"


class ElephantMigrator:
    """Consumes vSwitch flow stats; migrates elephants to physical paths."""

    def __init__(
        self,
        sim: "Simulator",
        controller: "OpenFlowController",
        router: "Router",
        policy: "PolicyRegistry",
        flow_db: FlowInfoDatabase,
        schedulers: Dict[str, InstallScheduler],
        installer: PathInstaller,
        config: ScotchConfig,
    ):
        self.sim = sim
        self.controller = controller
        self.router = router
        self.policy = policy
        self.flow_db = flow_db
        self.schedulers = schedulers
        self.installer = installer
        self.config = config
        self._migrating: Set[FlowKey] = set()
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_deferred = 0
        #: When each flow first crossed the elephant threshold in a stats
        #: dump (sim time) — pure bookkeeping, read by the telemetry
        #: accuracy scorecard to score detection recall/latency under
        #: polling vs. sampling.
        self.elephants_flagged: Dict[FlowKey, float] = {}

    # ------------------------------------------------------------------
    # Stats intake
    # ------------------------------------------------------------------
    def handle_stats(self, dpid: str, reply: FlowStatsReply) -> None:
        for entry in reply.entries:
            if entry.cookie != OVERLAY_COOKIE:
                continue
            if entry.table_id != VSWITCH_FLOW_TABLE:
                continue
            if not entry.match.is_exact_five_tuple:
                continue
            key = FlowKey(*entry.match.five_tuple_key())
            info = self.flow_db.get(key)
            if info is not None and entry.packets > info.last_stats_packets:
                info.last_stats_packets = entry.packets
                info.last_stats_seen = self.sim.now
            if entry.packets < self.config.elephant_packet_threshold:
                continue
            if key not in self.elephants_flagged:
                self.elephants_flagged[key] = self.sim.now
            self.maybe_migrate(key)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def maybe_migrate(self, key: FlowKey) -> bool:
        """Queue a migration request for ``key`` at its first-hop
        switch's migration queue (Fig. 7 middle band)."""
        info = self.flow_db.get(key)
        if info is None or info.route != ROUTE_OVERLAY or key in self._migrating:
            return False
        if self.router.host_for(key.dst_ip) is None:
            return False
        scheduler = self.schedulers.get(info.first_hop_switch)
        if scheduler is None:
            return False
        self._migrating.add(key)
        self.migrations_started += 1
        scheduler.submit_migration(MigrationRequest(run=lambda: self._serve_request(key)))
        return True

    def _serve_request(self, key: FlowKey) -> None:
        """The request reached its service slot: compute the path, check
        the path's control planes, and push the rules into the admitted
        queues (first-hop rule last)."""
        info = self.flow_db.get(key)
        if info is None or info.route != ROUTE_OVERLAY:
            self._migrating.discard(key)
            return
        host = self.router.host_for(key.dst_ip)
        if host is None:
            self._migrating.discard(key)
            return
        path = self.policy.physical_path(info.first_hop_switch, host.name, info.middlebox_chain)

        # §5.3: "checks the message rate of all switches on the path to
        # make sure their control plane is not overloaded" — defer and
        # retry when any path switch's pending-install backlog is high.
        for node in path:
            scheduler = self.schedulers.get(node)
            if scheduler is not None and scheduler.backlog() > self.config.migration_backlog_limit:
                self.migrations_deferred += 1
                self.sim.schedule(self.config.stats_interval, self._resubmit, key)
                return

        rules = self.router.rules_for_path(path, key)
        if not rules:
            self._migrating.discard(key)
            return
        jobs = [
            InstallJob(
                rule.dpid,
                FlowMod(
                    match=rule.match,
                    priority=PRIORITY_PHYSICAL_FLOW,
                    actions=rule.actions,
                    idle_timeout=self.config.flow_idle_timeout,
                ),
            )
            for rule in rules
        ]
        self.installer.install(jobs, on_complete=lambda: self._finish(key))

    def _resubmit(self, key: FlowKey) -> None:
        info = self.flow_db.get(key)
        if info is None or info.route != ROUTE_OVERLAY:
            self._migrating.discard(key)
            return
        scheduler = self.schedulers.get(info.first_hop_switch)
        if scheduler is None:
            self._migrating.discard(key)
            return
        scheduler.submit_migration(MigrationRequest(run=lambda: self._serve_request(key)))

    def _finish(self, key: FlowKey) -> None:
        """The first-hop rule was sent: the flow now rides the physical
        path.  Clean the per-flow overlay rules off the vSwitches."""
        info = self.flow_db.get(key)
        if info is None:
            return
        self.flow_db.set_route(key, ROUTE_PHYSICAL, now=self.sim.now)
        # The overlay reinjection target is about to disappear; the
        # physical path's red rules handle everything from here.
        info.reinject = None
        self.migrations_completed += 1
        self._migrating.discard(key)
        for dpid, match, priority in list(info.overlay_sites):
            if dpid in self.controller.datapaths:
                self.controller.datapaths[dpid].send(
                    FlowMod(
                        match=match,
                        priority=priority,
                        table_id=VSWITCH_FLOW_TABLE,
                        command=DELETE,
                    )
                )
        info.overlay_sites.clear()
