"""The Scotch controller application (ties §4-§5 together).

Event flow:

* Packet-Ins from managed physical switches or from overlay vSwitches
  (carrying tunnel metadata) become :class:`PendingFlow` entries in the
  originating switch's ingress-port queues (Fig. 7).
* The per-switch rate-R server admits flows to physical paths; the
  overlay drain routes the over-threshold excess across the vSwitch
  mesh; the dropping threshold sheds what neither can carry.
* The congestion monitor activates the overlay at a switch (modified
  default rules + select group) and later triggers withdrawal.
* The stats poller + migrator move elephants to physical paths.
* The heartbeat monitor replaces failed vSwitches with backups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.controller.base_app import BaseApp
from repro.controller.reliability import ReliableSender
from repro.controller.flow_info_db import (
    ROUTE_DROPPED,
    ROUTE_OVERLAY,
    ROUTE_PHYSICAL,
    FlowInfoDatabase,
)
from repro.controller.routing import Router
from repro.controller.stats_service import StatsPoller
from repro.core.config import (
    PRIORITY_PHYSICAL_FLOW,
    VSWITCH_FLOW_TABLE,
    ScotchConfig,
)
from repro.core.failover import HeartbeatMonitor
from repro.core.flow_manager import (
    DROPPED,
    InstallJob,
    InstallScheduler,
    PathInstaller,
    PendingFlow,
)
from repro.core.migration import OVERLAY_COOKIE, ElephantMigrator
from repro.core.monitor import CongestionMonitor
from repro.obs import path as obs_path
from repro.core.overlay import OverlayError, ScotchOverlay
from repro.core.policy import PolicyRegistry
from repro.core.withdrawal import WithdrawalManager
from repro.openflow.messages import FlowMod
from repro.telemetry.service import SamplingStatsService

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.messages import EchoReply, FlowStatsReply, PacketIn


class ScotchApp(BaseApp):
    """Scotch overlay management as a controller application."""

    def __init__(
        self,
        overlay: ScotchOverlay,
        config: Optional[ScotchConfig] = None,
        policy: Optional[PolicyRegistry] = None,
        group_key=None,
    ):
        super().__init__()
        self.overlay = overlay
        self.config = config or overlay.config
        self._policy = policy
        #: Optional fair-sharing grouping override (§5.2): a callable
        #: PendingFlow -> hashable.  None = per ingress port.
        self.group_key = group_key
        # Populated in start().
        self.router: Optional[Router] = None
        self.flow_db = FlowInfoDatabase()
        self.schedulers: Dict[str, InstallScheduler] = {}
        self.installer: Optional[PathInstaller] = None
        self.monitor: Optional[CongestionMonitor] = None
        self.migrator: Optional[ElephantMigrator] = None
        self.withdrawal: Optional[WithdrawalManager] = None
        self.heartbeat: Optional[HeartbeatMonitor] = None
        #: The flow-measurement service (mode ``config.stats_mode``);
        #: ``stats_poller`` stays the underlying StatsPoller in
        #: poll/hybrid modes (None in sample/off modes).
        self.stats_service: Optional[SamplingStatsService] = None
        self.stats_poller: Optional[StatsPoller] = None
        self.reliable: Optional[ReliableSender] = None
        self.groups_installed: Set[str] = set()
        # Counters.
        self.duplicate_packet_ins = 0
        self.unroutable = 0
        self.unattributed_packet_ins = 0
        self.activations = 0
        self.flows_retired = 0
        self.tcam_diversions = 0
        self.resyncs = 0
        self.degraded_activations = 0
        #: Per-switch deque of predicted rule-expiry times — the
        #: controller's own install history, used to estimate flow-table
        #: occupancy (§3.3 TCAM mitigation) without probing by failure.
        self._tcam_expiries: Dict[str, object] = {}
        #: Per-switch static rule baseline (offline config + activation).
        self._tcam_static: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._obs = self.sim.obs
        self.router = Router(self.network)
        if self._policy is None:
            self._policy = PolicyRegistry(self.network, self.overlay)
        self.policy = self._policy
        self.installer = PathInstaller(self.controller, self.schedulers)
        self.monitor = CongestionMonitor(
            self.sim,
            self.config,
            self._on_congested,
            self._on_cleared,
            pressure_check=self._tcam_pressure,
        )
        for switch_name in self.overlay.assignment:
            self._add_managed_switch(switch_name)
        self.migrator = ElephantMigrator(
            self.sim,
            self.controller,
            self.router,
            self.policy,
            self.flow_db,
            self.schedulers,
            self.installer,
            self.config,
        )
        self.withdrawal = WithdrawalManager(
            self.sim, self.overlay, self.flow_db, self.schedulers, self.config
        )
        if self.config.reliable_installs:
            self.reliable = ReliableSender(self.sim, self.controller, self.config)
        self.heartbeat = HeartbeatMonitor(
            self.sim, self.controller, self.overlay, self.config,
            self.groups_installed, reliable=self.reliable,
        )
        self.stats_service = SamplingStatsService(
            self.controller,
            self.network,
            targets=lambda: [v for v in self.overlay.mesh if v not in self.overlay.dead],
            config=self.config,
        )
        self.stats_poller = self.stats_service.poller
        self.monitor.start()
        self.heartbeat.start()
        self.stats_service.start()
        self.sim.schedule(self._DB_PRUNE_INTERVAL, self._prune_flow_db, daemon=True)

    #: How often dropped-flow records are purged from the Flow Info
    #: Database (live flows are retired by FlowRemoved instead).
    _DB_PRUNE_INTERVAL = 10.0

    #: Max packets held per undecided flow (the controller's buffer pool
    #: is finite, like a switch's packet buffer).
    _HELD_PACKETS_CAP = 20

    def _flush_held(self, info) -> None:
        """Send the packets buffered during the decision wait along the
        just-chosen path."""
        if info.reinject is None or not info.held_packets:
            info.held_packets.clear()
            return
        dpid, actions = info.reinject
        for packet in info.held_packets:
            # Mark them: these delivered-late packets are setup-phase
            # traffic, not established-flow samples (Fig. 14 filters).
            packet.metadata["reinjected"] = True
            self.controller.packet_out(dpid, packet, list(actions))
        info.held_packets.clear()

    def _prune_flow_db(self) -> None:
        horizon = self.sim.now - 2 * self.config.flow_idle_timeout
        stale = [
            info.key
            for info in self.flow_db._flows.values()
            if info.route == ROUTE_DROPPED and info.first_seen < horizon
        ]
        for key in stale:
            self.flow_db.forget(key)
        self.sim.schedule(self._DB_PRUNE_INTERVAL, self._prune_flow_db, daemon=True)

    def _add_managed_switch(self, switch_name: str) -> None:
        switch = self.network[switch_name]
        # Static baseline of the main table (offline tunnel/delivery
        # rules the controller configured) plus room for the activation
        # rule set — counted against TCAM capacity alongside the dynamic
        # per-flow installs.
        self._tcam_static[switch_name] = (
            len(switch.datapath.table(0)) + len(switch.ports) + 2
        )
        rate = self.config.install_rate or switch.profile.install_lossless_rate
        self.schedulers[switch_name] = InstallScheduler(
            self.sim,
            self.controller,
            switch_name,
            rate,
            self.config,
            on_admit=self._admit_physical,
            on_overlay=self._route_overlay,
            group_key=self.group_key,
        )
        self.monitor.watch(switch_name, switch.profile)

    # ------------------------------------------------------------------
    # Packet-In intake
    # ------------------------------------------------------------------
    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        packet = message.packet
        if packet is None:
            return
        attribution = self.overlay.attribute_packet_in(dpid, message)
        if attribution is not None:
            origin, ingress_port = attribution
            obs_path.attribute(self._obs, packet, origin, ingress_port)
            self._obs.metrics.counter(f"overlay.relay.{dpid}").inc()
            self._intake(origin, ingress_port, packet, entry_vswitch=dpid)
        elif dpid in self.schedulers:
            self._intake(dpid, message.in_port, packet, entry_vswitch=None)
        elif dpid in self.controller.datapaths and dpid in self.network:
            # A switch outside the managed set — typically a host vSwitch
            # seeing a host-originated (e.g. reverse/ACK) flow, or a mesh
            # vSwitch transient.  Give it a scheduler lazily and handle
            # the flow like any other; duplicates of known flows get
            # re-injected along their existing path.
            self.unattributed_packet_ins += 1
            self._add_managed_switch(dpid)
            self._intake(dpid, message.in_port, packet, entry_vswitch=None)
        else:
            self.unattributed_packet_ins += 1

    def _intake(self, first_hop: str, ingress_port: int, packet, entry_vswitch: Optional[str]) -> None:
        # The monitor counts Packet-In *messages* (§4.2), so duplicates —
        # later packets of a flow whose rules are not in yet — count too:
        # they are control-path load exactly like first packets.
        self.monitor.observe_new_flow(first_hop)
        key = packet.flow_key
        info = self.flow_db.get(key)
        if info is not None:
            # A later packet of a known flow, punted while its rules are
            # still settling: re-inject it along the flow's chosen path
            # (what any reactive controller's Packet-Out does), or hold
            # it at the controller (the buffer_id role) until the
            # routing decision exists.  Setup races must not cost packets.
            self.duplicate_packet_ins += 1
            if info.reinject is not None:
                dpid, actions = info.reinject
                packet.metadata["reinjected"] = True
                self.controller.packet_out(dpid, packet, list(actions))
            elif len(info.held_packets) < self._HELD_PACKETS_CAP:
                info.held_packets.append(packet)
            return
        info = self.flow_db.record(
            key, first_hop, ingress_port, self.sim.now, entry_vswitch=entry_vswitch
        )
        info.middlebox_chain = self.policy.chain_for(key)
        pending = PendingFlow(
            key=key,
            first_hop=first_hop,
            ingress_port=ingress_port,
            packet=packet,
            entry_vswitch=entry_vswitch,
        )
        # The decision comes out of the Fig. 7 queues at a later event;
        # keep the control-path trace open until then.
        obs_path.defer(packet)
        if self.schedulers[first_hop].submit_new_flow(pending) == DROPPED:
            self.flow_db.set_route(key, ROUTE_DROPPED)
            obs_path.decision(self._obs, packet, route="dropped")

    def _decision(self, pending: PendingFlow, route: str) -> None:
        """Close the packet's control-path trace with its routing fate."""
        if pending.packet is not None:
            obs_path.decision(self._obs, pending.packet, route=route)

    # ------------------------------------------------------------------
    # Admission to the physical network (rate-R service)
    # ------------------------------------------------------------------
    def _admit_physical(self, pending: PendingFlow) -> None:
        key = pending.key
        info = self.flow_db.get(key)
        host = self.router.host_for(key.dst_ip)
        if host is None:
            self.unroutable += 1
            self.flow_db.set_route(key, ROUTE_DROPPED)
            self._decision(pending, "dropped")
            return
        try:
            path = self.policy.physical_path(pending.first_hop, host.name, info.middlebox_chain)
        except Exception:
            self.unroutable += 1
            self.flow_db.set_route(key, ROUTE_DROPPED)
            self._decision(pending, "dropped")
            return
        # §3.3 TCAM bottleneck: never install onto a switch whose table
        # is (predicted or observed) full — route the flow over the
        # overlay instead, where it needs no per-flow physical state.
        # Prediction uses the controller's own install history + rule
        # timeouts; the TABLE_FULL error rate is the backstop for
        # anything the estimate misses.
        tcam_floor = self.config.table_full_rate_threshold / 2
        saturated = any(
            node in self.schedulers
            and (
                self.monitor.table_full_rate(node) >= tcam_floor
                or self._tcam_saturated(node)
            )
            for node in path
        )
        if saturated:
            self.tcam_diversions += 1
            self.monitor.force_congested(pending.first_hop)
            self._route_overlay(pending)
            return
        # §5.3's control-plane check, applied to admissions: when any
        # switch on the path already has a deep install backlog, adding
        # this flow's rules would stretch every queued install further —
        # route it over the overlay instead (possible whenever the
        # first hop's defaults are active, i.e. its packets reach the
        # overlay data path).
        if pending.first_hop in self.overlay.active and any(
            node in self.schedulers
            and self.schedulers[node].backlog() > self.config.migration_backlog_limit
            for node in path
        ):
            self._route_overlay(pending)
            return
        rules = self.router.rules_for_path(path, key)
        if not rules:
            # Destination is local to the first hop with no switch hop —
            # nothing to install.
            self.flow_db.set_route(key, ROUTE_PHYSICAL)
            self._decision(pending, "physical")
            return

        for rule in rules:
            self._note_install(rule.dpid)
        # Make-before-break (§5.3): downstream rules first, through their
        # switches' admitted queues; the first-hop rule goes out last
        # (charged to this service slot — each served ingress item is
        # exactly one rule installation at this switch), and only then
        # is the buffered first packet forwarded.
        first_hop_rule = rules[-1]

        def finish() -> None:
            self.controller.flow_mod(
                first_hop_rule.dpid,
                first_hop_rule.match,
                PRIORITY_PHYSICAL_FLOW,
                first_hop_rule.actions,
                idle_timeout=self.config.flow_idle_timeout,
            )
            self.schedulers[pending.first_hop].mods_sent += 1
            if pending.packet is not None:
                self.controller.packet_out(
                    first_hop_rule.dpid,
                    pending.packet,
                    [first_hop_rule.actions[0]],
                    in_port=pending.ingress_port,
                )
            flow_info = self.flow_db.get(key)
            if flow_info is not None:
                flow_info.reinject = (first_hop_rule.dpid, [first_hop_rule.actions[0]])
                self._flush_held(flow_info)

        downstream = rules[:-1]
        if downstream:
            jobs = [
                InstallJob(
                    rule.dpid,
                    FlowMod(
                        match=rule.match,
                        priority=PRIORITY_PHYSICAL_FLOW,
                        actions=rule.actions,
                        idle_timeout=self.config.flow_idle_timeout,
                    ),
                )
                for rule in downstream
            ]
            self.installer.install(jobs, on_complete=finish)
        else:
            finish()
        self.flow_db.set_route(key, ROUTE_PHYSICAL)
        self._decision(pending, "physical")

    # ------------------------------------------------------------------
    # Overlay routing (over-threshold drain)
    # ------------------------------------------------------------------
    def _route_overlay(self, pending: PendingFlow) -> None:
        key = pending.key
        info = self.flow_db.get(key)
        host = self.router.host_for(key.dst_ip)
        if host is None:
            self.unroutable += 1
            self.flow_db.set_route(key, ROUTE_DROPPED)
            self._decision(pending, "dropped")
            return
        entry = pending.entry_vswitch
        if entry is None or entry in self.overlay.dead:
            entry = self._hash_entry_vswitch(pending.first_hop, key)
            if entry is None:
                self.flow_db.set_route(key, ROUTE_DROPPED)
                self._decision(pending, "dropped")
                return
        try:
            rules = self.policy.overlay_route(key, entry, host.name, info.middlebox_chain)
        except Exception:
            self.unroutable += 1
            self.flow_db.set_route(key, ROUTE_DROPPED)
            self._decision(pending, "dropped")
            return
        # vSwitch installs are cheap: send directly, last hop first.
        for rule in rules:
            self.controller.flow_mod(
                rule.dpid,
                rule.match,
                rule.priority,
                rule.actions,
                table_id=VSWITCH_FLOW_TABLE,
                idle_timeout=self.config.flow_idle_timeout,
                cookie=OVERLAY_COOKIE,
            )
            info.overlay_sites.append((rule.dpid, rule.match, rule.priority))
        # Forward the buffered first packet from the entry vSwitch.
        entry_rule = rules[-1]
        if pending.packet is not None:
            self.controller.packet_out(entry_rule.dpid, pending.packet, list(entry_rule.actions))
        info.entry_vswitch = entry
        info.reinject = (entry_rule.dpid, list(entry_rule.actions))
        self._flush_held(info)
        self.flow_db.set_route(key, ROUTE_OVERLAY)
        self._decision(pending, "overlay")

    # ------------------------------------------------------------------
    # TCAM occupancy prediction (§3.3 mitigation)
    # ------------------------------------------------------------------
    def _note_install(self, dpid: str) -> None:
        """Record one per-flow rule headed for ``dpid`` (it will occupy
        the table for roughly the idle timeout)."""
        from collections import deque

        expiries = self._tcam_expiries.get(dpid)
        if expiries is None:
            expiries = self._tcam_expiries[dpid] = deque()
        expiries.append(self.sim.now + self.config.flow_idle_timeout)

    def estimated_occupancy(self, dpid: str) -> int:
        """Rules the controller believes are resident at ``dpid``."""
        expiries = self._tcam_expiries.get(dpid)
        if not expiries:
            return 0
        now = self.sim.now
        while expiries and expiries[0] <= now:
            expiries.popleft()
        return len(expiries)

    def _tcam_saturated(self, dpid: str) -> bool:
        capacity = self.network[dpid].profile.tcam_capacity
        if capacity is None:
            return False
        resident = self.estimated_occupancy(dpid) + self._tcam_static.get(dpid, 0)
        return resident >= self.config.tcam_headroom_fraction * capacity

    def _tcam_pressure(self, dpid: str) -> bool:
        """Would withdrawing re-saturate the table?  True while the
        observed new-flow rate times the rule lifetime exceeds the
        switch's usable capacity — while mitigated, saturation itself is
        invisible (flows ride the overlay), so pressure must be
        predicted from offered load."""
        capacity = self.network[dpid].profile.tcam_capacity
        if capacity is None:
            return False
        usable = self.config.tcam_headroom_fraction * capacity - self._tcam_static.get(dpid, 0)
        return self.monitor.rate(dpid) * self.config.flow_idle_timeout >= usable

    def _hash_entry_vswitch(self, switch_name: str, key) -> Optional[str]:
        """The vSwitch the switch's select group will hash this flow to —
        computed with the same flow hash the group table uses, so the
        controller's rules land where the data plane sends the packets."""
        import zlib

        serving = self.overlay.live_assignment(switch_name)
        if not serving:
            return None
        switch = self.network[switch_name]
        token = f"{switch.hash_seed}|{key}"
        return serving[zlib.crc32(token.encode("utf-8")) % len(serving)]

    # ------------------------------------------------------------------
    # Activation / withdrawal
    # ------------------------------------------------------------------
    def _on_congested(self, dpid: str) -> None:
        if dpid not in self.overlay.assignment:
            # A lazily-managed switch (e.g. a host vSwitch) has no
            # overlay tunnels to activate; its own agent capacity is all
            # there is.  (vSwitch agents are the overlay's capacity pool
            # — congestion there means the pool itself is the limit.)
            return
        self.activations += 1
        self.overlay.active.add(dpid)
        self.groups_installed.add(dpid)
        self.schedulers[dpid].set_overlay_enabled(True)
        self._send_activation(dpid, resends=self.config.activation_resends)

    def _send_activation(self, dpid: str, resends: int) -> None:
        if dpid not in self.overlay.active:
            return  # withdrawn in the meantime
        try:
            group, mods = self.overlay.activation_messages(dpid)
        except OverlayError:
            # Every candidate vSwitch is (believed) dead — e.g. a resync
            # racing the first post-outage echo round.  Degrade: keep the
            # switch's existing rules; the recovery-driven group refresh
            # re-establishes state once echoes resume.
            self.degraded_activations += 1
            return
        if self.reliable is not None:
            # Barrier-acked, keyed: a re-send (or a failover-era refresh)
            # supersedes a still-retrying older batch, so the switch
            # converges on the newest rule set under channel faults.
            self.reliable.send(dpid, [group] + mods, key=("activation", dpid))
        else:
            handle = self.controller.datapaths[dpid]
            handle.send(group)
            for mod in mods:
                handle.send(mod)
        if resends > 0:
            self.sim.schedule(
                self.config.activation_resend_gap, self._send_activation, dpid, resends - 1
            )

    def _on_cleared(self, dpid: str) -> None:
        self.withdrawal.withdraw(dpid)

    # ------------------------------------------------------------------
    # Other controller events
    # ------------------------------------------------------------------
    def stats_reply(self, dpid: str, message: "FlowStatsReply") -> None:
        self.migrator.handle_stats(dpid, message)

    def sample_report(self, dpid: str, message) -> None:
        if self.stats_service is not None:
            self.stats_service.handle_sample_report(dpid, message)

    def error(self, dpid: str, message) -> None:
        if message.code == "table_full" and dpid in self.schedulers:
            self.monitor.observe_table_full(dpid)

    def flow_removed(self, dpid: str, message) -> None:
        """Retire Flow Info Database state when the flow's defining rule
        idles out: the entry-vSwitch rule for overlay flows, the
        first-hop rule (or withdrawal pin) for physical ones.  Keeps
        controller state bounded over long runs and lets a returning
        five-tuple be handled as a genuinely new flow."""
        match = message.match
        if match is None or not match.has_five_tuple:
            return
        from repro.net.flow import FlowKey

        key = FlowKey(*match.five_tuple_key())
        info = self.flow_db.get(key)
        if info is None:
            return
        if dpid == info.first_hop_switch or dpid == info.entry_vswitch:
            self.flow_db.forget(key)
            self.flows_retired += 1

    def echo_reply(self, dpid: str, message: "EchoReply") -> None:
        self.heartbeat.echo_reply(dpid, message)

    def barrier_reply(self, dpid: str, message) -> None:
        if self.reliable is not None:
            self.reliable.barrier_reply(dpid, message)

    # ------------------------------------------------------------------
    # Self-healing (docs/robustness.md)
    # ------------------------------------------------------------------
    def resync(self) -> None:
        """Re-establish controller-owned switch state after an outage —
        what a standby controller does on takeover (its replicated view
        of the overlay is this process's own state).  Restarts liveness
        tracking from a clean slate (stale miss counts from echoes the
        standby never sent must not declare vSwitches dead) and re-pushes
        the idempotent overlay rule sets."""
        self.resyncs += 1
        tracer = self._obs.tracer
        if tracer.enabled:
            tracer.instant("controller.resync", track="failover")
        if self.heartbeat is not None:
            self.heartbeat.stop()
            self.heartbeat.start()
        if self.reliable is not None:
            # A pre-outage batch still retrying (e.g. a failover GroupMod
            # whose barrier ack never came back) must not land *after*
            # the fresh pushes below and resurrect a stale bucket set.
            # The re-pushes re-claim every key that matters with current
            # state, so cancel the whole in-flight keyed set first.
            self.reliable.supersede_all()
        for dpid in sorted(self.groups_installed):
            if dpid not in self.controller.datapaths:
                continue
            if dpid in self.overlay.active:
                self._send_activation(dpid, resends=0)
            else:
                # Withdrawn switches keep their group (see overlay
                # withdrawal_messages); refresh its buckets in case the
                # bucket set moved while the controller was dark.
                self.heartbeat._refresh_groups([dpid])
