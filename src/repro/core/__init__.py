"""Scotch: the paper's contribution.

The pieces map 1:1 onto the paper's design sections:

* :mod:`repro.core.config` — every tunable in one dataclass.
* :mod:`repro.core.overlay` — the vSwitch mesh, tunnels, activation
  (§4.1, §5.1) and the label registries that let the controller recover
  the original (switch, ingress port) from overlay Packet-Ins (§5.2).
* :mod:`repro.core.monitor` — Packet-In-rate congestion detection
  (§4.2) and the withdrawal condition (§5.5).
* :mod:`repro.core.flow_manager` — the controller-side queueing system
  of Fig. 7: per-ingress-port queues served round-robin at rate R,
  overlay and dropping thresholds, and the admitted > migration >
  ingress priority order (§5.2, §5.3).
* :mod:`repro.core.migration` — large-flow detection via flow-stats and
  make-before-break migration to physical paths (§5.3).
* :mod:`repro.core.policy` — middlebox-consistent routing (§5.4, Fig. 8).
* :mod:`repro.core.withdrawal` — the three-step overlay withdrawal (§5.5).
* :mod:`repro.core.failover` — heartbeats and bucket replacement (§5.6).
* :mod:`repro.core.app` — the ScotchApp controller application wiring it
  all together.
* :mod:`repro.core.baselines` — the comparison schemes: §1's proactive
  pre-installation, §4's dedicated-port alternative, plain drop policing.
* :mod:`repro.core.security` — the §5.2 security-tool integration:
  attack detection/diagnosis (and optional data-plane mitigation) on
  top of Scotch's preserved flow visibility.
"""

from repro.core.app import ScotchApp
from repro.core.baselines import DedicatedPortApp, DropPolicingApp, ProactiveApp
from repro.core.config import ScotchConfig
from repro.core.monitor import CongestionMonitor
from repro.core.overlay import ScotchOverlay
from repro.core.policy import PolicyRegistry
from repro.core.security import AttackReport, SecurityApp

__all__ = [
    "AttackReport",
    "CongestionMonitor",
    "DedicatedPortApp",
    "DropPolicingApp",
    "PolicyRegistry",
    "ProactiveApp",
    "ScotchApp",
    "ScotchConfig",
    "ScotchOverlay",
    "SecurityApp",
]
