"""Baseline schemes Scotch is compared against.

* :class:`DropPolicingApp` — reactive forwarding with the controller-side
  rate-R install budget and ingress-port fair queueing, but **no
  overlay**: the over-threshold excess is simply dropped.  Isolates the
  value of the queueing discipline from the value of the overlay.
* :class:`DedicatedPortApp` — §4's strawman: when congested, the switch
  deflects table misses out one data-plane port to a collector that
  relays them to the controller.  Packet-Ins no longer die at the OFA,
  but flows still need physical rules installed at rate R, and the
  original ingress port is lost (no per-port fairness) — "using a
  dedicated physical port does not fully solve the problem".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.controller.base_app import BaseApp
from repro.controller.flow_info_db import (
    ROUTE_DROPPED,
    ROUTE_PHYSICAL,
    FlowInfoDatabase,
)
from repro.controller.routing import Router
from repro.core.config import (
    MAIN_TABLE,
    PRIORITY_PHYSICAL_FLOW,
    PRIORITY_SCOTCH_DEFAULT,
    ScotchConfig,
)
from repro.core.flow_manager import DROPPED, InstallJob, InstallScheduler, PathInstaller, PendingFlow
from repro.core.monitor import CongestionMonitor
from repro.openflow.messages import DELETE, FlowMod
from repro.switch.actions import Output
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.messages import PacketIn


class _RateLimitedReactiveApp(BaseApp):
    """Shared core: Packet-In intake -> per-switch scheduler -> physical
    install at rate R.  Subclasses decide what happens to the excess."""

    def __init__(self, managed_switches, config: Optional[ScotchConfig] = None):
        super().__init__()
        self.managed_switches = list(managed_switches)
        self.config = config or ScotchConfig()
        self.flow_db = FlowInfoDatabase()
        self.schedulers: Dict[str, InstallScheduler] = {}
        self.router: Optional[Router] = None
        self.installer: Optional[PathInstaller] = None
        self.duplicate_packet_ins = 0
        self.unroutable = 0

    def start(self) -> None:
        self.router = Router(self.network)
        self.installer = PathInstaller(self.controller, self.schedulers)
        for name in self.managed_switches:
            switch = self.network[name]
            rate = self.config.install_rate or switch.profile.install_lossless_rate
            self.schedulers[name] = InstallScheduler(
                self.sim,
                self.controller,
                name,
                rate,
                self.config,
                on_admit=self._admit_physical,
                on_overlay=self._handle_excess,
            )

    # -- intake -----------------------------------------------------------
    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        packet = message.packet
        if packet is None:
            return
        origin, port = self.attribute(dpid, message)
        if origin is None:
            return
        key = packet.flow_key
        if key in self.flow_db:
            self.duplicate_packet_ins += 1
            return
        self.flow_db.record(key, origin, port, self.sim.now)
        pending = PendingFlow(key=key, first_hop=origin, ingress_port=port, packet=packet)
        if self.schedulers[origin].submit_new_flow(pending) == DROPPED:
            self.flow_db.set_route(key, ROUTE_DROPPED)

    def attribute(self, dpid: str, message: "PacketIn"):
        """(origin switch, ingress port) for a Packet-In, or (None, _)."""
        if dpid in self.schedulers:
            return dpid, message.in_port
        return None, 0

    # -- admission ---------------------------------------------------------
    def _admit_physical(self, pending: PendingFlow) -> None:
        key = pending.key
        host = self.router.host_for(key.dst_ip)
        path = self.router.path_to(pending.first_hop, key.dst_ip) if host else None
        if path is None:
            self.unroutable += 1
            self.flow_db.set_route(key, ROUTE_DROPPED)
            return
        rules = self.router.rules_for_path(path, key)
        if not rules:
            self.flow_db.set_route(key, ROUTE_PHYSICAL)
            return
        # Make-before-break: downstream first, first-hop rule last, then
        # the buffered packet (same ordering as the Scotch app).
        first_hop_rule = rules[-1]

        def finish() -> None:
            self.controller.flow_mod(
                first_hop_rule.dpid,
                first_hop_rule.match,
                PRIORITY_PHYSICAL_FLOW,
                first_hop_rule.actions,
                idle_timeout=self.config.flow_idle_timeout,
            )
            if pending.packet is not None:
                self.controller.packet_out(
                    first_hop_rule.dpid,
                    pending.packet,
                    [first_hop_rule.actions[0]],
                    in_port=pending.ingress_port,
                )

        downstream = rules[:-1]
        if downstream:
            self.installer.install(
                [
                    InstallJob(
                        rule.dpid,
                        FlowMod(
                            match=rule.match,
                            priority=PRIORITY_PHYSICAL_FLOW,
                            actions=rule.actions,
                            idle_timeout=self.config.flow_idle_timeout,
                        ),
                    )
                    for rule in downstream
                ],
                on_complete=finish,
            )
        else:
            finish()
        self.flow_db.set_route(key, ROUTE_PHYSICAL)

    def _handle_excess(self, pending: PendingFlow) -> None:
        raise NotImplementedError


class ProactiveApp(BaseApp):
    """§1's other alternative: "the load on the control path can be
    reduced by limiting reactive flows and pre-installing rules for all
    expected traffic.  However, this comes at the expense of fine-grained
    policy control, visibility, and flexibility."

    The operator pre-installs one coarse destination rule per host at
    every switch (offline, like tunnel configuration).  No flow ever
    reaches the controller: floods cannot hurt the control path — and
    the controller is blind (``flows_observed`` stays 0), which is
    exactly the trade-off Scotch avoids.
    """

    def __init__(self, managed_switches):
        super().__init__()
        self.managed_switches = list(managed_switches)
        self.flows_observed = 0
        self.rules_preinstalled = 0

    def start(self) -> None:
        from repro.controller.routing import Router
        from repro.net.host import Host
        from repro.switch.switch import OpenFlowSwitch

        router = Router(self.network)
        hosts = [n for n in self.network.nodes.values() if isinstance(n, Host)]
        for name in self.managed_switches:
            switch = self.network[name]
            for host in hosts:
                path = router.path_to(name, host.ip)
                if path is None or len(path) < 2:
                    continue
                out_port = self.network.port_between(name, path[1])
                switch.install_static(
                    Match(dst_ip=host.ip),
                    priority=PRIORITY_PHYSICAL_FLOW,
                    actions=[Output(out_port)],
                )
                self.rules_preinstalled += 1

    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        self.flows_observed += 1  # should never happen in pure proactive mode


class DropPolicingApp(_RateLimitedReactiveApp):
    """Fair queueing + rate-R installs; over-threshold flows are dropped."""

    def __init__(self, managed_switches, config: Optional[ScotchConfig] = None):
        super().__init__(managed_switches, config)
        self.policed_drops = 0

    def start(self) -> None:
        super().start()
        # Enable the drain so the overlay threshold acts as a policer.
        for scheduler in self.schedulers.values():
            scheduler.set_overlay_enabled(True)

    def _handle_excess(self, pending: PendingFlow) -> None:
        self.policed_drops += 1
        self.flow_db.set_route(pending.key, ROUTE_DROPPED)


class DedicatedPortApp(_RateLimitedReactiveApp):
    """§4's dedicated-port deflection baseline.

    ``collectors`` maps each managed physical switch to the collector
    vSwitch wired to its dedicated port.  On congestion the switch's
    table misses are deflected (default rules) out that port; the
    collector punts them to the controller with its own fast agent.
    """

    def __init__(
        self,
        managed_switches,
        collectors: Dict[str, str],
        config: Optional[ScotchConfig] = None,
    ):
        super().__init__(managed_switches, config)
        self.collectors = dict(collectors)
        self._origin_of_collector = {v: k for k, v in collectors.items()}
        self.monitor: Optional[CongestionMonitor] = None
        self.deflections_active: set = set()

    def start(self) -> None:
        super().start()
        self.monitor = CongestionMonitor(
            self.sim, self.config, self._activate_deflection, self._deactivate_deflection
        )
        for name in self.managed_switches:
            self.monitor.watch(name, self.network[name].profile)
        self.monitor.start()

    def attribute(self, dpid: str, message: "PacketIn"):
        origin = self._origin_of_collector.get(dpid)
        if origin is not None:
            # The deflected packet lost its ingress-port context: all
            # flows share one queue (port 0) — no per-port fairness.
            return origin, 0
        if dpid in self.schedulers:
            return dpid, message.in_port
        return None, 0

    def packet_in(self, dpid: str, message: "PacketIn") -> None:
        origin, _ = self.attribute(dpid, message)
        if origin is not None and message.packet is not None:
            self.monitor.observe_new_flow(origin)
        super().packet_in(dpid, message)

    def _handle_excess(self, pending: PendingFlow) -> None:
        # No overlay to absorb the excess; it waits its turn or gets
        # dropped by the threshold — keep it queued by re-submitting is
        # pointless, so it is dropped (the paper's point: the rule
        # insertion rate R is the hard ceiling).
        self.flow_db.set_route(pending.key, ROUTE_DROPPED)

    # -- deflection rules ---------------------------------------------------
    def _deflection_mods(self, switch_name: str, command: str):
        switch = self.network[switch_name]
        out_port = self.network.port_between(switch_name, self.collectors[switch_name])
        for port_no in switch.ports:
            yield FlowMod(
                match=Match(in_port=port_no),
                priority=PRIORITY_SCOTCH_DEFAULT,
                actions=[Output(out_port)],
                table_id=MAIN_TABLE,
                command=command,
            )

    def _activate_deflection(self, switch_name: str) -> None:
        self.deflections_active.add(switch_name)
        handle = self.controller.datapaths[switch_name]
        for _ in range(1 + self.config.activation_resends):
            for mod in self._deflection_mods(switch_name, command="add"):
                handle.send(mod)
        self.schedulers[switch_name].set_overlay_enabled(True)

    def _deactivate_deflection(self, switch_name: str) -> None:
        self.deflections_active.discard(switch_name)
        handle = self.controller.datapaths[switch_name]
        for mod in self._deflection_mods(switch_name, command=DELETE):
            handle.send(mod)
        self.schedulers[switch_name].set_overlay_enabled(False)
