"""Middlebox policy consistency (paper §5.4, Fig. 8).

A policy maps flows to an ordered middlebox chain.  Scotch guarantees
that the overlay path and any later physical path traverse the **same
middlebox instances**, because middleboxes are stateful (see
:mod:`repro.net.middlebox`).

Plumbing, configured offline per attached middlebox:

* tunnels from every mesh vSwitch to the middlebox's upstream switch
  S_U, whose static terminal rule decapsulates and outputs straight into
  the middlebox ("the upstream physical switch decapsulates the tunneled
  packet ... so that the middlebox sees the original packet");
* a static *green* rule at the downstream switch S_D matching the
  middlebox-facing ingress port that re-encapsulates everything into a
  tunnel toward the middlebox's **aggregation vSwitch** ("a few
  dedicated vswitches in the mesh that are close to the middleboxes can
  serve as dedicated tunnel aggregation points");
* migrated (red) per-flow rules at S_D carry higher priority, so one
  extra rule per elephant pulls exactly that flow onto the physical
  path — all other flows keep sharing the green rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.core.config import PRIORITY_SCOTCH_DEFAULT
from repro.core.overlay import OverlayError, ScotchOverlay
from repro.switch.actions import Action
from repro.switch.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flow import FlowKey
    from repro.net.topology import Network

#: Priority of the green S_D re-encapsulation rule: above the Scotch
#: per-port defaults (so middlebox output is never re-labelled as a new
#: ingress) but far below red per-flow rules.
PRIORITY_MB_GREEN = PRIORITY_SCOTCH_DEFAULT + 2


@dataclass
class MiddleboxAttachment:
    """How one middlebox hangs off the physical network (Fig. 8)."""

    name: str
    upstream: str  # S_U
    downstream: str  # S_D
    aggregation_vswitch: str
    #: mesh vSwitch name -> its tunnel into S_U (terminating into the
    #: middlebox's port).
    in_tunnels: Dict[str, object] = field(default_factory=dict)
    #: The S_D -> aggregation-vSwitch tunnel (label kept on: the
    #: aggregation vSwitch matches it to tell the post-middlebox leg
    #: apart from a fresh arrival of the same flow).
    out_tunnel: Optional[object] = None


@dataclass
class Policy:
    """A flow predicate plus the middlebox chain it must traverse."""

    name: str
    predicate: Callable[["FlowKey"], bool]
    chain: List[str] = field(default_factory=list)


class PolicyRegistry:
    """Registered policies + middlebox attachments + path computation."""

    def __init__(self, network: "Network", overlay: ScotchOverlay):
        self.network = network
        self.overlay = overlay
        self.policies: List[Policy] = []
        self.attachments: Dict[str, MiddleboxAttachment] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_policy(self, policy: Policy) -> None:
        for middlebox in policy.chain:
            if middlebox not in self.attachments:
                raise OverlayError(f"policy {policy.name!r}: middlebox {middlebox!r} not attached")
        self.policies.append(policy)

    def attach_middlebox(
        self, name: str, upstream: str, downstream: str, aggregation_vswitch: Optional[str] = None
    ) -> MiddleboxAttachment:
        """Register a middlebox between S_U=``upstream`` and
        S_D=``downstream`` and install its static overlay plumbing."""
        if aggregation_vswitch is None:
            if not self.overlay.mesh:
                raise OverlayError("overlay has no mesh vSwitches for aggregation")
            aggregation_vswitch = self.overlay.mesh[0]
        attachment = MiddleboxAttachment(name, upstream, downstream, aggregation_vswitch)
        self.attachments[name] = attachment
        self.network.exclude_from_routing(name)
        self._install_plumbing(attachment)
        return attachment

    def _install_plumbing(self, attachment: MiddleboxAttachment) -> None:
        from repro.switch.actions import Output  # local to avoid cycle at import time

        fabric = self.overlay.fabric
        network = self.network
        mb_port_at_su = network.port_between(attachment.upstream, attachment.name)
        # Mesh vSwitch -> S_U tunnels terminating straight into the middlebox.
        for vswitch in self.overlay.mesh + self.overlay.backups:
            attachment.in_tunnels[vswitch] = fabric.create(
                vswitch,
                attachment.upstream,
                terminal_pops=1,
                terminal_extra_actions=[Output(mb_port_at_su)],
                kind=self.overlay.config.tunnel_kind,
            )
        # S_D -> aggregation vSwitch tunnel (pops=0: the label stays on
        # so the aggregation vSwitch can distinguish the return leg)
        # plus the shared green rule at S_D.
        attachment.out_tunnel = fabric.create(
            attachment.downstream, attachment.aggregation_vswitch, terminal_pops=0
        )
        mb_port_at_sd = network.port_between(attachment.downstream, attachment.name)
        sd_switch = network[attachment.downstream]
        sd_switch.install_static(
            Match(in_port=mb_port_at_sd),
            priority=PRIORITY_MB_GREEN,
            actions=attachment.out_tunnel.entry_actions(network),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def chain_for(self, key: "FlowKey") -> List[str]:
        """Middlebox chain of the first matching policy (empty if none)."""
        for policy in self.policies:
            if policy.predicate(key):
                return list(policy.chain)
        return []

    # ------------------------------------------------------------------
    # Path computation honoring a chain
    # ------------------------------------------------------------------
    def physical_path(self, src_switch: str, dst_node: str, chain: Sequence[str]) -> List[str]:
        """Node path src -> (S_U, mb, S_D)* -> dst over the physical
        network.  Without a chain this is the plain shortest path."""
        if not chain:
            return self.network.shortest_path(src_switch, dst_node)
        path: List[str] = []
        cursor = src_switch
        for middlebox in chain:
            attachment = self.attachments[middlebox]
            segment = self.network.shortest_path(cursor, attachment.upstream)
            path.extend(segment if not path else segment[1:])
            path.extend([middlebox, attachment.downstream])
            cursor = attachment.downstream
        tail = self.network.shortest_path(cursor, dst_node)
        path.extend(tail[1:])
        return path

    def overlay_route(
        self, key: "FlowKey", entry_vswitch: str, dst_host: str, chain: Sequence[str]
    ):
        """Per-flow vSwitch rules for an overlay path through ``chain``,
        last hop first (a list of :class:`~repro.core.overlay.OverlayRule`).

        The flow hops: entry vSwitch -> (tunnel) S_U -> middlebox -> S_D
        -> (green tunnel, label kept) aggregation vSwitch -> ... -> exit
        vSwitch -> delivery.  Only vSwitches need per-flow rules; the
        S_U/S_D legs are the static plumbing installed at attachment
        time.

        The post-middlebox rule at the aggregation vSwitch matches the
        flow *plus* the green tunnel's label at a higher priority —
        necessary because the same vSwitch may also be the flow's entry
        (fresh, label-less arrivals must keep hitting the into-middlebox
        rule, not the onward one).
        """
        from repro.core.overlay import OverlayRule

        if not chain:
            return self.overlay.overlay_route(key, entry_vswitch, dst_host)
        match = Match.for_flow(key)
        rules: List[OverlayRule] = []
        cursor = entry_vswitch
        incoming_label: Optional[int] = None  # label on arrival at `cursor`
        for middlebox in chain:
            attachment = self.attachments[middlebox]
            into_mb = attachment.in_tunnels.get(cursor)
            if into_mb is None:
                raise OverlayError(f"no tunnel {cursor}->{attachment.upstream}")
            rules.append(
                self._leg_rule(cursor, match, incoming_label, into_mb.entry_actions(self.network))
            )
            cursor = attachment.aggregation_vswitch
            incoming_label = attachment.out_tunnel.tunnel_id
        # From the last aggregation vSwitch onward, standard overlay
        # routing — but fold its first (cursor) hop into the
        # label-qualified rule.
        tail = self.overlay.overlay_route(key, cursor, dst_host)
        tail.reverse()  # forward order
        assert tail[0].dpid == cursor
        rules.append(self._leg_rule(cursor, match, incoming_label, tail[0].actions))
        rules.extend(tail[1:])
        rules.reverse()
        return rules

    def _leg_rule(self, dpid: str, match: Match, incoming_label: Optional[int], actions: List[Action]):
        """A per-flow rule for one overlay leg.  When the packet arrives
        still carrying a green-tunnel label, the rule matches that label
        at elevated priority and pops it before forwarding."""
        from repro.core.overlay import OverlayRule
        from repro.core.config import PRIORITY_PHYSICAL_FLOW
        from repro.switch.actions import PopMpls

        if incoming_label is None:
            return OverlayRule(dpid, match, list(actions))
        qualified = Match(mpls_label=incoming_label, **match.fields)
        return OverlayRule(
            dpid, qualified, [PopMpls()] + list(actions), priority=PRIORITY_PHYSICAL_FLOW + 1
        )
