"""OpenFlow protocol messages and the switch<->controller channel."""

from repro.openflow.channel import ControlChannel, LinkImpairments
from repro.openflow.messages import (
    ADD,
    DELETE,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    PacketIn,
    PacketOut,
)

__all__ = [
    "ADD",
    "BarrierReply",
    "BarrierRequest",
    "ControlChannel",
    "DELETE",
    "EchoReply",
    "EchoRequest",
    "FlowMod",
    "FlowStatsEntry",
    "FlowStatsReply",
    "FlowStatsRequest",
    "GroupMod",
    "LinkImpairments",
    "PacketIn",
    "PacketOut",
]
