"""OpenFlow 1.3-subset message types.

These are typed in-memory messages rather than wire encodings — the
paper's bottleneck is the OFA CPU, not the 1 Gb/s management port, so the
channel models latency and the OFA models processing cost.

Per the paper's configuration choice (§4.2) the Packet-In carries the
entire packet ("we configure the vswitch to forward the entire packet to
the controller, so that the controller can have more flexibility").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import
    # cycle (repro.switch.ofa imports this module at runtime).
    from repro.net.flow import FlowKey
    from repro.switch.actions import Action
    from repro.switch.group_table import Bucket
    from repro.switch.match import Match

_xids = itertools.count(1)


def next_xid() -> int:
    return next(_xids)


ADD = "add"
DELETE = "delete"
MODIFY = "modify"


@dataclass
class Message:
    """Base class; ``xid`` pairs requests with replies."""

    xid: int = field(default_factory=next_xid, init=False)


@dataclass
class PacketIn(Message):
    """Switch -> controller: a packet missed the tables (or was punted)."""

    datapath_id: str = ""
    packet: Optional[Packet] = None
    in_port: int = 0
    reason: str = "no_match"
    #: Extra context: ``tunnel_id`` and ``inner_label`` when the packet
    #: arrived at a vSwitch over a Scotch tunnel (paper §5.2).
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FlowMod(Message):
    """Controller -> switch: add/remove a flow rule."""

    match: Optional["Match"] = None
    priority: int = 1
    actions: List["Action"] = field(default_factory=list)
    table_id: int = 0
    command: str = ADD
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: Optional[object] = None
    #: Ask the switch to send FlowRemoved when this rule expires (the
    #: OpenFlow SEND_FLOW_REM flag).  On by default for controller-
    #: installed rules so per-flow state can be retired.
    notify_removal: bool = True


@dataclass
class GroupMod(Message):
    """Controller -> switch: add/modify/remove a group entry."""

    group_id: int = 0
    group_type: str = "select"
    buckets: List[Bucket] = field(default_factory=list)
    command: str = ADD


@dataclass
class PacketOut(Message):
    """Controller -> switch: inject a packet with an explicit action list."""

    packet: Optional[Packet] = None
    actions: List[Action] = field(default_factory=list)
    in_port: int = 0


@dataclass
class FlowStatsRequest(Message):
    """Controller -> switch: dump per-rule counters (§5.3 flow-stats query)."""

    table_id: Optional[int] = None
    match: Optional[Match] = None


@dataclass
class FlowStatsEntry:
    """One rule's counters in a stats reply."""

    match: Match
    priority: int
    table_id: int
    packets: int
    bytes: int
    duration: float
    cookie: Optional[object] = None


@dataclass
class FlowStatsReply(Message):
    datapath_id: str = ""
    entries: List[FlowStatsEntry] = field(default_factory=list)
    request_xid: int = 0


@dataclass
class SampleRecord:
    """Aggregated packet samples for one five-tuple at one vSwitch.

    ``samples`` raw sampled packets (NOT scaled by the sampling period);
    ``sampled_bytes`` the bytes of those sampled packets.  The
    controller-side estimator does the 1-in-N scale-up.
    """

    key: "FlowKey"
    samples: int
    sampled_bytes: int


@dataclass
class SampleReport(Message):
    """vSwitch -> controller: a batch of packet-sample records
    (sFlow/NetFlow-style export, docs/observability.md "Sampled
    telemetry").  Far smaller on the wire than a full flow-stats dump:
    only flows that saw sampled packets this window appear."""

    datapath_id: str = ""
    #: The 1-in-N sampling period the records were taken at.
    period: int = 1
    records: List[SampleRecord] = field(default_factory=list)
    window_start: float = 0.0
    window_end: float = 0.0


# ----------------------------------------------------------------------
# Nominal wire sizes
# ----------------------------------------------------------------------
# Messages here are typed in-memory objects, but the monitoring-cost
# accounting (docs/observability.md "Sampled telemetry") needs a byte
# model for the control channel.  Sizes follow OpenFlow 1.3 framing:
# an 8-byte header, a 16-byte multipart preamble, 56 bytes for a flow
# stats request (preamble + padded match), and ~96 bytes per flow stats
# entry (48-byte fixed part + a five-tuple OXM match rounded up).  A
# sample record is 28 bytes (IPv4 five-tuple + two counters), close to
# a NetFlow v5 record.
OFP_HEADER_BYTES = 8
MULTIPART_BASE_BYTES = 16
FLOW_STATS_REQUEST_BYTES = 56
FLOW_STATS_ENTRY_BYTES = 96
PORT_STATS_ENTRY_BYTES = 40
SAMPLE_RECORD_BYTES = 28


def wire_bytes(message: Message) -> int:
    """Nominal control-channel size of ``message`` in bytes."""
    kind = type(message)
    if kind is FlowStatsRequest:
        return FLOW_STATS_REQUEST_BYTES
    if kind is FlowStatsReply:
        return MULTIPART_BASE_BYTES + FLOW_STATS_ENTRY_BYTES * len(message.entries)
    if kind is SampleReport:
        return MULTIPART_BASE_BYTES + SAMPLE_RECORD_BYTES * len(message.records)
    if kind is PortStatsRequest:
        return MULTIPART_BASE_BYTES + 8
    if kind is PortStatsReply:
        return MULTIPART_BASE_BYTES + PORT_STATS_ENTRY_BYTES * len(message.entries)
    return OFP_HEADER_BYTES


@dataclass
class FlowRemoved(Message):
    """Switch -> controller: a rule expired (idle/hard timeout) or was
    deleted.  Lets the controller retire per-flow state (Flow Info
    Database entries) when the flow itself is gone."""

    datapath_id: str = ""
    match: Optional["Match"] = None
    priority: int = 0
    table_id: int = 0
    reason: str = "idle_timeout"
    packets: int = 0
    bytes: int = 0
    duration: float = 0.0
    cookie: Optional[object] = None


@dataclass
class ErrorMessage(Message):
    """Switch -> controller: a request failed (e.g. OFPET_FLOW_MOD_FAILED
    with OFPFMFC_TABLE_FULL when the TCAM is exhausted, §3.3)."""

    datapath_id: str = ""
    error_type: str = "flow_mod_failed"
    code: str = "table_full"
    failed_xid: int = 0


@dataclass
class PortStatsRequest(Message):
    """Controller -> switch: per-port transmit counters.

    ``port_no`` = None dumps all ports."""

    port_no: Optional[int] = None


@dataclass
class PortStatsEntry:
    port_no: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


@dataclass
class PortStatsReply(Message):
    datapath_id: str = ""
    entries: List["PortStatsEntry"] = field(default_factory=list)
    request_xid: int = 0


@dataclass
class EchoRequest(Message):
    """Heartbeat (paper §5.6: vSwitch failure detection)."""


@dataclass
class EchoReply(Message):
    request_xid: int = 0
    datapath_id: str = ""


@dataclass
class BarrierRequest(Message):
    """Fence: the switch replies only after processing earlier messages."""


@dataclass
class BarrierReply(Message):
    request_xid: int = 0
    datapath_id: str = ""


@dataclass
class RoleMod(Message):
    """Controller -> switch: set the pool member mastering this switch.

    The spirit of OFPT_ROLE_REQUEST with OFPCR_ROLE_MASTER: the elected
    pool leader hands a switch to a member, fenced by a monotonically
    increasing ``generation`` so a delayed RoleMod from a deposed
    leader cannot roll the assignment back (OpenFlow's generation_id
    check).  Stale generations earn an ErrorMessage with code
    ``role_stale``."""

    master_id: str = ""
    generation: int = 0


@dataclass
class RoleStatus(Message):
    """Switch -> controller: the switch's accepted (master, generation).

    Sent in response to an applied RoleMod — the OFPT_ROLE_REPLY — and
    the pool's switch-side ground truth for the single-master
    invariant."""

    request_xid: int = 0
    datapath_id: str = ""
    master_id: str = ""
    generation: int = 0
