"""The switch<->controller control channel.

Models the secure TCP connection over the management port: a fixed
one-way latency in each direction and (by default) loss-free in-order
delivery.  The paper's measurements attribute the control-path
bottleneck entirely to the OFA CPU (§3.3) — the 1 Gb/s management port
never saturates at hundreds of messages/second — so the channel itself
is not rate limited; all rate limiting lives in
:class:`repro.switch.ofa.OpenFlowAgent`.

For robustness experiments (docs/robustness.md) each direction can be
impaired independently with message loss, duplication and latency
jitter via :meth:`ControlChannel.set_impairments`.  Two properties the
chaos layer relies on:

* **Delivery-time checks.**  Connectivity and loss are evaluated when a
  message would *arrive*, not when it was sent, so traffic in flight
  when :meth:`disconnect` fires dies with the link — matching what a
  severed TCP connection does to unacked segments.
* **Determinism.**  Impairment draws come from the channel's own
  :class:`~repro.sim.rng.RngRegistry` substream
  (``channel:<datapath_id>``), created only when impairments are first
  configured.  An unimpaired channel performs no random draws, so runs
  without fault injection are bit-identical to runs where the faults
  machinery was never imported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.openflow.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class LinkImpairments:
    """Per-direction degradation of a control channel.

    ``loss`` and ``duplicate`` are probabilities in [0, 1); ``jitter``
    is the maximum extra one-way latency in seconds (uniformly drawn
    per message, so ordering across messages is no longer guaranteed —
    exactly the reordering a jittery path produces).
    """

    __slots__ = ("loss", "duplicate", "jitter")

    def __init__(self, loss: float = 0.0, duplicate: float = 0.0, jitter: float = 0.0):
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if not 0.0 <= duplicate < 1.0:
            raise ValueError("duplicate must be in [0, 1)")
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        self.loss = loss
        self.duplicate = duplicate
        self.jitter = jitter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LinkImpairments(loss={self.loss}, duplicate={self.duplicate}, "
                f"jitter={self.jitter})")


class ControlChannel:
    """One switch's connection to the controller."""

    def __init__(
        self,
        sim: "Simulator",
        datapath_id: str,
        latency: float = 0.5e-3,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.datapath_id = datapath_id
        self.latency = latency
        self.connected = True
        #: Set by the controller at registration time.
        self.controller_sink: Optional[Callable[[str, Message], None]] = None
        #: Set by the switch's OFA at construction time.
        self.switch_sink: Optional[Callable[[Message], None]] = None
        self.to_controller_count = 0
        self.to_switch_count = 0
        # -- chaos-layer state (inert unless configured) ----------------
        self.impair_to_switch: Optional[LinkImpairments] = None
        self.impair_to_controller: Optional[LinkImpairments] = None
        self.to_switch_dropped = 0
        self.to_controller_dropped = 0
        self.to_switch_duplicated = 0
        self.to_controller_duplicated = 0
        self.disconnects = 0
        self._rng = None  # created lazily on first impairment

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_to_controller(self, message: Message) -> None:
        """Deliver a switch-originated message after one-way latency."""
        if not self.connected:
            self._note_dead("to_controller")
            return
        if self.controller_sink is None:
            return
        self.to_controller_count += 1
        self._transmit(message, self.impair_to_controller,
                       self._deliver_to_controller, "to_controller")

    def send_to_switch(self, message: Message) -> None:
        """Deliver a controller-originated message after one-way latency."""
        if not self.connected:
            self._note_dead("to_switch")
            return
        if self.switch_sink is None:
            return
        self.to_switch_count += 1
        self._transmit(message, self.impair_to_switch,
                       self._deliver_to_switch, "to_switch")

    def _transmit(
        self,
        message: Message,
        impairments: Optional[LinkImpairments],
        deliver: Callable[[Message], None],
        direction: str,
    ) -> None:
        delay = self.latency
        if impairments is not None:
            if impairments.jitter:
                delay += self._rng.uniform(0.0, impairments.jitter)
            if impairments.duplicate and self._rng.random() < impairments.duplicate:
                if direction == "to_switch":
                    self.to_switch_duplicated += 1
                else:
                    self.to_controller_duplicated += 1
                extra = (self._rng.uniform(0.0, impairments.jitter)
                         if impairments.jitter else 0.0)
                self.sim.schedule(self.latency + extra, deliver, message)
        self.sim.schedule(delay, deliver, message)

    # ------------------------------------------------------------------
    # Delivery (fires one latency later; connectivity and loss are
    # evaluated *here*, so in-flight messages die with the link)
    # ------------------------------------------------------------------
    def _deliver_to_switch(self, message: Message) -> None:
        if not self.connected:
            self._note_dead("to_switch")
            return
        if self.switch_sink is None:
            return
        impairments = self.impair_to_switch
        if (impairments is not None and impairments.loss
                and self._rng.random() < impairments.loss):
            self.to_switch_dropped += 1
            self._note_drop("to_switch")
            return
        self.switch_sink(message)

    def _deliver_to_controller(self, message: Message) -> None:
        if not self.connected:
            self._note_dead("to_controller")
            return
        if self.controller_sink is None:
            return
        impairments = self.impair_to_controller
        if (impairments is not None and impairments.loss
                and self._rng.random() < impairments.loss):
            self.to_controller_dropped += 1
            self._note_drop("to_controller")
            return
        self.controller_sink(self.datapath_id, message)

    def _note_drop(self, direction: str) -> None:
        metrics = self.sim.obs.metrics
        if metrics.enabled:
            metrics.counter(f"channel.{self.datapath_id}.{direction}_dropped").inc()

    def _note_dead(self, direction: str) -> None:
        """Metrics-only dead-letter accounting: a message that died
        because the channel was disconnected (distinct from the
        impairment-loss ``_dropped`` counters, which feed the chaos
        report's ``channel_drops``)."""
        metrics = self.sim.obs.metrics
        if metrics.enabled:
            metrics.counter(f"channel.{self.datapath_id}.{direction}_dead").inc()

    # ------------------------------------------------------------------
    # Link state / impairment configuration
    # ------------------------------------------------------------------
    def disconnect(self) -> None:
        """Sever the channel (vSwitch failure §5.6, chaos flaps and
        partitions).  Messages already in flight are dropped at their
        delivery time."""
        if self.connected:
            self.disconnects += 1
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True

    def set_impairments(
        self,
        to_switch: Optional[LinkImpairments] = None,
        to_controller: Optional[LinkImpairments] = None,
    ) -> None:
        """Install (or, with None, clear) per-direction impairments."""
        self.impair_to_switch = to_switch
        self.impair_to_controller = to_controller
        if (to_switch is not None or to_controller is not None) and self._rng is None:
            self._rng = self.sim.rng.stream(f"channel:{self.datapath_id}")
