"""The switch<->controller control channel.

Models the secure TCP connection over the management port: a fixed
one-way latency in each direction and loss-free in-order delivery.  The
paper's measurements attribute the control-path bottleneck entirely to
the OFA CPU (§3.3) — the 1 Gb/s management port never saturates at
hundreds of messages/second — so the channel itself is not rate limited;
all rate limiting lives in :class:`repro.switch.ofa.OpenFlowAgent`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.openflow.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class ControlChannel:
    """One switch's connection to the controller."""

    def __init__(
        self,
        sim: "Simulator",
        datapath_id: str,
        latency: float = 0.5e-3,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.datapath_id = datapath_id
        self.latency = latency
        self.connected = True
        #: Set by the controller at registration time.
        self.controller_sink: Optional[Callable[[str, Message], None]] = None
        #: Set by the switch's OFA at construction time.
        self.switch_sink: Optional[Callable[[Message], None]] = None
        self.to_controller_count = 0
        self.to_switch_count = 0

    def send_to_controller(self, message: Message) -> None:
        """Deliver a switch-originated message after one-way latency."""
        if not self.connected or self.controller_sink is None:
            return
        self.to_controller_count += 1
        self.sim.schedule(self.latency, self.controller_sink, self.datapath_id, message)

    def send_to_switch(self, message: Message) -> None:
        """Deliver a controller-originated message after one-way latency."""
        if not self.connected or self.switch_sink is None:
            return
        self.to_switch_count += 1
        self.sim.schedule(self.latency, self.switch_sink, message)

    def disconnect(self) -> None:
        """Sever the channel (used to simulate vSwitch failure, §5.6)."""
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True
