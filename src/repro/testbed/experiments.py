"""One runner per reproduced figure.

Each function builds the right testbed, drives the paper's workload, and
returns the numbers the figure plots.  The benchmarks print them as the
paper's rows/series; EXPERIMENTS.md records paper-vs-measured.

All runners take a ``seed`` and (where it matters) scaled-down durations
so the unit tests can exercise them quickly; the benchmarks use the
defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.controller.reactive_app import ReactiveForwardingApp
from repro.core.baselines import DedicatedPortApp, DropPolicingApp, ProactiveApp
from repro.core.config import ScotchConfig
from repro.metrics import client_flow_failure_fraction
from repro.metrics.stats import mean, percentile
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.messages import FlowMod
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.profiles import (
    HP_PROCURVE_6600,
    OPEN_VSWITCH,
    PICA8_PRONTO_3780,
    SwitchProfile,
)
from repro.switch.switch import OpenFlowSwitch, VSwitch
from repro.testbed.deployment import Deployment, build_deployment
from repro.testbed.single_switch import SERVER_IP, build_single_switch
from repro.traffic import NewFlowSource, SpoofedFlood
from repro.traffic.sizes import FixedSize, HeavyTailedSizes
from repro.traffic.trace import TraceReplayer, generate_trace

#: The paper's attack-rate sweep (§3.2: 100 to 3800 flows/sec).
FIG3_ATTACK_RATES = (100, 500, 1000, 2000, 3000, 3800)
FIG3_PROFILES = (HP_PROCURVE_6600, PICA8_PRONTO_3780, OPEN_VSWITCH)


# ----------------------------------------------------------------------
# Fig. 3 — control-plane bottleneck under attack
# ----------------------------------------------------------------------
def fig3_point(
    profile: SwitchProfile,
    attack_rate: float,
    client_rate: float = 100.0,
    duration: float = 10.0,
    seed: int = 1,
) -> float:
    """Client flow failure fraction for one (switch, attack rate) point."""
    bed = build_single_switch(profile=profile, seed=seed)
    client = NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=client_rate)
    attack = SpoofedFlood(bed.sim, bed.attacker, SERVER_IP, rate_fps=attack_rate)
    warmup = 1.0
    client.start(at=0.5, stop_at=0.5 + warmup + duration)
    attack.start(at=0.5, stop_at=0.5 + warmup + duration)
    bed.sim.run(until=0.5 + warmup + duration + 2.0)
    return client_flow_failure_fraction(
        bed.client.sent_tap, bed.server.recv_tap, start=0.5 + warmup, end=0.5 + warmup + duration
    )


def fig3_series(
    attack_rates: Sequence[float] = FIG3_ATTACK_RATES,
    profiles: Sequence[SwitchProfile] = FIG3_PROFILES,
    duration: float = 10.0,
    seed: int = 1,
) -> Dict[str, List[Tuple[float, float]]]:
    """{switch name: [(attack rate, failure fraction)]} — the Fig. 3 curves."""
    return {
        profile.name: [
            (rate, fig3_point(profile, rate, duration=duration, seed=seed))
            for rate in attack_rates
        ]
        for profile in profiles
    }


# ----------------------------------------------------------------------
# Fig. 4 — control-path profiling (Packet-In is the bottleneck)
# ----------------------------------------------------------------------
@dataclass
class Fig4Point:
    new_flow_rate: float
    packet_in_rate: float
    rule_insertion_rate: float
    successful_flow_rate: float


def fig4_point(
    new_flow_rate: float,
    profile: SwitchProfile = PICA8_PRONTO_3780,
    duration: float = 10.0,
    seed: int = 1,
) -> Fig4Point:
    """Packet-In rate, rule-insertion rate and successful flow rate
    observed while the client generates ``new_flow_rate`` flows/sec
    (attacker off — §3.3's methodology)."""
    bed = build_single_switch(profile=profile, seed=seed)
    client = NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=new_flow_rate)
    start, end = 1.0, 1.0 + duration
    client.start(at=start, stop_at=end)

    pktin_before = bed.switch.ofa.packet_ins_sent
    installs_before = bed.switch.ofa.installs_succeeded
    bed.sim.run(until=end + 2.0)
    packet_in_rate = (bed.switch.ofa.packet_ins_sent - pktin_before) / duration
    insertion_rate = (bed.switch.ofa.installs_succeeded - installs_before) / duration
    delivered = len(bed.server.recv_tap.received_in(start, end))
    return Fig4Point(new_flow_rate, packet_in_rate, insertion_rate, delivered / duration)


# ----------------------------------------------------------------------
# Fig. 9 — maximum flow-rule insertion rate
# ----------------------------------------------------------------------
def fig9_point(
    attempted_rate: float,
    profile: SwitchProfile = PICA8_PRONTO_3780,
    duration: float = 10.0,
    rule_timeout: float = 10.0,
    seed: int = 1,
) -> float:
    """Successful insertion rate when the controller attempts
    ``attempted_rate`` rules/sec (no data traffic; §6.1's methodology:
    distinct rules with a 10 s timeout, success measured from the
    table)."""
    sim = Simulator(seed=seed)
    network = Network(sim)
    switch = network.add(OpenFlowSwitch(sim, "sw1", profile))
    rng = sim.rng.stream("fig9")

    installed_before = switch.ofa.installs_succeeded
    count = int(attempted_rate * duration)

    def send(index: int) -> None:
        mod = FlowMod(
            match=Match.for_flow(
                FlowKey(f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}",
                        SERVER_IP, 6, 1024 + index % 60000, 80)
            ),
            priority=100,
            actions=[Output(1)],
            idle_timeout=rule_timeout,
        )
        switch.channel.send_to_switch(mod)

    gap = 1.0 / attempted_rate
    at = 0.1
    for index in range(count):
        # Small per-gap jitter, as with the traffic generators.
        at += gap * rng.uniform(0.98, 1.02)
        sim.schedule(at, send, index)
    sim.run(until=0.1 + duration + 2.0)
    return (switch.ofa.installs_succeeded - installed_before) / duration


# ----------------------------------------------------------------------
# Fig. 10 — data-path / control-path interaction
# ----------------------------------------------------------------------
def fig10_point(
    insertion_rate: float,
    data_rate_pps: float,
    profile: SwitchProfile = PICA8_PRONTO_3780,
    duration: float = 5.0,
    seed: int = 1,
) -> float:
    """Data-plane loss ratio while rules are inserted at
    ``insertion_rate`` and an established flow sends ``data_rate_pps``."""
    bed = build_single_switch(profile=profile, seed=seed)
    sim = bed.sim
    switch = bed.switch
    # Pre-install the data flow's rule statically (it is an established
    # flow; we measure data-plane loss, not setup).
    key = FlowKey("10.20.0.1", SERVER_IP, 17, 4000, 4000)
    out_port = bed.network.port_between("sw1", "server")
    switch.install_static(Match.for_flow(key), priority=100, actions=[Output(out_port)])

    spec = FlowSpec(
        key=key,
        start_time=0.5,
        size_packets=int(data_rate_pps * (duration + 3.0)),
        packet_size=512,
        rate_pps=data_rate_pps,
    )
    bed.client.start_flow(spec)

    rng = sim.rng.stream("fig10")
    # Insert from before the measurement window until past its end, so
    # the loss ratio reflects steady state rather than ramp/recovery.
    count = int(insertion_rate * (duration + 3.0))
    gap = 1.0 / insertion_rate

    def send(index: int) -> None:
        mod = FlowMod(
            match=Match.for_flow(
                FlowKey(f"11.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}",
                        SERVER_IP, 6, 1024 + index % 60000, 80)
            ),
            priority=100,
            actions=[Output(out_port)],
            idle_timeout=10.0,
        )
        switch.channel.send_to_switch(mod)

    measure_start = 1.5
    at = measure_start
    for index in range(count):
        at += gap * rng.uniform(0.98, 1.02)
        sim.schedule(at, send, index)

    sent_before = received_before = None

    def snapshot_start() -> None:
        nonlocal sent_before, received_before
        rec = bed.client.sent_tap.flow(key)
        sent_before = rec.packets_sent if rec else 0
        rec_in = bed.server.recv_tap.flow(key)
        received_before = rec_in.packets_received if rec_in else 0

    sim.schedule_at(measure_start + 0.5, snapshot_start)
    sim.run(until=measure_start + 0.5 + duration)
    rec = bed.client.sent_tap.flow(key)
    sent = (rec.packets_sent if rec else 0) - sent_before
    rec_in = bed.server.recv_tap.flow(key)
    received = (rec_in.packets_received if rec_in else 0) - received_before
    if sent <= 0:
        return 0.0
    return max(0.0, 1.0 - received / sent)


# ----------------------------------------------------------------------
# Fig. 11 (reconstructed) — ingress-port differentiation
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    scheme: str
    clean_port_failure: float
    attacked_port_failure: float


def fig11_run(
    scheme: str,
    attack_rate: float = 2000.0,
    client_rate: float = 50.0,
    duration: float = 10.0,
    seed: int = 1,
) -> Fig11Result:
    """Two legitimate clients — one sharing the attacker's ingress port
    (same host), one on a clean port — under ``scheme`` in {"vanilla",
    "scotch"}.  Scotch's per-port queues protect the clean port fully
    and still serve the attacked port via the overlay."""
    if scheme == "scotch":
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1)
    elif scheme == "vanilla":
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, add_scotch_app=False)
        dep.controller.add_app(ReactiveForwardingApp())
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    sim = dep.sim
    server_ip = dep.servers[0].ip
    clean = NewFlowSource(sim, dep.client, server_ip, rate_fps=client_rate, src_net=20)
    # The attacked-port client runs on the attacker's host (same switch port).
    dirty = NewFlowSource(sim, dep.attacker, server_ip, rate_fps=client_rate, src_net=21)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    start, end = 2.0, 2.0 + duration
    clean.start(at=0.5, stop_at=end)
    dirty.start(at=0.5, stop_at=end)
    attack.start(at=1.0, stop_at=end)
    sim.run(until=end + 2.0)
    clean_fail = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=start, end=end
    )
    # Attacked-port client flows live in the attacker host's sent tap
    # under src_net 21; filter by source prefix.
    sent = {
        k
        for k, r in dep.attacker.sent_tap.records.items()
        if r.packets_sent > 0 and k.src_ip.startswith("10.21.")
        and r.first_sent_at is not None and start <= r.first_sent_at < end
    }
    arrived = dep.servers[0].recv_tap.received_flow_keys()
    dirty_fail = (
        sum(1 for k in sent if k not in arrived) / len(sent) if sent else 0.0
    )
    return Fig11Result(scheme, clean_fail, dirty_fail)


# ----------------------------------------------------------------------
# Fig. 12 (reconstructed) — large-flow migration
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    migrated: bool
    migration_time: Optional[float]
    delivered_packets: int
    total_packets: int
    overlay_rules_cleaned: bool


def fig12_run(
    attack_rate: float = 1500.0,
    elephant_packets: int = 6000,
    elephant_pps: float = 500.0,
    seed: int = 3,
    with_firewall: bool = False,
) -> Fig12Result:
    """An elephant enters on the attacked port, rides the overlay, and is
    migrated to the physical path without loss."""
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, with_firewall=with_firewall)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    attack.start(at=0.5, stop_at=20.0)
    key = FlowKey("10.99.0.99", server_ip, 6, 5555, 80)
    start = 3.0
    dep.attacker.start_flow(
        FlowSpec(
            key=key,
            start_time=start,
            size_packets=elephant_packets,
            packet_size=1500,
            rate_pps=elephant_pps,
            batch=10,
        )
    )
    sim.run(until=start + elephant_packets / elephant_pps + 5.0)
    info = dep.scotch.flow_db.get(key)
    record = dep.servers[0].recv_tap.flow(key)
    cleaned = not info.overlay_sites
    return Fig12Result(
        migrated=info.route == "physical" and info.migrated_at is not None,
        migration_time=(info.migrated_at - start) if info.migrated_at else None,
        delivered_packets=record.packets_received if record else 0,
        total_packets=elephant_packets,
        overlay_rules_cleaned=cleaned,
    )


# ----------------------------------------------------------------------
# Fig. 13 (reconstructed) — capacity scaling with mesh size
# ----------------------------------------------------------------------
def fig13_point(
    n_vswitches: int,
    offered_rate: float = 12000.0,
    duration: float = 5.0,
    seed: int = 1,
) -> float:
    """Successful new-flow rate with ``n_vswitches`` in the mesh under an
    offered flood of ``offered_rate`` flows/sec.  The overlay's pooled
    Packet-In capacity (~4000/s per vSwitch) is the ceiling, so the
    curve grows near-linearly until it crosses the offered load.  The
    controller-side drain is raised well above the pooled capacity so
    the vSwitch agents — not controller scheduling — are what is
    measured (the paper: controller scaling is out of scope)."""
    config = ScotchConfig(
        vswitches_per_switch=n_vswitches,
        overlay_install_rate=100_000.0,
        drop_threshold=100_000,
    )
    dep = build_deployment(
        seed=seed, racks=max(2, n_vswitches), mesh_per_rack=1, config=config
    )
    sim = dep.sim
    server_ip = dep.servers[0].ip
    # Pre-activate: we measure steady-state overlay capacity, not ramp.
    flood = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=offered_rate)
    warm, start = 2.0, 4.0
    end = start + duration
    flood.start(at=warm, stop_at=end)
    sim.run(until=end + 3.0)
    delivered = len(dep.servers[0].recv_tap.received_in(start, end))
    return delivered / duration


# ----------------------------------------------------------------------
# Fig. 14 (reconstructed) — overlay relay delay
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    direct_delays: List[float]
    overlay_delays: List[float]

    def summary(self) -> Dict[str, float]:
        return {
            "direct_mean": mean(self.direct_delays),
            "direct_p99": percentile(self.direct_delays, 99),
            "overlay_mean": mean(self.overlay_delays),
            "overlay_p99": percentile(self.overlay_delays, 99),
            "stretch_mean": mean(self.overlay_delays) / mean(self.direct_delays),
        }


def fig14_run(
    flows: int = 100,
    racks: int = 3,
    seed: int = 1,
) -> Fig14Result:
    """Established-flow per-packet one-way delay: physical path vs. the
    overlay path (three tunnels: switch->entry mesh, mesh->mesh,
    mesh->delivery).  Only DATA packets count — first packets include
    the reactive setup latency, which is not what this figure compares.
    """

    def measure(deployment: Deployment, src_host, dst_ip: str) -> List[float]:
        delays: List[float] = []
        for server in deployment.servers:
            def on_rx(packet, _sim=deployment.sim) -> None:
                # Established-flow samples only: skip first packets (SYN)
                # and packets the controller held/reinjected during rule
                # setup — their delay measures the control path, not the
                # forwarding path this figure compares.
                if (
                    packet.tcp_flag == "DATA"
                    and packet.src_ip.startswith("10.20.")
                    and not packet.metadata.get("reinjected")
                ):
                    delays.append(_sim.now - packet.created_at)
            server.on_receive = on_rx
        source = NewFlowSource(
            deployment.sim,
            src_host,
            dst_ip,
            rate_fps=flows / 5.0,
            sizes=FixedSize(size_packets=20, rate_pps=200.0),
        )
        source.start(at=3.0, stop_at=8.0)
        deployment.sim.run(until=12.0)
        return delays

    # Direct: no congestion, flows ride physical paths.
    dep = build_deployment(seed=seed, racks=racks, mesh_per_rack=1)
    direct = measure(dep, dep.client, dep.servers[-1].ip)

    # Overlay: a flood congests the edge; the measured flows enter on the
    # attacked port so they are routed over the overlay, and elephant
    # migration is effectively disabled so they stay there.
    config = ScotchConfig(elephant_packet_threshold=10_000_000)
    dep2 = build_deployment(seed=seed + 1, racks=racks, mesh_per_rack=1, config=config)
    flood = SpoofedFlood(dep2.sim, dep2.attacker, dep2.servers[0].ip, rate_fps=3000)
    flood.start(at=0.2, stop_at=12.0)
    overlay = measure(dep2, dep2.attacker, dep2.servers[-1].ip)
    return Fig14Result(direct_delays=direct, overlay_delays=overlay)


# ----------------------------------------------------------------------
# Fig. 15 (reconstructed) — trace-driven run
# ----------------------------------------------------------------------
@dataclass
class Fig15Result:
    scheme: str
    failure_fraction: float
    mean_fct: float
    p99_fct: float
    flows_measured: int


def fig15_run(
    scheme: str,
    base_rate: float = 150.0,
    surge_multiplier: float = 12.0,
    duration: float = 20.0,
    seed: int = 7,
) -> Fig15Result:
    """Replay a synthetic heavy-tailed trace with a mid-run surge under
    ``scheme`` in {"vanilla", "scotch"} and report legitimate-traffic
    failure fraction and flow completion times."""
    if scheme == "scotch":
        dep = build_deployment(seed=seed, racks=2, servers_per_rack=2, mesh_per_rack=1)
    elif scheme == "vanilla":
        dep = build_deployment(
            seed=seed, racks=2, servers_per_rack=2, mesh_per_rack=1, add_scotch_app=False
        )
        dep.controller.add_app(ReactiveForwardingApp())
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    sim = dep.sim
    rng = sim.rng.stream("trace")
    records = generate_trace(
        rng,
        src_hosts=["client"],
        dst_ips=dep.server_ips(),
        base_rate_fps=base_rate,
        duration=duration,
        surge_start=duration * 0.25,
        surge_end=duration * 0.75,
        surge_multiplier=surge_multiplier,
        sizes=HeavyTailedSizes(elephant_fraction=0.02, elephant_mean_pkts=500.0),
    )
    replayer = TraceReplayer(sim, {"client": dep.client}, batch=10)
    replayer.schedule(records, offset=1.0)
    sim.run(until=duration + 8.0)

    arrived: Dict = {}
    for server in dep.servers:
        arrived.update(server.recv_tap.records)
    failures = 0
    fcts: List[float] = []
    for record in records:
        rx = arrived.get(record.key)
        if rx is None or rx.packets_received == 0:
            failures += 1
        elif rx.packets_received >= record.size_packets:
            sent = dep.client.sent_tap.flow(record.key)
            if sent is not None and sent.first_sent_at is not None:
                fcts.append(rx.last_received_at - sent.first_sent_at)
    return Fig15Result(
        scheme=scheme,
        failure_fraction=failures / len(records) if records else 0.0,
        mean_fct=mean(fcts) if fcts else float("nan"),
        p99_fct=percentile(fcts, 99) if fcts else float("nan"),
        flows_measured=len(records),
    )


# ----------------------------------------------------------------------
# Ablation — the §3.3 TCAM bottleneck scenario
# ----------------------------------------------------------------------
#: Rule lifetime (10 s) x offered 100 f/s needs ~1000 resident rules,
#: far over this table capacity.
TINY_TCAM = PICA8_PRONTO_3780.variant(tcam_capacity=200)
TCAM_FLOW_PACKETS = 10


def tcam_run(with_scotch: bool, seed: int = 71, rate: float = 100.0, until: float = 25.0):
    """The §3.3 TCAM-bottleneck scenario: 10-packet flows at ``rate`` on
    switches with a 200-entry table.  Returns (deployment, failure
    fraction), where a flow fails unless (nearly) all packets arrive."""
    dep = build_deployment(
        seed=seed, racks=2, mesh_per_rack=1,
        switch_profile=TINY_TCAM, add_scotch_app=with_scotch,
    )
    if not with_scotch:
        dep.controller.add_app(ReactiveForwardingApp())
    client = NewFlowSource(
        dep.sim, dep.client, dep.servers[0].ip, rate_fps=rate,
        sizes=FixedSize(size_packets=TCAM_FLOW_PACKETS, rate_pps=200.0),
    )
    client.start(at=0.5, stop_at=until - 4.0)
    dep.sim.run(until=until)

    recv = dep.servers[0].recv_tap
    measured = failed = 0
    for key, record in dep.client.sent_tap.records.items():
        if record.first_sent_at is None or not 8.0 <= record.first_sent_at < until - 5.0:
            continue
        measured += 1
        arrived = recv.flow(key)
        if arrived is None or arrived.packets_received < TCAM_FLOW_PACKETS - 1:
            failed += 1
    return dep, (failed / measured if measured else 0.0)


# ----------------------------------------------------------------------
# Ablation — Scotch vs the baseline schemes
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    scheme: str
    client_failure: float
    total_success_rate: float
    #: Packet-In messages the controller received — the *visibility* the
    #: paper insists on preserving (proactive mode scores 0 here).
    flows_visible: int = 0


def ablation_run(
    scheme: str,
    attack_rate: float = 2000.0,
    client_rate: float = 100.0,
    duration: float = 10.0,
    seed: int = 1,
) -> AblationResult:
    """One flood scenario under scotch / dedicated-port / drop-policing /
    vanilla."""
    if scheme == "scotch":
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1)
    else:
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, add_scotch_app=False)
        managed = ["edge", "spine"] + [t.name for t in dep.tors]
        if scheme == "vanilla":
            dep.controller.add_app(ReactiveForwardingApp())
        elif scheme == "proactive":
            dep.controller.add_app(ProactiveApp(managed))
        elif scheme == "drop":
            dep.controller.add_app(DropPolicingApp(managed))
        elif scheme == "dedicated":
            # Wire a collector vSwitch onto the edge switch's spare port.
            collector = dep.network.add(
                VSwitch(dep.sim, "collector", OPEN_VSWITCH.variant(packet_in_rate=20000.0))
            )
            dep.network.link("collector", "edge", 1e9)
            dep.controller.register_switch(collector)
            dep.controller.add_app(
                DedicatedPortApp(managed, collectors={"edge": "collector"})
            )
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
    sim = dep.sim
    server_ip = dep.servers[0].ip
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=client_rate)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    start, end = 2.0, 2.0 + duration
    client.start(at=0.5, stop_at=end)
    attack.start(at=1.0, stop_at=end)
    sim.run(until=end + 2.0)
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=start, end=end
    )
    delivered = len(dep.servers[0].recv_tap.received_in(start, end))
    return AblationResult(
        scheme, failure, delivered / duration,
        flows_visible=dep.controller.packet_ins_received,
    )


# ----------------------------------------------------------------------
# Ablation — choosing R (§5.2/§6.1)
# ----------------------------------------------------------------------
@dataclass
class InstallRateResult:
    install_rate: float
    client_failure: float
    install_failures: int
    physical_flows: int


def install_rate_run(
    install_rate: float,
    attack_rate: float = 1000.0,
    client_rate: float = 100.0,
    duration: float = 10.0,
    seed: int = 1,
) -> InstallRateResult:
    """One point of the R sweep: Scotch with the controller's per-switch
    install rate forced to ``install_rate``.

    The paper: R should be "the maximum rate at which the OpenFlow
    controller can install rules at the physical switch without
    insertion failure" (= 200/s on Pica8).  Below that, physical
    capacity is wasted (more flows detour than necessary); above it, the
    OFA enters its Fig. 9 loss region and installs start failing.
    """
    config = ScotchConfig(install_rate=install_rate)
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, config=config)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=client_rate)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    start, end = 2.0, 2.0 + duration
    client.start(at=0.5, stop_at=end)
    attack.start(at=1.0, stop_at=end)
    sim.run(until=end + 2.0)
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=start, end=end
    )
    install_failures = sum(
        dep.network[name].ofa.installs_failed for name in dep.scotch.schedulers
    )
    return InstallRateResult(
        install_rate=install_rate,
        client_failure=failure,
        install_failures=install_failures,
        physical_flows=dep.scotch.flow_db.counts().get("physical", 0),
    )


# ----------------------------------------------------------------------
# Replication helper — multi-seed confidence for any point function
# ----------------------------------------------------------------------
@dataclass
class Replicated:
    """Mean/std of a scalar experiment across seeds."""

    values: List[float]
    mean: float
    std: float

    @property
    def spread(self) -> float:
        """std/mean (coefficient of variation); 0 for a zero mean."""
        return self.std / self.mean if self.mean else 0.0


def replicate(point_fn: Callable[[int], float], seeds: Sequence[int] = (1, 2, 3)) -> Replicated:
    """Run ``point_fn(seed)`` across seeds and summarize.

    Every runner in this module takes a ``seed`` parameter so any point
    can be replicated, e.g.::

        replicate(lambda s: fig3_point(PICA8_PRONTO_3780, 2000, seed=s))
    """
    from repro.metrics.stats import mean as _mean, stddev as _stddev

    values = [float(point_fn(seed)) for seed in seeds]
    return Replicated(values=values, mean=_mean(values), std=_stddev(values))
