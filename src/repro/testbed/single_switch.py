"""The paper's Fig. 2 testbed: one switch under test.

"The attacker, the client and the server are all attached to the data
ports, and the controller is attached to the management port."  Multiple
client ports are supported for the ingress-port-differentiation
experiment (each client host lands on its own switch port).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.controller.reactive_app import ReactiveForwardingApp
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import PICA8_PRONTO_3780, SwitchProfile
from repro.switch.switch import OpenFlowSwitch

SERVER_IP = "10.0.0.100"


@dataclass
class SingleSwitchTestbed:
    """Handles to everything in the Fig. 2 setup."""

    sim: Simulator
    network: Network
    switch: OpenFlowSwitch
    clients: List[Host]
    attacker: Host
    server: Host
    controller: OpenFlowController

    @property
    def client(self) -> Host:
        return self.clients[0]


def build_single_switch(
    profile: SwitchProfile = PICA8_PRONTO_3780,
    seed: int = 0,
    n_clients: int = 1,
    app_factory: Optional[Callable[[], BaseApp]] = None,
    host_link_bps: float = 1e9,
) -> SingleSwitchTestbed:
    """Build the testbed; ``app_factory`` defaults to plain reactive
    forwarding (the paper's §3 baseline)."""
    sim = Simulator(seed=seed)
    network = Network(sim)
    switch = network.add(OpenFlowSwitch(sim, "sw1", profile))
    clients = []
    for index in range(n_clients):
        client = network.add(Host(sim, f"client{index}", f"10.20.{index}.1"))
        network.link(client.name, "sw1", host_link_bps)
        clients.append(client)
    attacker = network.add(Host(sim, "attacker", "10.99.0.1"))
    network.link("attacker", "sw1", host_link_bps)
    server = network.add(Host(sim, "server", SERVER_IP))
    network.link("server", "sw1", host_link_bps)

    controller = OpenFlowController(sim, network)
    controller.register_switch(switch)
    app = app_factory() if app_factory is not None else ReactiveForwardingApp()
    controller.add_app(app)
    return SingleSwitchTestbed(
        sim=sim,
        network=network,
        switch=switch,
        clients=clients,
        attacker=attacker,
        server=server,
        controller=controller,
    )
