"""Plain-text tables for benchmark output (the paper's rows/series)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
