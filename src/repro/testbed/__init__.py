"""Canned testbeds and experiment runners.

:mod:`repro.testbed.single_switch` rebuilds the paper's Fig. 2 testbed
(one switch, attacker + client + server on data ports, controller on the
management port).  :mod:`repro.testbed.deployment` builds the full
Scotch deployment of Fig. 5 (multi-rack fabric, vSwitch mesh, host
vSwitches, optional middlebox).  :mod:`repro.testbed.experiments` holds
one runner per reproduced figure; the benchmarks print their output.
"""

from repro.testbed.deployment import Deployment, build_deployment
from repro.testbed.report import format_table
from repro.testbed.single_switch import SingleSwitchTestbed, build_single_switch

__all__ = [
    "Deployment",
    "SingleSwitchTestbed",
    "build_deployment",
    "build_single_switch",
    "format_table",
]
