"""Scale scenario: a 500–1000-vSwitch overlay under flash-crowd load.

``build_deployment`` couples the mesh size to the rack count (every rack
carries a mesh vSwitch), which makes the O(mesh²) overlay tunnel fabric
explode long before the vSwitch count gets interesting.  This module
builds the shape the paper actually argues for at scale (§4.1, §6): a
*moderate* fully-meshed overlay core (tens of mesh vSwitches — the
elastic control-plane capacity) fronting *hundreds* of host vSwitches
(one per tenant rack slice — where the east-west edge really lives).

Topology::

    client -- edge -- spine -- tor_k -- hv_i -- server_i   (i: 0..hosts)
                         |       |
                     (overlay)  mv_j                        (j: 0..mesh)

The workload is a flash crowd: a steady base of new flows toward a set
of popular services, then a configurable window in which the aggregate
new-flow rate multiplies — the §1 motivating scenario where the
physical switch's control path saturates and Scotch must spread
Packet-Ins over the overlay.

``run_scale`` is the engine's macro benchmark: it reports wall-clock,
total events dispatched (``Simulator.events_fired``) and events/sec
separately for the build and run phases, plus peak RSS.
``benchmarks/bench_scale_engine.py`` drives it and emits
``BENCH_scale.json``; the CLI exposes it as ``repro scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.controller.controller import OpenFlowController
from repro.core.app import ScotchApp
from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay
from repro.core.policy import PolicyRegistry
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import OPEN_VSWITCH, PICA8_PRONTO_3780
from repro.switch.switch import PhysicalSwitch, VSwitch
from repro.testbed.deployment import FABRIC_BPS, HOST_BPS
from repro.traffic import NewFlowSource


@dataclass
class ScaleDeployment:
    """Handles to the scale topology."""

    sim: Simulator
    network: Network
    controller: OpenFlowController
    overlay: ScotchOverlay
    scotch: ScotchApp
    edge: PhysicalSwitch
    spine: PhysicalSwitch
    tors: List[PhysicalSwitch]
    host_vswitches: List[VSwitch]
    mesh_vswitches: List[VSwitch]
    servers: List[Host]
    targets: List[Host]
    client: Host

    @property
    def vswitch_count(self) -> int:
        return len(self.host_vswitches) + len(self.mesh_vswitches)


@dataclass
class ScaleResult:
    """What one scale run measured."""

    seed: int
    vswitches: int
    mesh: int
    host_vswitches: int
    tunnels: int
    targets: int
    duration: float
    base_rate_fps: float
    crowd_rate_fps: float
    flows_started: int
    client_failure: float
    edge_punts: int
    build_wall: float
    build_events: int
    run_wall: float
    run_events: int
    events_per_sec: float
    extras: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        text = (
            f"scale: {self.vswitches} vSwitches ({self.mesh} mesh + "
            f"{self.host_vswitches} host), {self.tunnels} tunnels, "
            f"{self.flows_started} flows over {self.duration:.1f}s sim\n"
            f"  build: {self.build_wall:.2f}s wall, {self.build_events} events\n"
            f"  run:   {self.run_wall:.2f}s wall, {self.run_events} events "
            f"-> {self.events_per_sec:,.0f} events/sec\n"
            f"  client failure {self.client_failure:.4f}, "
            f"edge punts {self.edge_punts}"
        )
        if "monitoring_bytes" in self.extras:
            text += (
                f"\n  monitoring: {self.extras['stats_polls']:.0f} polls, "
                f"{self.extras['sample_reports']:.0f} sample reports, "
                f"{self.extras['monitoring_bytes']:,.0f} control-channel bytes"
            )
        return text


def build_scale_overlay(
    seed: int = 0,
    host_vswitches: int = 480,
    mesh: int = 24,
    tors: int = 8,
    targets: int = 16,
    config: Optional[ScotchConfig] = None,
) -> ScaleDeployment:
    """Build the scale topology (``host_vswitches + mesh`` vSwitches).

    ``targets`` of the servers are the flash-crowd services: they get
    overlay delivery mappings (and hence delivery tunnels from every
    mesh vSwitch); the remaining host vSwitches model idle tenants.
    """
    if host_vswitches < 1 or mesh < 2 or tors < 1:
        raise ValueError("need host_vswitches >= 1, mesh >= 2, tors >= 1")
    targets = min(targets, host_vswitches)
    sim = Simulator(seed=seed)
    network = Network(sim)
    config = config or ScotchConfig()

    edge = network.add(PhysicalSwitch(sim, "edge", PICA8_PRONTO_3780))
    spine = network.add(PhysicalSwitch(sim, "spine", PICA8_PRONTO_3780))
    network.link("edge", "spine", FABRIC_BPS)
    client = network.add(Host(sim, "client", "10.20.0.1"))
    network.link("client", "edge", HOST_BPS)

    tor_switches: List[PhysicalSwitch] = []
    for k in range(tors):
        tor = network.add(PhysicalSwitch(sim, f"tor{k}", PICA8_PRONTO_3780))
        network.link(tor.name, "spine", FABRIC_BPS)
        tor_switches.append(tor)

    overlay = ScotchOverlay(network, config)
    mesh_switches: List[VSwitch] = []
    for j in range(mesh):
        mv = network.add(VSwitch(sim, f"mv{j}", OPEN_VSWITCH))
        network.link(mv.name, tor_switches[j % tors].name, HOST_BPS)
        mesh_switches.append(mv)
        overlay.add_mesh_vswitch(mv.name)

    hv_switches: List[VSwitch] = []
    servers: List[Host] = []
    for i in range(host_vswitches):
        hv = network.add(VSwitch(sim, f"hv{i}", OPEN_VSWITCH))
        network.link(hv.name, tor_switches[i % tors].name, HOST_BPS)
        hv_switches.append(hv)
        server = network.add(
            Host(sim, f"server{i}", f"10.{1 + i // 200}.{i % 200}.10")
        )
        network.link(server.name, hv.name, HOST_BPS)
        servers.append(server)

    # Delivery mappings: the flash-crowd services plus the client (so
    # reverse traffic over the overlay cannot strand).
    for i in range(targets):
        overlay.set_host_delivery(
            servers[i].name, hv_switches[i].name, mesh_switches[i % mesh].name
        )
    overlay.set_host_delivery("client", None, mesh_switches[0].name)

    for switch in [edge, spine] + tor_switches:
        overlay.register_switch(switch.name)

    controller = OpenFlowController(sim, network)
    for node in network.nodes.values():
        if isinstance(node, (PhysicalSwitch, VSwitch)):
            controller.register_switch(node)

    policy = PolicyRegistry(network, overlay)
    scotch = ScotchApp(overlay, config=config, policy=policy)
    controller.add_app(scotch)

    return ScaleDeployment(
        sim=sim,
        network=network,
        controller=controller,
        overlay=overlay,
        scotch=scotch,
        edge=edge,
        spine=spine,
        tors=tor_switches,
        host_vswitches=hv_switches,
        mesh_vswitches=mesh_switches,
        servers=servers,
        targets=servers[:targets],
        client=client,
    )


def run_scale(
    seed: int = 0,
    host_vswitches: int = 480,
    mesh: int = 24,
    tors: int = 8,
    targets: int = 16,
    duration: float = 5.0,
    base_rate_fps: float = 20.0,
    crowd_multiplier: float = 10.0,
    crowd_at: float = 1.5,
    crowd_until: float = 3.5,
    config: Optional[ScotchConfig] = None,
) -> ScaleResult:
    """Build the scale overlay and run the flash crowd through it.

    ``base_rate_fps`` is the per-target new-flow rate before/after the
    crowd window; during ``[crowd_at, crowd_until)`` every target's rate
    multiplies by ``crowd_multiplier``.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if crowd_multiplier < 1:
        raise ValueError("crowd_multiplier must be >= 1")

    build_start = perf_counter()
    dep = build_scale_overlay(
        seed=seed,
        host_vswitches=host_vswitches,
        mesh=mesh,
        tors=tors,
        targets=targets,
        config=config,
    )
    sim = dep.sim
    build_wall = perf_counter() - build_start
    build_events = sim.events_fired

    sources = [
        NewFlowSource(sim, dep.client, target.ip, rate_fps=base_rate_fps,
                      rng_name=f"scale:{target.name}")
        for target in dep.targets
    ]
    for source in sources:
        source.start(at=0.25, stop_at=duration - 0.25)

    def crowd_on() -> None:
        for source in sources:
            source.rate_fps = base_rate_fps * crowd_multiplier

    def crowd_off() -> None:
        for source in sources:
            source.rate_fps = base_rate_fps

    if crowd_at < duration:
        sim.schedule_at(crowd_at, crowd_on)
        if crowd_until < duration:
            sim.schedule_at(crowd_until, crowd_off)

    run_start = perf_counter()
    sim.run(until=duration)
    run_wall = perf_counter() - run_start
    run_events = sim.events_fired - build_events

    # Multi-destination variant of client_flow_failure_fraction: a flow
    # counts as failed when no target server ever saw it.
    window_start, window_end = 0.5, duration - 0.5
    sent = {
        key
        for key, record in dep.client.sent_tap.records.items()
        if record.packets_sent > 0
        and record.first_sent_at is not None
        and window_start <= record.first_sent_at < window_end
    }
    arrived = set()
    for target in dep.targets:
        arrived |= target.recv_tap.received_flow_keys()
    failure = (
        sum(1 for key in sent if key not in arrived) / len(sent) if sent else 0.0
    )
    # Monitoring-cost extras (metrics-enabled runs only): the flow-stats
    # counters let `scotch-repro scale --stats-mode sample` show the
    # monitoring-byte saving at scale next to the engine numbers.
    extras: Dict[str, float] = {}
    metrics = sim.obs.metrics
    if metrics.enabled:
        def _count(name: str) -> float:
            counter = metrics.counters.get(name)
            return float(counter.value) if counter is not None else 0.0

        extras["stats_polls"] = _count("stats.polls_sent")
        extras["stats_reply_entries"] = _count("stats.reply_entries")
        extras["sample_reports"] = _count("stats.sample_reports")
        extras["sample_records"] = _count("stats.sample_records")
        extras["monitoring_bytes"] = (
            _count("stats.bytes.requests")
            + _count("stats.bytes.replies")
            + _count("stats.bytes.samples")
        )
    return ScaleResult(
        seed=seed,
        vswitches=dep.vswitch_count,
        mesh=len(dep.mesh_vswitches),
        host_vswitches=len(dep.host_vswitches),
        tunnels=len(dep.overlay.fabric.tunnels),
        targets=len(dep.targets),
        duration=duration,
        base_rate_fps=base_rate_fps,
        crowd_rate_fps=base_rate_fps * crowd_multiplier,
        flows_started=sum(s.flows_started for s in sources),
        client_failure=failure,
        edge_punts=dep.edge.datapath.punted,
        build_wall=build_wall,
        build_events=build_events,
        run_wall=run_wall,
        run_events=run_events,
        events_per_sec=run_events / run_wall if run_wall > 0 else 0.0,
        extras=extras,
    )
