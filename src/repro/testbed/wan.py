"""Wide-area Scotch deployment (paper §4.1: the vSwitch pool may be
"distributed at different locations for a wide-area SDN network").

Topology: N sites in a ring, each with a PoP (point-of-presence)
physical switch, one mesh vSwitch, and a server; inter-site links carry
WAN propagation delays (milliseconds instead of microseconds).  Clients
and the attacker enter at site 0.  Everything else — overlay
construction, Scotch app — is identical to the data-center deployment,
which is the point: the overlay abstraction does not care about the
underlay's scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.controller.controller import OpenFlowController
from repro.core.app import ScotchApp
from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay
from repro.core.policy import PolicyRegistry
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import OPEN_VSWITCH, PICA8_PRONTO_3780, SwitchProfile
from repro.switch.switch import PhysicalSwitch, VSwitch

#: Inter-site (WAN) propagation delay and local-attachment delay.
WAN_DELAY = 10e-3
LOCAL_DELAY = 50e-6
WAN_BPS = 10e9
LOCAL_BPS = 1e9


@dataclass
class WanDeployment:
    sim: Simulator
    network: Network
    controller: OpenFlowController
    overlay: ScotchOverlay
    scotch: Optional[ScotchApp]
    pops: List[PhysicalSwitch]
    mesh_vswitches: List[VSwitch]
    servers: List[Host]
    client: Host
    attacker: Host

    @property
    def entry_pop(self) -> PhysicalSwitch:
        return self.pops[0]


def build_wan_deployment(
    sites: int = 3,
    seed: int = 0,
    wan_delay: float = WAN_DELAY,
    switch_profile: SwitchProfile = PICA8_PRONTO_3780,
    config: Optional[ScotchConfig] = None,
    add_scotch_app: bool = True,
) -> WanDeployment:
    """Build the multi-site ring; the Scotch controller sits at site 0
    (control latency to remote PoPs includes the WAN delay)."""
    if sites < 2:
        raise ValueError("a WAN needs at least two sites")
    sim = Simulator(seed=seed)
    network = Network(sim)
    config = config or ScotchConfig()
    overlay = ScotchOverlay(network, config)

    # The physical ring first — mesh tunnels need underlay paths to
    # exist when the vSwitches join the overlay.
    pops: List[PhysicalSwitch] = []
    for site in range(sites):
        # Remote PoPs are controlled across the WAN.
        latency = switch_profile.control_latency + (wan_delay if site else 0.0)
        pops.append(
            network.add(
                PhysicalSwitch(sim, f"pop{site}", switch_profile, control_latency=latency)
            )
        )
    for site in range(sites):
        network.link(f"pop{site}", f"pop{(site + 1) % sites}", WAN_BPS, delay=wan_delay)

    mesh: List[VSwitch] = []
    servers: List[Host] = []
    for site in range(sites):
        vswitch = network.add(VSwitch(sim, f"wmv{site}", OPEN_VSWITCH,
                                      control_latency=OPEN_VSWITCH.control_latency
                                      + (wan_delay if site else 0.0)))
        network.link(vswitch.name, f"pop{site}", LOCAL_BPS, delay=LOCAL_DELAY)
        mesh.append(vswitch)
        overlay.add_mesh_vswitch(vswitch.name)
        server = network.add(Host(sim, f"wserver{site}", f"10.1.{site}.10"))
        network.link(server.name, f"pop{site}", LOCAL_BPS, delay=LOCAL_DELAY)
        servers.append(server)

    client = network.add(Host(sim, "client", "10.20.0.1"))
    attacker = network.add(Host(sim, "attacker", "10.99.0.1"))
    network.link("client", "pop0", LOCAL_BPS, delay=LOCAL_DELAY)
    network.link("attacker", "pop0", LOCAL_BPS, delay=LOCAL_DELAY)

    for site in range(sites):
        overlay.set_host_delivery(f"wserver{site}", None, f"wmv{site}")
    overlay.set_host_delivery("client", None, "wmv0")
    overlay.set_host_delivery("attacker", None, "wmv0")
    for pop in pops:
        # Spread each PoP over its local vSwitch first, then a remote one.
        local = f"wmv{pop.name[3:]}"
        remote = mesh[(int(pop.name[3:]) + 1) % sites].name
        overlay.register_switch(pop.name, vswitches=[local, remote][: config.vswitches_per_switch])

    controller = OpenFlowController(sim, network)
    for node in network.nodes.values():
        if isinstance(node, (PhysicalSwitch, VSwitch)):
            controller.register_switch(node)

    scotch: Optional[ScotchApp] = None
    if add_scotch_app:
        scotch = ScotchApp(overlay, config=config,
                           policy=PolicyRegistry(network, overlay))
        controller.add_app(scotch)

    return WanDeployment(
        sim=sim,
        network=network,
        controller=controller,
        overlay=overlay,
        scotch=scotch,
        pops=pops,
        mesh_vswitches=mesh,
        servers=servers,
        client=client,
        attacker=attacker,
    )
