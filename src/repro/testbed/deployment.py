"""The full Scotch deployment (paper Fig. 5).

Topology::

    client, attacker --- edge switch --- spine --- ToR_i --- host vSwitch_i --- servers
                                           |          |
                                     (middlebox)   mesh vSwitch(es)

* physical switches: one edge (where external traffic enters), one
  spine, one ToR per rack — all Pica8-profile (the Scotch-capable
  switch);
* per rack: a host vSwitch fronting the rack's servers and one or more
  mesh vSwitches for the overlay;
* optionally a stateful firewall hanging off S_U=edge / S_D=spine, with
  a policy forcing all server-bound traffic through it;
* the Scotch overlay fully built offline: mesh tunnels, switch tunnels,
  delivery tunnels, static rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.controller.controller import OpenFlowController
from repro.core.app import ScotchApp
from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay
from repro.core.policy import Policy, PolicyRegistry
from repro.net.host import Host
from repro.net.middlebox import Firewall
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import OPEN_VSWITCH, PICA8_PRONTO_3780, SwitchProfile
from repro.switch.switch import PhysicalSwitch, VSwitch

#: Link speeds.
FABRIC_BPS = 10e9
HOST_BPS = 1e9


@dataclass
class Deployment:
    """Handles to everything in the deployment."""

    sim: Simulator
    network: Network
    controller: OpenFlowController
    overlay: ScotchOverlay
    policy: PolicyRegistry
    scotch: Optional[ScotchApp]
    edge: PhysicalSwitch
    spine: PhysicalSwitch
    tors: List[PhysicalSwitch]
    mesh_vswitches: List[VSwitch]
    host_vswitches: List[VSwitch]
    servers: List[Host]
    client: Host
    attacker: Host
    firewall: Optional[Firewall] = None

    @property
    def server(self) -> Host:
        return self.servers[0]

    def server_ips(self) -> List[str]:
        return [s.ip for s in self.servers]


def build_deployment(
    seed: int = 0,
    racks: int = 2,
    servers_per_rack: int = 2,
    mesh_per_rack: int = 1,
    backups: int = 0,
    switch_profile: SwitchProfile = PICA8_PRONTO_3780,
    vswitch_profile: SwitchProfile = OPEN_VSWITCH,
    config: Optional[ScotchConfig] = None,
    with_firewall: bool = False,
    add_scotch_app: bool = True,
) -> Deployment:
    """Build the deployment and (optionally) start the Scotch app."""
    if racks < 1 or servers_per_rack < 1 or mesh_per_rack < 1:
        raise ValueError("racks, servers_per_rack, mesh_per_rack must be >= 1")
    sim = Simulator(seed=seed)
    network = Network(sim)
    config = config or ScotchConfig()

    edge = network.add(PhysicalSwitch(sim, "edge", switch_profile))
    spine = network.add(PhysicalSwitch(sim, "spine", switch_profile))
    network.link("edge", "spine", FABRIC_BPS)

    client = network.add(Host(sim, "client", "10.20.0.1"))
    attacker = network.add(Host(sim, "attacker", "10.99.0.1"))
    network.link("client", "edge", HOST_BPS)
    network.link("attacker", "edge", HOST_BPS)

    tors: List[PhysicalSwitch] = []
    mesh_vswitches: List[VSwitch] = []
    host_vswitches: List[VSwitch] = []
    servers: List[Host] = []
    overlay = ScotchOverlay(network, config)

    for rack in range(racks):
        tor = network.add(PhysicalSwitch(sim, f"tor{rack}", switch_profile))
        network.link(tor.name, "spine", FABRIC_BPS)
        tors.append(tor)
        hv = network.add(VSwitch(sim, f"hv{rack}", vswitch_profile))
        network.link(hv.name, tor.name, HOST_BPS)
        host_vswitches.append(hv)
        for index in range(servers_per_rack):
            server = network.add(Host(sim, f"server{rack}_{index}", f"10.0.{rack}.{10 + index}"))
            network.link(server.name, hv.name, HOST_BPS)
            servers.append(server)
        for index in range(mesh_per_rack):
            mv = network.add(VSwitch(sim, f"mv{rack}_{index}", vswitch_profile))
            network.link(mv.name, tor.name, HOST_BPS)
            mesh_vswitches.append(mv)
            overlay.add_mesh_vswitch(mv.name)
    for index in range(backups):
        bv = network.add(VSwitch(sim, f"bv{index}", vswitch_profile))
        network.link(bv.name, tors[index % racks].name, HOST_BPS)
        mesh_vswitches.append(bv)
        overlay.add_mesh_vswitch(bv.name, backup=True)

    # Overlay delivery mappings + tunnels (offline configuration).
    for rack in range(racks):
        local_mesh = f"mv{rack}_0"
        for index in range(servers_per_rack):
            overlay.set_host_delivery(f"server{rack}_{index}", f"hv{rack}", local_mesh)
    # External hosts are reachable via direct delivery tunnels too (so
    # reverse/odd traffic cannot strand); their local mesh is rack 0's.
    overlay.set_host_delivery("client", None, "mv0_0")
    overlay.set_host_delivery("attacker", None, "mv0_0")

    for switch in [edge, spine] + tors:
        overlay.register_switch(switch.name)

    controller = OpenFlowController(sim, network)
    for name, node in network.nodes.items():
        if isinstance(node, (PhysicalSwitch, VSwitch)):
            controller.register_switch(node)

    policy = PolicyRegistry(network, overlay)
    firewall: Optional[Firewall] = None
    if with_firewall:
        firewall = network.add(Firewall(sim, "fw0"))
        network.link("edge", "fw0", FABRIC_BPS)
        network.link("fw0", "spine", FABRIC_BPS)
        network.exclude_from_routing("fw0")
        policy.attach_middlebox("fw0", upstream="edge", downstream="spine")
        server_ips = {s.ip for s in servers}
        policy.add_policy(
            Policy(
                name="servers-behind-fw",
                predicate=lambda key, ips=server_ips: key.dst_ip in ips,
                chain=["fw0"],
            )
        )

    scotch: Optional[ScotchApp] = None
    if add_scotch_app:
        scotch = ScotchApp(overlay, config=config, policy=policy)
        controller.add_app(scotch)

    return Deployment(
        sim=sim,
        network=network,
        controller=controller,
        overlay=overlay,
        policy=policy,
        scotch=scotch,
        edge=edge,
        spine=spine,
        tors=tors,
        mesh_vswitches=mesh_vswitches,
        host_vswitches=host_vswitches,
        servers=servers,
        client=client,
        attacker=attacker,
        firewall=firewall,
    )
