"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator that ``yield``s delays (in
seconds).  After each yield the generator is resumed that many seconds of
simulation time later.  This gives traffic sources and service loops a
linear, readable control flow::

    def client(sim, nic):
        while True:
            nic.send(make_packet())
            yield sim.rng.stream("client").expovariate(rate)

    Process(sim, client(sim, nic))
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Event, Simulator

DelayGenerator = Generator[float, None, Any]


class PeriodicTimer:
    """Restart-safe scheduling for periodic daemons.

    Every periodic service in the controller (monitors, pollers,
    samplers, the health engine, the pool timers) shares one shape: a
    ``_tick`` that does work and reschedules itself.  The recurring bug
    in that shape is stop()/start() doubling the chain — a stop() that
    merely flips a flag leaves the pending tick alive, start() schedules
    a second one, and the old tick re-arms itself when it fires.  This
    helper owns the pending event so the bug class is impossible: stop()
    always cancels it.

    The timer deliberately schedules the *caller's own* callback (not a
    wrapper), so causal-provenance callback names — and with them the
    byte-identity of postmortem bundles — are unchanged by migrating a
    daemon onto it.  Usage::

        self._timer = PeriodicTimer(sim, interval, self._tick)

        def _tick(self):
            if not self._timer.running:
                return
            ... work ...
            self._timer.rearm()
    """

    __slots__ = ("sim", "interval", "callback", "daemon", "running", "event")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[[], None], daemon: bool = True):
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.daemon = daemon
        self.running = False
        #: The pending tick (None while stopped or mid-callback).
        self.event: Optional[Event] = None

    def start(self) -> None:
        """Arm the first tick; idempotent while already running."""
        if self.running:
            return
        self.running = True
        self.event = self.sim.schedule(self.interval, self.callback,
                                       daemon=self.daemon)

    def stop(self) -> None:
        """Disarm: cancel the pending tick (if any) and stop re-arming."""
        self.running = False
        if self.event is not None:
            self.event.cancel()
            self.event = None

    def rearm(self, interval: Optional[float] = None) -> None:
        """Schedule the next tick — called by the callback at the end of
        each tick; a no-op once stop() ran (the chain dies cleanly)."""
        if not self.running:
            return
        self.event = self.sim.schedule(
            self.interval if interval is None else interval,
            self.callback, daemon=self.daemon,
        )


class Process:
    """Drive a delay-yielding generator on the simulator clock."""

    def __init__(self, sim: Simulator, generator: DelayGenerator, start_delay: float = 0.0):
        self.sim = sim
        self._generator = generator
        self._event: Optional[Event] = None
        self.alive = True
        self._event = sim.schedule(start_delay, self._resume)

    def _resume(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.alive = False
            self._event = None
            return
        self._event = self.sim.schedule(delay, self._resume)

    def stop(self) -> None:
        """Terminate the process; the generator is not resumed again."""
        self.alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._generator.close()
