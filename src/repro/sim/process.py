"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator that ``yield``s delays (in
seconds).  After each yield the generator is resumed that many seconds of
simulation time later.  This gives traffic sources and service loops a
linear, readable control flow::

    def client(sim, nic):
        while True:
            nic.send(make_packet())
            yield sim.rng.stream("client").expovariate(rate)

    Process(sim, client(sim, nic))
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Event, Simulator

DelayGenerator = Generator[float, None, Any]


class Process:
    """Drive a delay-yielding generator on the simulator clock."""

    def __init__(self, sim: Simulator, generator: DelayGenerator, start_delay: float = 0.0):
        self.sim = sim
        self._generator = generator
        self._event: Optional[Event] = None
        self.alive = True
        self._event = sim.schedule(start_delay, self._resume)

    def _resume(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.alive = False
            self._event = None
            return
        self._event = self.sim.schedule(delay, self._resume)

    def stop(self) -> None:
        """Terminate the process; the generator is not resumed again."""
        self.alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._generator.close()
