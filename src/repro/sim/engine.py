"""Deterministic discrete-event simulation engine.

The engine is a binary-heap calendar queue.  Simultaneous events fire in
the order they were scheduled (a monotonically increasing sequence number
breaks timestamp ties), which makes every run with the same seed and the
same model code bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.obs.base import get_default_obs
from repro.sim.rng import RngRegistry


class SimulationError(Exception):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only ever needs
    :meth:`cancel` and :attr:`time`.

    ``daemon`` events are housekeeping (periodic rule-expiry sweeps,
    monitor ticks): they never keep an otherwise-finished simulation
    alive — :meth:`Simulator.run` without a horizon stops once only
    daemon events remain.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "daemon")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple,
                 daemon: bool = False):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent; safe after firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator(seed=1)
        sim.schedule(0.5, my_callback, arg1)
        sim.run(until=10.0)

    ``sim.now`` is the current simulation time in seconds.  All model
    components take the simulator instance in their constructor and use it
    for both time and randomness (via :attr:`rng`).
    """

    def __init__(self, seed: int = 0, obs: Optional[Any] = None):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Non-daemon events still in the heap (fired/discarded ones
        #: excluded); when this reaches zero, an un-horizoned run() ends.
        self._foreground_pending = 0
        #: Observability context (tracer/metrics/profiler).  Defaults to
        #: the process-wide default (a no-op unless e.g. the CLI installed
        #: a live one); components reach it as ``self.sim.obs``.
        self.obs = obs if obs is not None else get_default_obs()
        #: Called as ``hook(event, wall_seconds, heap_depth)`` after each
        #: fired event; None (the default) keeps the loop overhead-free.
        self._event_hook: Optional[Callable[[Event, float, int], None]] = None
        self.obs.bind(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 daemon: bool = False) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args, daemon=daemon)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    daemon: bool = False) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now ({self.now!r})"
            )
        event = Event(time, self._seq, callback, args, daemon=daemon)
        self._seq += 1
        heapq.heappush(self._heap, event)
        if not daemon:
            self._foreground_pending += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the simulation time when the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier (so rate computations over the run window
        are well defined).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                if until is None and self._foreground_pending == 0:
                    break  # only daemon housekeeping left
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if not event.daemon:
                    self._foreground_pending -= 1
                if event.cancelled:
                    continue
                self.now = event.time
                self._fire(event)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if none left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.daemon:
                self._foreground_pending -= 1
            if event.cancelled:
                continue
            self.now = event.time
            self._fire(event)
            return True
        return False

    def _fire(self, event: Event) -> None:
        """Run one event's callback, feeding the hook when installed."""
        hook = self._event_hook
        if hook is None:
            event.callback(*event.args)
        else:
            start = perf_counter()
            event.callback(*event.args)
            hook(event, perf_counter() - start, len(self._heap))

    def set_event_hook(
        self, hook: Optional[Callable[[Event, float, int], None]]
    ) -> None:
        """Install (or clear, with None) the per-event profiling hook.
        The hook observes only — it must not mutate the calendar."""
        self._event_hook = hook

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            event = heapq.heappop(self._heap)
            if not event.daemon:
                # Discarding a cancelled foreground event here must keep
                # the foreground accounting exact, or an un-horizoned
                # run() would wait on events that no longer exist.
                self._foreground_pending -= 1
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def heap_depth(self) -> int:
        """Raw calendar size (cancelled events included) — the profiler's
        memory-pressure signal."""
        return len(self._heap)
