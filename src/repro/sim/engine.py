"""Deterministic discrete-event simulation engine.

The calendar is a binary heap of **time slots**: one heap entry per
distinct timestamp, each holding the list of events scheduled at that
instant in scheduling order.  This buys three things over the classic
one-heap-entry-per-event design it replaced:

* heap comparisons never call back into Python — slot entries are plain
  lists whose first element is the timestamp, so ``heapq`` orders them
  with C-level float comparisons (the old per-``Event`` ``__lt__`` was
  the single hottest function in profile runs);
* same-timestamp events **coalesce** into one heap entry: scheduling
  another event at an already-populated instant is an O(1) list append
  instead of an O(log n) sift — periodic daemon ticks (expiry sweeps,
  monitors, samplers) across hundreds of switches land on aligned
  timestamps and share slots;
* dispatch drains a slot by bumping an index — no per-event pop.

Simultaneous events still fire in the order they were scheduled (slot
lists are append-only and appends happen in sequence-number order), so
every run with the same seed and the same model code remains
bit-for-bit reproducible; ``tests/golden/`` pins this across engine
changes.

Cancellation is O(1): :meth:`Event.cancel` flags the event *and*
settles the foreground/live accounting immediately with the simulator
it belongs to, instead of deferring to a lazy heap sweep.  A cancelled
foreground event therefore never keeps an un-horizoned :meth:`run`
alive, and :meth:`Simulator.peek` discarding dead events needs no
accounting fix-ups at all.

**Causal provenance** (off by default, enabled through
:class:`~repro.obs.Observability` with ``causality=True``): when on,
:meth:`Simulator.schedule` records each new event's *parent* — the
event whose callback scheduled it — so a run carries a causal DAG
addressed by compact ``(run, seq)`` ids.  :meth:`ancestry` walks the
chain backwards (bounded depth) and is what postmortem bundles slice;
the dispatch loop pays one flag check per event when provenance and
the flight-recorder feed are both off.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.base import get_default_obs
from repro.sim.rng import RngRegistry

#: Slot layout: ``[time, next_index, events]``.  Times are unique per
#: slot (the ``Simulator._slots`` dict guarantees it), so heap ordering
#: only ever compares the leading floats.
_TIME, _HEAD, _EVENTS = 0, 1, 2


def callback_name(callback: Any) -> str:
    """A deterministic, human-readable name for an event callback.

    Never falls back to ``repr()`` — reprs of bound methods and partials
    embed memory addresses, which would break the byte-identity contract
    of provenance exports and postmortem bundles.
    """
    name = getattr(callback, "__qualname__", None)
    if name is not None:
        return name
    inner = getattr(callback, "func", None)  # functools.partial
    if inner is not None:
        return callback_name(inner)
    return type(callback).__name__


class SimulationError(Exception):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only ever needs
    :meth:`cancel` and :attr:`time`.

    ``daemon`` events are housekeeping (periodic rule-expiry sweeps,
    monitor ticks): they never keep an otherwise-finished simulation
    alive — :meth:`Simulator.run` without a horizon stops once only
    daemon events remain.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "daemon",
                 "fired", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple,
                 daemon: bool = False, sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent; safe after firing.

        Cancellation settles the owning simulator's accounting
        immediately (O(1)): a cancelled foreground event stops counting
        toward the work that keeps an un-horizoned run alive, and the
        callback/argument references are released right away.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            if not self.daemon:
                sim._foreground_pending -= 1
        # Release closures/payloads now rather than when the calendar
        # eventually reaches this timestamp.
        self.callback = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else (" fired" if self.fired else "")
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator(seed=1)
        sim.schedule(0.5, my_callback, arg1)
        sim.run(until=10.0)

    ``sim.now`` is the current simulation time in seconds.  All model
    components take the simulator instance in their constructor and use it
    for both time and randomness (via :attr:`rng`).
    """

    def __init__(self, seed: int = 0, obs: Optional[Any] = None):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        #: Heap of ``[time, head, events]`` slots, one per distinct time.
        self._heap: List[list] = []
        #: time -> its slot (the coalescing index for O(1) same-time adds).
        self._slots: Dict[float, list] = {}
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Live (scheduled, not fired, not cancelled) non-daemon events;
        #: when this reaches zero, an un-horizoned run() ends.
        self._foreground_pending = 0
        #: Live events of any kind (the ``pending`` property).
        self._live = 0
        #: Events resident in the calendar, cancelled-but-undiscarded
        #: included (the ``heap_depth`` memory-pressure signal).
        self._calendar = 0
        #: Total events dispatched over this simulator's lifetime (the
        #: benchmarks' events/sec numerator).
        self.events_fired = 0
        #: Observability context (tracer/metrics/profiler).  Defaults to
        #: the process-wide default (a no-op unless e.g. the CLI installed
        #: a live one); components reach it as ``self.sim.obs``.
        self.obs = obs if obs is not None else get_default_obs()
        #: Called as ``hook(event, wall_seconds, heap_depth)`` after each
        #: fired event; None (the default) keeps the loop overhead-free.
        self._event_hook: Optional[Callable[[Event, float, int], None]] = None
        # -- causal provenance (off by default; see enable_provenance) --
        self._prov_enabled = False
        self._prov_run = 0
        self._prov_base = 0
        #: Provenance storage, indexed by ``seq - _prov_base``: parent
        #: seq (-1 for events scheduled outside any callback), fire
        #: time, and an id into the interned callback-name table.  All
        #: three are ``array`` buffers — untracked C storage — and the
        #: name table is interned at schedule time through a
        #: shared-identity key (``__func__``/``__code__``), so the
        #: history never retains a callback object.  Retaining even
        #: transiently measured ~15% of chaos-run wall time: callbacks
        #: promoted out of gen-0 before release inflate the cyclic GC's
        #: full-collection rate.  Untracked buffers keep provenance
        #: inside the <5% overhead budget.
        self._prov_parent = array("q")
        self._prov_time = array("d")
        self._prov_cb_id = array("q")
        self._prov_names: List[str] = []
        self._prov_name_ix: Dict[Any, int] = {}
        #: seq of the event whose callback is currently running (-1
        #: between events) — the parent every schedule() records.
        self._dispatch_seq = -1
        #: Flight-recorder feed: a bounded deque the dispatch loop
        #: appends to — bare seq ints when provenance can resolve them
        #: later, ``(run, time, seq, callback)`` tuples otherwise.
        self._flight: Optional[Any] = None
        self._flight_run = 0
        #: One flag guards all dispatch-side instrumentation so the
        #: default hot loop pays a single ``if`` per event.
        self._instrumented = False
        self.obs.bind(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 daemon: bool = False) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if not delay >= 0:  # rejects negative and NaN in one comparison
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        time = self.now + delay
        # Event construction is inlined (no __init__ call): schedule()
        # runs once per event and the call overhead is measurable.
        event = Event.__new__(Event)
        event.time = time
        event.seq = self._seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.daemon = daemon
        event.fired = False
        event._sim = self
        self._seq += 1
        if self._prov_enabled:
            key = getattr(callback, "__func__", callback)
            cb_id = self._prov_name_ix.get(key)
            if cb_id is None:
                cb_id = self._prov_intern(callback, key)
            self._prov_parent.append(self._dispatch_seq)
            self._prov_time.append(time)
            self._prov_cb_id.append(cb_id)
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = slot = [time, 0, [event]]
            heappush(self._heap, slot)
        else:
            slot[_EVENTS].append(event)
        if not daemon:
            self._foreground_pending += 1
        self._live += 1
        self._calendar += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    daemon: bool = False) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if not time >= self.now:  # rejects the past and NaN in one comparison
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now ({self.now!r})"
            )
        event = Event.__new__(Event)
        event.time = time
        event.seq = self._seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.daemon = daemon
        event.fired = False
        event._sim = self
        self._seq += 1
        if self._prov_enabled:
            key = getattr(callback, "__func__", callback)
            cb_id = self._prov_name_ix.get(key)
            if cb_id is None:
                cb_id = self._prov_intern(callback, key)
            self._prov_parent.append(self._dispatch_seq)
            self._prov_time.append(time)
            self._prov_cb_id.append(cb_id)
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = slot = [time, 0, [event]]
            heappush(self._heap, slot)
        else:
            slot[_EVENTS].append(event)
        if not daemon:
            self._foreground_pending += 1
        self._live += 1
        self._calendar += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the simulation time when the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier (so rate computations over the run window
        are well defined).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        slots = self._slots
        try:
            while heap and not self._stopped:
                slot = heap[0]
                events = slot[_EVENTS]
                head = slot[_HEAD]
                if head >= len(events):
                    heappop(heap)
                    del slots[slot[_TIME]]
                    continue
                time = slot[_TIME]
                if until is not None and time > until:
                    break
                # Drain the slot without touching the heap again.  The
                # bound is re-read every iteration because callbacks may
                # append same-time events to this very slot; the head
                # index is written back *before* each callback so that
                # peek()/step() called from inside one see a consistent
                # calendar.
                while head < len(events):
                    if until is None and self._foreground_pending == 0:
                        break  # only daemon housekeeping left
                    event = events[head]
                    events[head] = None  # free the entry
                    head += 1
                    slot[_HEAD] = head
                    self._calendar -= 1
                    if event.cancelled:
                        continue
                    event.fired = True
                    self._live -= 1
                    if not event.daemon:
                        self._foreground_pending -= 1
                    self.now = time
                    self.events_fired += 1
                    if self._instrumented:
                        self._dispatch_seq = event.seq
                        flight = self._flight
                        if flight is not None:
                            if self._prov_enabled:
                                # The provenance tables already hold
                                # (run, t, callback) for this seq; a bare
                                # int keeps the ring append allocation-free.
                                flight.append(event.seq)
                            else:
                                flight.append(
                                    (self._flight_run, time, event.seq,
                                     event.callback))
                    hook = self._event_hook
                    if hook is None:
                        event.callback(*event.args)
                    else:
                        start = perf_counter()
                        event.callback(*event.args)
                        hook(event, perf_counter() - start, self._calendar)
                    if self._stopped:
                        break
                else:
                    continue  # slot exhausted; pop it on the next pass
                break  # stopped, or only daemons remain on a horizonless run
        finally:
            self._running = False
            self._dispatch_seq = -1
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if none left."""
        heap = self._heap
        slots = self._slots
        while heap:
            slot = heap[0]
            events = slot[_EVENTS]
            head = slot[_HEAD]
            if head >= len(events):
                heappop(heap)
                del slots[slot[_TIME]]
                continue
            event = events[head]
            slot[_HEAD] = head + 1
            events[head] = None
            self._calendar -= 1
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            if not event.daemon:
                self._foreground_pending -= 1
            self.now = slot[_TIME]
            self.events_fired += 1
            self._fire(event)
            return True
        return False

    def _fire(self, event: Event) -> None:
        """Run one event's callback, feeding the hook when installed."""
        if self._instrumented:
            self._dispatch_seq = event.seq
            flight = self._flight
            if flight is not None:
                if self._prov_enabled:
                    flight.append(event.seq)
                else:
                    flight.append((self._flight_run, self.now, event.seq,
                                   event.callback))
        hook = self._event_hook
        if hook is None:
            event.callback(*event.args)
        else:
            start = perf_counter()
            event.callback(*event.args)
            hook(event, perf_counter() - start, self._calendar)
        if self._instrumented:
            self._dispatch_seq = -1

    def set_event_hook(
        self, hook: Optional[Callable[[Event, float, int], None]]
    ) -> None:
        """Install (or clear, with None) the per-event profiling hook.
        The hook observes only — it must not mutate the calendar."""
        self._event_hook = hook

    # ------------------------------------------------------------------
    # Causal provenance + flight-recorder feed
    # ------------------------------------------------------------------
    def enable_provenance(self, run: int = 0) -> None:
        """Start recording each scheduled event's parent.

        Only events scheduled *after* this call enter the DAG (the run
        index and the current sequence number become the id base).
        Idempotent; there is deliberately no ``disable`` — a run either
        carries provenance or it does not, so ids stay unambiguous.
        """
        if self._prov_enabled:
            return
        self._prov_enabled = True
        self._prov_run = run
        self._prov_base = self._seq
        self._prov_parent = array("q")
        self._prov_time = array("d")
        self._prov_cb_id = array("q")
        self._prov_names = []
        self._prov_name_ix = {}
        self._instrumented = True

    def _prov_intern(self, callback: Any, key: Any) -> int:
        """Slow path of the schedule-side name interning.

        The fast path keys on ``__func__`` (fresh-but-equal bound
        methods of one instance collapse to the shared function, which
        the interpreter keeps alive anyway).  A *fresh closure* misses
        that dict on every schedule, so it is resolved — and memoized —
        through its shared ``__code__`` instead; the closure object
        itself is never retained, only memo keys with program-lifetime
        identity (functions without free variables, code objects,
        name strings).  Distinct keys resolving to the same name share
        one id, keeping :attr:`_prov_names` canonical.
        """
        ix = self._prov_name_ix
        code = getattr(key, "__code__", None)
        if code is not None:
            cb_id = ix.get(code)
            if cb_id is None:
                cb_id = self._prov_intern_name(callback_name(callback))
                ix[code] = cb_id
            if key.__closure__ is None:
                ix[key] = cb_id  # plain function: stable fast-path key
            return cb_id
        # No __code__: a functor, builtin, or functools.partial.  Memo
        # by the object itself — retained, but such callbacks are rare
        # and typically long-lived.
        cb_id = self._prov_intern_name(callback_name(callback))
        ix[key] = cb_id
        return cb_id

    def _prov_intern_name(self, name: str) -> int:
        ix = self._prov_name_ix
        cb_id = ix.get(name)
        if cb_id is None:
            cb_id = len(self._prov_names)
            self._prov_names.append(name)
            ix[name] = cb_id
        return cb_id

    @property
    def provenance_enabled(self) -> bool:
        return self._prov_enabled

    @property
    def current_event_id(self) -> Optional[Tuple[int, int]]:
        """``(run, seq)`` of the event whose callback is running, or
        None (between events, or with provenance off)."""
        if not self._prov_enabled or self._dispatch_seq < 0:
            return None
        return (self._prov_run, self._dispatch_seq)

    def event_info(self, seq: int) -> Optional[Dict[str, Any]]:
        """Provenance record for one event id: ``{"run", "seq", "t",
        "callback", "parent"}`` (parent None at a DAG root)."""
        index = seq - self._prov_base
        if (not self._prov_enabled or index < 0
                or index >= len(self._prov_parent)):
            return None
        parent = self._prov_parent[index]
        return {
            "run": self._prov_run,
            "seq": seq,
            "t": round(self._prov_time[index], 9),
            "callback": self._prov_names[self._prov_cb_id[index]],
            "parent": parent if parent >= self._prov_base else None,
        }

    def ancestry(self, seq: Optional[int] = None,
                 max_depth: int = 48) -> List[Dict[str, Any]]:
        """The causal chain ending at ``seq`` (default: the currently
        dispatching event), newest first, at most ``max_depth`` entries.
        Empty when provenance is off or the id is unknown."""
        if seq is None:
            if self._dispatch_seq < 0:
                return []
            seq = self._dispatch_seq
        chain: List[Dict[str, Any]] = []
        while seq is not None and len(chain) < max_depth:
            info = self.event_info(seq)
            if info is None:
                break
            chain.append(info)
            seq = info["parent"]
        return chain

    def set_flight_feed(self, feed: Optional[Any], run: int = 0) -> None:
        """Attach (or detach, with None) the flight recorder's event
        ring: a bounded deque receiving one entry per dispatched event —
        a bare seq int when provenance is on (resolved lazily through
        :meth:`event_info`), a ``(run, t, seq, callback)`` tuple
        otherwise."""
        self._flight = feed
        self._flight_run = run
        self._instrumented = self._prov_enabled or feed is not None

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None.

        Discards cancelled events at the head of the calendar as it
        goes; their accounting was already settled by :meth:`Event.cancel`,
        so discarding is pure garbage collection.
        """
        heap = self._heap
        slots = self._slots
        while heap:
            slot = heap[0]
            events = slot[_EVENTS]
            head = slot[_HEAD]
            n = len(events)
            while head < n and events[head].cancelled:
                events[head] = None
                head += 1
                self._calendar -= 1
            slot[_HEAD] = head
            if head >= n:
                heappop(heap)
                del slots[slot[_TIME]]
                continue
            return slot[_TIME]
        return None

    @property
    def pending(self) -> int:
        """Number of live (not-yet-cancelled, not-yet-fired) events."""
        return self._live

    @property
    def heap_depth(self) -> int:
        """Calendar population (cancelled-but-undiscarded events
        included) — the profiler's memory-pressure signal."""
        return self._calendar
