"""Reproducible named random streams.

A single integer seed fans out into independent :class:`random.Random`
substreams keyed by name ("attacker", "client:0", "group-table:sw3", ...).
Components draw from their own stream, so adding a new random consumer to
a model does not perturb the draws observed by existing components — a
property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for deterministic, independent random substreams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        The substream seed is derived by hashing ``(seed, name)`` so that
        streams are independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}\x00{name}".encode("utf-8")).digest()
        substream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = substream
        return substream

    def __call__(self, name: str) -> random.Random:
        return self.stream(name)
