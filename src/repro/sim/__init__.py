"""Discrete-event simulation engine.

This package is the substrate for the whole reproduction: a deterministic
event loop (:mod:`repro.sim.engine`), generator-based processes
(:mod:`repro.sim.process`), bounded and round-robin queues
(:mod:`repro.sim.queues`), rate-limited servers and token buckets
(:mod:`repro.sim.ratelimit`), and reproducible named random streams
(:mod:`repro.sim.rng`).

Determinism contract: given the same seed and the same sequence of
schedule calls, a simulation replays identically.  Events that share a
timestamp fire in scheduling order (FIFO tie-break).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process
from repro.sim.queues import BoundedQueue, QueueFullError, RoundRobinScheduler
from repro.sim.ratelimit import RateLimitedServer, TokenBucket
from repro.sim.rng import RngRegistry

__all__ = [
    "BoundedQueue",
    "Event",
    "Process",
    "QueueFullError",
    "RateLimitedServer",
    "RngRegistry",
    "RoundRobinScheduler",
    "Simulator",
    "TokenBucket",
]
