"""Rate-limited servers and token buckets.

:class:`RateLimitedServer` is the workhorse used to model every finite-
capacity control-path stage in the paper: the OFA's Packet-In generator,
the OFA's rule-insertion engine, the controller's per-switch install rate
R, and the vSwitch control agents.  It is a single-server FIFO queue with
deterministic service time ``1 / rate`` and a bounded buffer; arrivals to
a full buffer are dropped (and counted), which is exactly the behaviour
observed in the paper's Figs. 3/4/9.

:class:`TokenBucket` models policing (drop-only baseline).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.queues import BoundedQueue


class RateLimitedServer:
    """Single-server FIFO with service rate ``rate`` items/second.

    ``handler(item)`` is invoked when an item completes service.  If
    ``drop_handler`` is given it is invoked with each item dropped on
    arrival to a full queue.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        queue_capacity: Optional[int],
        handler: Callable[[Any], None],
        name: str = "server",
        drop_handler: Optional[Callable[[Any], None]] = None,
    ):
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.sim = sim
        self.rate = rate
        self.handler = handler
        self.drop_handler = drop_handler
        self.name = name
        self.queue = BoundedQueue(queue_capacity, name=f"{name}.queue")
        self.busy = False
        self.served = 0
        self.dropped = 0

    @property
    def service_time(self) -> float:
        return 1.0 / self.rate

    def set_rate(self, rate: float) -> None:
        """Change the service rate; takes effect for the next service."""
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.rate = rate

    def submit(self, item: Any) -> bool:
        """Offer ``item``; returns False if it was dropped (queue full)."""
        if not self.queue.offer(item):
            self.dropped += 1
            if self.drop_handler is not None:
                self.drop_handler(item)
            return False
        if not self.busy:
            self._begin_service()
        return True

    def backlog(self) -> int:
        return len(self.queue)

    def _begin_service(self) -> None:
        self.busy = True
        item = self.queue.pop()
        self.sim.schedule(self.service_time, self._complete, item)

    def _complete(self, item: Any) -> None:
        self.served += 1
        # Hand the item to the handler *before* starting the next service
        # so downstream state reflects this completion at the same instant.
        self.handler(item)
        if self.queue:
            self._begin_service()
        else:
            self.busy = False


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, burst ``capacity``.

    Tokens are accrued lazily on each :meth:`allow` call, so the bucket
    adds no events to the simulation calendar.
    """

    def __init__(self, sim: Simulator, rate: float, capacity: float):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.sim = sim
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._last_refill = sim.now
        self.allowed = 0
        self.denied = 0

    def _refill(self) -> None:
        elapsed = self.sim.now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = self.sim.now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def allow(self, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; returns whether it conformed."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            self.allowed += 1
            return True
        self.denied += 1
        return False
