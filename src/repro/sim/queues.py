"""Bounded FIFO queues and the round-robin queue scheduler.

:class:`BoundedQueue` models any finite buffer (link queues, OFA input
queues, controller per-port queues).  :class:`RoundRobinScheduler` is the
fair service discipline the Scotch flow manager uses across ingress-port
queues (paper §5.2): each service opportunity goes to the next non-empty
queue in a fixed rotation.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Hashable, Iterable, Optional, Tuple


class QueueFullError(Exception):
    """Raised by :meth:`BoundedQueue.push` when the buffer is at capacity."""


class BoundedQueue:
    """FIFO with optional capacity; tracks drop and enqueue counters."""

    def __init__(self, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative or None")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def push(self, item: Any) -> None:
        """Enqueue ``item``; raises :class:`QueueFullError` (and counts a
        drop) if the queue is at capacity."""
        if self.full:
            self.dropped += 1
            raise QueueFullError(self.name or "queue full")
        self._items.append(item)
        self.enqueued += 1

    def offer(self, item: Any) -> bool:
        """Enqueue if there is room; returns False (counting a drop) otherwise."""
        if self.full:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Any:
        """Dequeue the oldest item; raises IndexError when empty."""
        return self._items.popleft()

    def pop_tail(self) -> Any:
        """Dequeue the *newest* item (the Scotch flow manager drains the
        over-threshold excess — the most recent arrivals — to the
        overlay)."""
        return self._items.pop()

    def peek(self) -> Any:
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()

    def __iter__(self):
        return iter(self._items)


class RoundRobinScheduler:
    """Fair round-robin service over a dynamic set of named queues.

    Queues are visited in the order they were first registered.  A
    ``select`` call returns the key of the next non-empty queue after the
    previously served one, or None if all queues are empty.
    """

    def __init__(self):
        self._queues: "OrderedDict[Hashable, BoundedQueue]" = OrderedDict()
        self._last_served: Optional[Hashable] = None
        # Rotation order + O(1) position lookup, so select() doesn't
        # rebuild and linearly search the key list on every service
        # opportunity (it is called once per served item).
        self._keys: list = []
        self._positions: Dict[Hashable, int] = {}

    def add_queue(self, key: Hashable, queue: BoundedQueue) -> None:
        if key in self._queues:
            raise ValueError(f"queue {key!r} already registered")
        self._queues[key] = queue
        self._positions[key] = len(self._keys)
        self._keys.append(key)

    def get_queue(self, key: Hashable) -> Optional[BoundedQueue]:
        return self._queues.get(key)

    def queues(self) -> Dict[Hashable, BoundedQueue]:
        return dict(self._queues)

    def total_backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def select(self) -> Optional[Hashable]:
        """Key of the next non-empty queue in rotation, or None."""
        keys = self._keys
        n = len(keys)
        if not n:
            return None
        position = self._positions.get(self._last_served)
        start = 0 if position is None else position + 1
        queues = self._queues
        for offset in range(n):
            key = keys[(start + offset) % n]
            if queues[key]:
                return key
        return None

    def pop_next(self) -> Optional[Tuple[Hashable, Any]]:
        """Dequeue one item from the next non-empty queue in rotation."""
        key = self.select()
        if key is None:
            return None
        self._last_served = key
        return key, self._queues[key].pop()

    def __iter__(self) -> Iterable[Hashable]:
        return iter(self._queues)
