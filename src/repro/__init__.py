"""Scotch (CoNEXT 2014) reproduction: elastic SDN control-plane scaling
with a vSwitch overlay.

The most useful entry points:

* :func:`repro.testbed.build_deployment` — the full Fig. 5 deployment
  (fabric + overlay + ScotchApp), ready to drive with traffic;
* :func:`repro.testbed.build_single_switch` — the Fig. 2 single-switch
  testbed used by the §3 measurements;
* :mod:`repro.testbed.experiments` — one runner per reproduced figure;
* :class:`repro.core.ScotchApp` / :class:`repro.core.ScotchOverlay` —
  the paper's contribution, usable on any topology you build with
  :class:`repro.net.Network`.
"""

__version__ = "1.0.0"

from repro.core import ScotchApp, ScotchConfig, ScotchOverlay
from repro.net import Network
from repro.sim import Simulator

__all__ = [
    "Network",
    "ScotchApp",
    "ScotchConfig",
    "ScotchOverlay",
    "Simulator",
    "__version__",
]
