"""Stateful middleboxes (paper §5.4, Fig. 8).

The policy-consistency design exists because middleboxes keep per-flow
state: a firewall that never saw a flow's first packet rejects its
mid-flow packets.  :class:`Firewall` models exactly that, which is what
the policy tests and the migration experiment use to demonstrate why
Scotch pins both the overlay and the physical path through the *same*
middlebox instance.

Middleboxes are bump-in-the-wire: two attachments (toward S_U and S_D);
a packet arriving on one side leaves on the other after ``latency``.
They are excluded from ordinary route computation (``Network.
exclude_from_routing``) so traffic only crosses them by explicit policy.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.net.flow import FlowKey
from repro.net.node import Node
from repro.net.packet import TCP_SYN, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Middlebox(Node):
    """Base bump-in-the-wire element with per-packet processing latency."""

    def __init__(self, sim: "Simulator", name: str, latency: float = 50e-6):
        super().__init__(sim, name)
        self.latency = latency
        self.packets_in = 0
        self.packets_dropped = 0

    def receive(self, packet: Packet, in_port: int) -> None:
        self.packets_in += packet.count
        if not self.admit(packet):
            self.packets_dropped += packet.count
            return
        out_port = self._other_port(in_port)
        if out_port is None:
            self.packets_dropped += packet.count
            return
        self.sim.schedule(self.latency, self.ports[out_port].send, packet)

    def _other_port(self, in_port: int) -> Optional[int]:
        others = [p for p in self.ports if p != in_port]
        return others[0] if others else None

    def admit(self, packet: Packet) -> bool:
        """Policy hook; subclasses decide whether the packet may pass."""
        return True


class Firewall(Middlebox):
    """Stateful firewall: admits flows whose first packet (SYN) it saw.

    A mid-flow packet of an unknown flow is dropped — the "lack of
    pre-established context" failure the paper warns about when a flow is
    naively re-routed through a different firewall instance.
    """

    def __init__(self, sim: "Simulator", name: str, latency: float = 50e-6):
        super().__init__(sim, name, latency)
        self._admitted: Set[FlowKey] = set()
        self.blocklist: Set[str] = set()
        self.rejected_unknown = 0
        self.rejected_blocked = 0

    def admit(self, packet: Packet) -> bool:
        if packet.src_ip in self.blocklist:
            self.rejected_blocked += packet.count
            return False
        key = packet.flow_key
        if key in self._admitted or key.reversed() in self._admitted:
            return True
        if packet.tcp_flag == TCP_SYN:
            self._admitted.add(key)
            return True
        self.rejected_unknown += packet.count
        return False

    def knows(self, key: FlowKey) -> bool:
        return key in self._admitted or key.reversed() in self._admitted


class LoadBalancerBox(Middlebox):
    """Stateful L4 load balancer: pins each flow to a backend on its
    first packet and rewrites the destination accordingly; mid-flow
    packets of unpinned flows are dropped (same state-dependence as the
    firewall)."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        backends: Optional[List[str]] = None,
        latency: float = 50e-6,
    ):
        super().__init__(sim, name, latency)
        self.backends = list(backends or [])
        self._assignments: Dict[FlowKey, str] = {}
        self.rejected_unknown = 0

    def admit(self, packet: Packet) -> bool:
        key = packet.flow_key
        backend = self._assignments.get(key)
        if backend is None:
            if packet.tcp_flag != TCP_SYN:
                self.rejected_unknown += packet.count
                return False
            if self.backends:
                index = zlib.crc32(str(key).encode("utf-8")) % len(self.backends)
                backend = self.backends[index]
                self._assignments[key] = backend
            else:
                return True
        if self.backends:
            packet.dst_ip = backend
        return True

    def assignment(self, key: FlowKey) -> Optional[str]:
        return self._assignments.get(key)
