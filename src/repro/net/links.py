"""Finite-rate links with drop-tail queues.

A :class:`DirectedLink` is one direction of a cable: serialization at
``rate_bps``, propagation ``delay`` seconds, and a drop-tail queue of
``queue_packets`` packet trains awaiting serialization.  ``connect``
builds both directions and returns the two new ports.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator

#: Default queue depth, in packet trains.  Deep enough that control-path
#: experiments never see link loss (the paper's point: the data plane is
#: uncongested), shallow enough that a saturated link drops.
DEFAULT_QUEUE = 1000


class DirectedLink:
    """One direction of a link, delivering into ``dst_node.receive``.

    The link is a FIFO server with a deterministic service time
    (``wire_bits / rate_bps``) and nothing can perturb a packet once it
    is accepted, so the whole serialize→propagate pipeline is computed
    arithmetically at transmit time and the simulation carries exactly
    one event per packet (the delivery).  Serialization-start times are
    kept per pending packet so the drop-tail decision sees the same
    queue depth the explicit per-stage events used to maintain.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate_bps: float,
        delay: float,
        dst_node: "Node",
        dst_port_no: int,
        queue_packets: int = DEFAULT_QUEUE,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("link delay must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.dst_node = dst_node
        self.dst_port_no = dst_port_no
        self.queue_packets = queue_packets
        self.name = name or f"->{dst_node.name}:{dst_port_no}"
        #: Serialization-start times of accepted-but-not-yet-serializing
        #: packets; the awaiting-serialization queue, as start times.
        self._pending_starts: Deque[float] = deque()
        self._busy_until = 0.0
        self.delivered = 0
        self.dropped = 0

    def transmit(self, packet: "Packet") -> None:
        """Accept for serialization; drop-tail when the queue is full."""
        now = self.sim.now
        pending = self._pending_starts
        # Packets whose serialization has begun (start <= now) have left
        # the awaiting queue; strict '>' keeps a start at exactly `now`
        # out of the depth, matching the event-per-stage ordering where
        # the serialization start fires before this transmit.
        while pending and pending[0] <= now:
            pending.popleft()
        if len(pending) >= self.queue_packets:
            self.dropped += packet.count
            return
        start = self._busy_until
        if start < now:
            start = now
        # packet.wire_bits, inlined (one property call per packet-hop adds up)
        done = start + (packet.size + packet._overhead) * 8 * packet.count / self.rate_bps
        self._busy_until = done
        pending.append(start)
        self.sim.schedule_at(done + self.delay, self._deliver, packet)

    def _deliver(self, packet: "Packet") -> None:
        self.delivered += packet.count
        self.dst_node.receive(packet, self.dst_port_no)

    @property
    def backlog(self) -> int:
        now = self.sim.now
        pending = self._pending_starts
        while pending and pending[0] <= now:
            pending.popleft()
        return len(pending)


def connect(
    sim: "Simulator",
    node_a: "Node",
    node_b: "Node",
    rate_bps: float = 1e9,
    delay: float = 50e-6,
    queue_packets: int = DEFAULT_QUEUE,
) -> Tuple["Port", "Port"]:
    """Wire a full-duplex link between two nodes.

    Returns ``(port_on_a, port_on_b)``.  Each side gets a fresh port and a
    DirectedLink toward the other.
    """
    port_a = node_a.allocate_port()
    port_b = node_b.allocate_port()
    port_a.attach(
        DirectedLink(
            sim,
            rate_bps,
            delay,
            node_b,
            port_b.port_no,
            queue_packets,
            name=f"{port_a.name}->{port_b.name}",
        )
    )
    port_b.attach(
        DirectedLink(
            sim,
            rate_bps,
            delay,
            node_a,
            port_a.port_no,
            queue_packets,
            name=f"{port_b.name}->{port_a.name}",
        )
    )
    return port_a, port_b
