"""Base class for everything attached to the network graph."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.ports import Port
    from repro.sim.engine import Simulator


class Node:
    """A named network element with numbered ports.

    Subclasses (switches, hosts, middleboxes) implement
    :meth:`receive` — called by the incoming link when a packet finishes
    its traversal.
    """

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self.ports: Dict[int, "Port"] = {}
        self._next_port_no = 1

    def allocate_port(self) -> "Port":
        """Create the next numbered port on this node."""
        from repro.net.ports import Port

        port_no = self._next_port_no
        self._next_port_no += 1
        port = Port(self, port_no)
        self.ports[port_no] = port
        return port

    def port(self, port_no: int) -> "Port":
        return self.ports[port_no]

    def port_to(self, neighbor_name: str) -> Optional["Port"]:
        """The port whose link leads to ``neighbor_name``, if any."""
        for port in self.ports.values():
            if port.link is not None and port.link.dst_node.name == neighbor_name:
                return port
        return None

    def receive(self, packet: "Packet", in_port: int) -> None:
        """Handle a packet arriving on ``in_port``.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
