"""Switch/host ports."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.links import DirectedLink
    from repro.net.node import Node
    from repro.net.packet import Packet


class Port:
    """One numbered port on a node; ``link`` is the outgoing direction."""

    def __init__(self, node: "Node", port_no: int):
        self.node = node
        self.port_no = port_no
        self.link: Optional["DirectedLink"] = None
        self.tx_packets = 0
        self.tx_bytes = 0

    @property
    def name(self) -> str:
        return f"{self.node.name}:{self.port_no}"

    def attach(self, link: "DirectedLink") -> None:
        if self.link is not None:
            raise ValueError(f"port {self.name} already attached")
        self.link = link

    def send(self, packet: "Packet") -> None:
        """Transmit onto the attached link; silently drops if unattached
        (an unattached port behaves like an unplugged cable)."""
        if self.link is None:
            return
        count = packet.count
        self.tx_packets += count
        self.tx_bytes += (packet.size + packet._overhead) * count  # wire_size, inlined
        self.link.transmit(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name}>"
