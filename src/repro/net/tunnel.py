"""Tunnels over the physical data plane.

A :class:`Tunnel` is a unidirectional MPLS (or GRE-keyed) path between
two nodes.  Configuration is *offline* (paper §5.6): the fabric installs
static label-switching rules at every transit switch and a terminal rule
at the egress, none of which touches any OFA.

Entering a tunnel is an action list (:meth:`Tunnel.entry_actions`) that
the sender executes — for Scotch this is what a group-table bucket at the
physical switch does, or what a vSwitch's per-flow overlay rule does.

Terminal behaviour is parameterized by ``terminal_pops``: switch-to-mesh
tunnels pop two labels (outer tunnel id + inner ingress-port label, §5.2)
while mesh and delivery tunnels pop one; the popped labels ride on the
packet so the vSwitch's Packet-In can carry them to the controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.topology import Network
from repro.switch.actions import (
    Action,
    GotoTable,
    Output,
    PopGre,
    PopMpls,
    PushMpls,
    SetGreKey,
)
from repro.switch.match import Match
from repro.switch.switch import OpenFlowSwitch

#: Table-0 priority for static tunnel label-switching rules.  Higher than
#: any reactive rule so encapsulated transit traffic never hits per-flow
#: state at transit switches.
TUNNEL_RULE_PRIORITY = 3000

#: Pipeline table where decapsulated packets continue at the egress.
EGRESS_CONTINUE_TABLE = 1


MPLS = "mpls"
GRE = "gre"


@dataclass
class Tunnel:
    """One configured unidirectional tunnel.

    ``kind`` selects the encapsulation: MPLS label-switching (default)
    or GRE keyed by the tunnel id — the paper's §4.1 allows "any of the
    available tunneling protocols, such as GRE, MPLS, MAC-in-MAC".
    """

    tunnel_id: int
    src: str
    dst: str
    path: List[str]
    terminal_pops: int = 1
    kind: str = MPLS

    def entry_actions(self, network: Network) -> List[Action]:
        """Actions the source executes to put a packet into the tunnel."""
        first_hop_port = network.port_between(self.src, self.path[1])
        encap = SetGreKey(self.tunnel_id) if self.kind == GRE else PushMpls(self.tunnel_id)
        return [encap, Output(first_hop_port)]

    def transit_match(self) -> Match:
        """The match transit switches use to label-switch this tunnel."""
        if self.kind == GRE:
            return Match(gre_key=self.tunnel_id)
        return Match(mpls_label=self.tunnel_id)

    def terminal_pop_actions(self) -> List[Action]:
        """Decapsulation at the egress: the outer header is this
        tunnel's kind; any further pops are inner MPLS labels (the §5.2
        ingress-port label is MPLS in both modes)."""
        if self.terminal_pops <= 0:
            return []
        outer: Action = PopGre() if self.kind == GRE else PopMpls()
        return [outer] + [PopMpls() for _ in range(self.terminal_pops - 1)]

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1


class TunnelFabric:
    """Creates tunnels and installs their static rules."""

    def __init__(self, network: Network, label_base: int = 100_000):
        self.network = network
        self.label_base = label_base
        self._next_label = label_base
        self.tunnels: Dict[int, Tunnel] = {}
        #: Full signature (src, dst, pops, extra actions) -> tunnel id,
        #: for idempotent creation.  Distinct signatures between the same
        #: endpoints are distinct tunnels (e.g. a pops=2 switch tunnel
        #: vs. a pops=1 mesh tunnel).
        self._by_signature: Dict[tuple, int] = {}

    def allocate_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    def create(
        self,
        src: str,
        dst: str,
        terminal_pops: int = 1,
        terminal_extra_actions: Optional[List[Action]] = None,
        kind: str = MPLS,
    ) -> Tunnel:
        """Build a tunnel from ``src`` to ``dst`` along the shortest
        physical path and install its static rules.  Idempotent per
        full signature: an existing identical tunnel is returned
        unchanged."""
        if kind not in (MPLS, GRE):
            raise ValueError(f"unknown tunnel kind {kind!r}")
        signature = (src, dst, terminal_pops, tuple(terminal_extra_actions or ()), kind)
        existing = self._by_signature.get(signature)
        if existing is not None:
            return self.tunnels[existing]

        path = self.network.shortest_path(src, dst)
        if len(path) < 2:
            raise ValueError(f"tunnel endpoints {src!r}->{dst!r} are not distinct nodes")
        tunnel = Tunnel(
            tunnel_id=self.allocate_label(),
            src=src,
            dst=dst,
            path=path,
            terminal_pops=terminal_pops,
            kind=kind,
        )

        # Label-switching rules at transit switches.
        for index in range(1, len(path) - 1):
            node = self.network[path[index]]
            if not isinstance(node, OpenFlowSwitch):
                raise TypeError(f"tunnel transit node {node.name!r} is not a switch")
            if not node.profile.supports_tunnels:
                raise ValueError(f"{node.name} ({node.profile.name}) cannot carry tunnels")
            out_port = self.network.port_between(path[index], path[index + 1])
            node.install_static(
                tunnel.transit_match(),
                priority=TUNNEL_RULE_PRIORITY,
                actions=[Output(out_port)],
            )

        # Terminal rule at the egress.
        egress = self.network[dst]
        if isinstance(egress, OpenFlowSwitch):
            actions: List[Action] = tunnel.terminal_pop_actions()
            actions.extend(terminal_extra_actions or [GotoTable(EGRESS_CONTINUE_TABLE)])
            egress.install_static(
                tunnel.transit_match(),
                priority=TUNNEL_RULE_PRIORITY,
                actions=actions,
            )
        # A non-switch egress (host) just receives the encapsulated packet;
        # hosts ignore residual encapsulation.

        self.tunnels[tunnel.tunnel_id] = tunnel
        self._by_signature[signature] = tunnel.tunnel_id
        return tunnel

    def get(self, tunnel_id: int) -> Optional[Tunnel]:
        return self.tunnels.get(tunnel_id)

    def between(self, src: str, dst: str) -> List[Tunnel]:
        """All tunnels between the endpoints (possibly several with
        different terminal behaviour)."""
        return [t for t in self.tunnels.values() if t.src == src and t.dst == dst]
