"""Network substrate: packets, flows, links, topology, tunnels, hosts.

This package models the data plane the paper's testbed runs on: Ethernet/
IP/TCP-style packets with MPLS/GRE encapsulation stacks, finite-rate
links with drop-tail queues, a topology registry (backed by networkx),
GRE/MPLS tunnels over the physical fabric, traffic-terminating hosts, and
the stateful middleboxes used by the policy-consistency design (paper
Fig. 8).

Topology builders (linear / leaf-spine / fat-tree) live in
:mod:`repro.net.builders`; import them from there directly — they depend
on the switch package, which in turn depends on this one, so they stay
out of the package namespace to avoid an import cycle.
"""

from repro.net.addresses import ip_to_int, int_to_ip, make_ip, make_mac
from repro.net.flow import FlowKey, flow_key_of
from repro.net.links import DirectedLink, connect
from repro.net.node import Node
from repro.net.packet import GreHeader, MplsHeader, Packet
from repro.net.ports import Port
from repro.net.topology import Network

__all__ = [
    "DirectedLink",
    "FlowKey",
    "GreHeader",
    "MplsHeader",
    "Network",
    "Node",
    "Packet",
    "Port",
    "connect",
    "flow_key_of",
    "int_to_ip",
    "ip_to_int",
    "make_ip",
    "make_mac",
]
