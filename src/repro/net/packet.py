"""Packet model with an MPLS/GRE encapsulation stack.

A :class:`Packet` carries the inner five-tuple plus a stack of
encapsulation headers (``encap``; the last element is outermost).  Scotch
uses a two-label scheme (paper §5.2): the physical switch pushes an inner
label that encodes the original ingress port, then the group-table bucket
pushes an outer label that identifies the tunnel; the vSwitch pops both
and attaches them to the Packet-In so the controller can recover the
(switch, port) the flow really entered on.

``count`` lets one Packet object stand for a back-to-back train of
identical data packets; every queue, rate and byte computation in the
simulator is ``count``-aware.  Control-path experiments always use
``count=1`` (each packet is its own new flow).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.net.flow import FlowKey

_packet_ids = itertools.count(1)

PROTO_TCP = 6
PROTO_UDP = 17

TCP_SYN = "SYN"
TCP_DATA = "DATA"
TCP_FIN = "FIN"


@dataclass(frozen=True)
class MplsHeader:
    """An MPLS shim header; ``label`` is the 20-bit label value."""

    label: int

    def __post_init__(self) -> None:
        if not 0 <= self.label < (1 << 20):
            raise ValueError(f"MPLS label out of range: {self.label!r}")


@dataclass(frozen=True)
class GreHeader:
    """A GRE header; ``key`` is the 32-bit GRE key."""

    key: int

    def __post_init__(self) -> None:
        if not 0 <= self.key < (1 << 32):
            raise ValueError(f"GRE key out of range: {self.key!r}")


Header = Union[MplsHeader, GreHeader]

#: Wire overhead per encapsulation header, bytes.
MPLS_OVERHEAD = 4
GRE_OVERHEAD = 42  # outer IP + GRE


class Packet:
    """A simulated packet (or a train of ``count`` identical packets)."""

    __slots__ = (
        "packet_id",
        "src_ip",
        "dst_ip",
        "proto",
        "src_port",
        "dst_port",
        "size",
        "count",
        "tcp_flag",
        "created_at",
        "encap",
        "_overhead",
        "popped_labels",
        "metadata",
        "hops",
    )

    def __init__(
        self,
        src_ip: str,
        dst_ip: str,
        proto: int = PROTO_TCP,
        src_port: int = 0,
        dst_port: int = 0,
        size: int = 1500,
        count: int = 1,
        tcp_flag: str = TCP_SYN,
        created_at: float = 0.0,
    ):
        if size <= 0:
            raise ValueError("packet size must be positive")
        if count <= 0:
            raise ValueError("packet count must be positive")
        self.packet_id: int = next(_packet_ids)
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.size = size
        self.count = count
        self.tcp_flag = tcp_flag
        self.created_at = created_at
        self.encap: List[Header] = []
        self._overhead = 0  # wire bytes added by encap, maintained by push/pop
        self.popped_labels: List[int] = []
        self.metadata: Dict[str, Any] = {}
        self.hops: List[str] = []

    # ------------------------------------------------------------------
    # Encapsulation
    # ------------------------------------------------------------------
    def push(self, header: Header) -> None:
        """Push an encapsulation header (becomes outermost)."""
        self.encap.append(header)
        self._overhead += MPLS_OVERHEAD if type(header) is MplsHeader else GRE_OVERHEAD

    def pop(self) -> Header:
        """Pop the outermost encapsulation header."""
        if not self.encap:
            raise ValueError("pop on packet with empty encap stack")
        header = self.encap.pop()
        self._overhead -= MPLS_OVERHEAD if type(header) is MplsHeader else GRE_OVERHEAD
        return header

    @property
    def outer(self) -> Optional[Header]:
        """Outermost encapsulation header, or None if bare."""
        return self.encap[-1] if self.encap else None

    @property
    def outer_mpls_label(self) -> Optional[int]:
        outer = self.outer
        return outer.label if isinstance(outer, MplsHeader) else None

    @property
    def outer_gre_key(self) -> Optional[int]:
        outer = self.outer
        return outer.key if isinstance(outer, GreHeader) else None

    @property
    def wire_size(self) -> int:
        """Per-packet size on the wire including encapsulation overhead."""
        return self.size + self._overhead

    @property
    def wire_bits(self) -> int:
        """Total bits for the whole train (used for link serialization)."""
        return (self.size + self._overhead) * 8 * self.count

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def flow_key(self) -> FlowKey:
        """The inner five-tuple (independent of encapsulation)."""
        return FlowKey(self.src_ip, self.dst_ip, self.proto, self.src_port, self.dst_port)

    def note_hop(self, node_name: str) -> None:
        """Record traversal of a node, for path-stretch metrics and loop checks."""
        self.hops.append(node_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        encap = "".join(
            f"+M{h.label}" if isinstance(h, MplsHeader) else f"+G{h.key}" for h in self.encap
        )
        return (
            f"<Packet #{self.packet_id} {self.src_ip}:{self.src_port}->"
            f"{self.dst_ip}:{self.dst_port} p{self.proto} {self.tcp_flag}"
            f" x{self.count}{encap}>"
        )
