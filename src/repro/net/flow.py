"""Flow identity and flow descriptors.

A flow is identified by its inner five-tuple, exactly as the paper's
controller installs rules "using both the source and destination IP
addresses" (§3.2) — a spoofed source therefore always looks like a new
flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional


class FlowKey(NamedTuple):
    """The canonical five-tuple flow identifier."""

    src_ip: str
    dst_ip: str
    proto: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction (server -> client)."""
        return FlowKey(self.dst_ip, self.src_ip, self.proto, self.dst_port, self.src_port)

    def __str__(self) -> str:
        return f"{self.src_ip}:{self.src_port}>{self.dst_ip}:{self.dst_port}/{self.proto}"


def flow_key_of(packet) -> FlowKey:
    """FlowKey of a packet's inner headers (encap-independent)."""
    return packet.flow_key


@dataclass
class FlowSpec:
    """A workload-level description of one flow to be generated.

    ``size_packets`` is the total number of data packets; ``packet_size``
    is the per-packet payload bytes; ``rate_pps`` the send rate after the
    first packet.  Single-packet flows (the paper's stress tests) have
    ``size_packets == 1``.
    """

    key: FlowKey
    start_time: float
    size_packets: int = 1
    packet_size: int = 1500
    rate_pps: float = 100.0
    batch: int = 1

    def __post_init__(self) -> None:
        if self.size_packets <= 0:
            raise ValueError("flow size must be at least one packet")
        if self.packet_size <= 0:
            raise ValueError("packet size must be positive")
        if self.rate_pps <= 0:
            raise ValueError("flow rate must be positive")
        if self.batch <= 0:
            raise ValueError("batch must be positive")

    @property
    def size_bytes(self) -> int:
        return self.size_packets * self.packet_size


@dataclass
class FlowRecord:
    """Per-flow delivery accounting kept by traffic sinks."""

    key: FlowKey
    first_sent_at: Optional[float] = None
    first_received_at: Optional[float] = None
    packets_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    last_received_at: Optional[float] = None

    @property
    def succeeded(self) -> bool:
        """A flow succeeded if at least one packet reached the sink (§3.2)."""
        return self.packets_received > 0

    @property
    def setup_latency(self) -> Optional[float]:
        """First-packet latency: send of first packet to its delivery."""
        if self.first_sent_at is None or self.first_received_at is None:
            return None
        return self.first_received_at - self.first_sent_at

    @property
    def completion_time(self) -> Optional[float]:
        """Time from first send to last delivered packet (FCT)."""
        if self.first_sent_at is None or self.last_received_at is None:
            return None
        return self.last_received_at - self.first_sent_at
