"""Hosts: traffic sources and sinks with tcpdump-style taps."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.metrics.recorder import PacketRecorder
from repro.net.flow import FlowSpec
from repro.net.node import Node
from repro.net.packet import TCP_DATA, TCP_SYN, Packet
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Host(Node):
    """An end host with one NIC, send/receive taps, and flow generation."""

    def __init__(self, sim: "Simulator", name: str, ip: str):
        super().__init__(sim, name)
        self.ip = ip
        self.sent_tap = PacketRecorder(f"{name}.sent")
        self.recv_tap = PacketRecorder(f"{name}.recv")
        self.on_receive: Optional[Callable[[Packet], None]] = None

    @property
    def nic(self):
        """The host's single NIC port (first allocated)."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no attached link")
        return self.ports[min(self.ports)]

    def receive(self, packet: Packet, in_port: int) -> None:
        # Residual encapsulation is stripped by the NIC (a host that
        # terminates a tunnel just sees the inner packet).
        while packet.encap:
            packet.pop()
        self.recv_tap.on_receive(packet, self.sim.now)
        if self.on_receive is not None:
            self.on_receive(packet)

    def send(self, packet: Packet) -> None:
        self.sent_tap.on_send(packet, self.sim.now)
        self.nic.send(packet)

    # ------------------------------------------------------------------
    # Flow generation
    # ------------------------------------------------------------------
    def start_flow(self, spec: FlowSpec) -> None:
        """Send a flow described by ``spec`` starting at ``spec.start_time``
        (absolute simulation time; must not be in the past)."""
        if spec.size_packets == 1:
            self.sim.schedule_at(spec.start_time, self._send_single, spec)
        else:
            self.sim.schedule_at(spec.start_time, self._start_multi, spec)

    def _make_packet(self, spec: FlowSpec, flag: str, count: int = 1) -> Packet:
        key = spec.key
        return Packet(
            src_ip=key.src_ip,
            dst_ip=key.dst_ip,
            proto=key.proto,
            src_port=key.src_port,
            dst_port=key.dst_port,
            size=spec.packet_size,
            count=count,
            tcp_flag=flag,
            created_at=self.sim.now,
        )

    def _send_single(self, spec: FlowSpec) -> None:
        self.send(self._make_packet(spec, TCP_SYN))

    def _start_multi(self, spec: FlowSpec) -> None:
        self.send(self._make_packet(spec, TCP_SYN))
        remaining = spec.size_packets - 1
        if remaining > 0:
            Process(self.sim, self._pump(spec, remaining), start_delay=1.0 / spec.rate_pps)

    def _pump(self, spec: FlowSpec, remaining: int):
        """Emit the rest of the flow at ``rate_pps``, batching ``spec.batch``
        packets into one train to bound event count for elephants."""
        while remaining > 0:
            count = min(spec.batch, remaining)
            self.send(self._make_packet(spec, TCP_DATA, count=count))
            remaining -= count
            if remaining > 0:
                yield count / spec.rate_pps


class EchoServer(Host):
    """A host that acknowledges what it receives.

    For every arriving packet train it sends a small ACK train back to
    the source.  The ACK's five-tuple is the reverse of the flow's, so
    at the first switch it looks like a brand-new flow and exercises the
    whole reactive path in the server->client direction — this is how
    bidirectional workloads are modelled (no TCP state machine; one ACK
    per received train).
    """

    ACK_SIZE = 60

    def __init__(self, sim: "Simulator", name: str, ip: str):
        super().__init__(sim, name, ip)
        self.acks_sent = 0
        self._acked = set()

    def receive(self, packet: Packet, in_port: int) -> None:
        super().receive(packet, in_port)
        # Do not ack ACKs (the peer may also be an EchoServer).
        if packet.metadata.get("is_ack"):
            return
        reverse = packet.flow_key.reversed()
        # The first ACK of a flow is flagged SYN so stateful middleboxes
        # admit the reverse direction.
        first = reverse not in self._acked
        self._acked.add(reverse)
        ack = Packet(
            src_ip=reverse.src_ip,
            dst_ip=reverse.dst_ip,
            proto=reverse.proto,
            src_port=reverse.src_port,
            dst_port=reverse.dst_port,
            size=self.ACK_SIZE,
            count=packet.count,
            tcp_flag=TCP_SYN if first else TCP_DATA,
            created_at=self.sim.now,
        )
        ack.metadata["is_ack"] = True
        self.acks_sent += ack.count
        self.send(ack)
