"""IPv4 and MAC address helpers.

Addresses are plain dotted-quad strings throughout the simulator (they
are only ever compared and hashed); these helpers convert to/from the
32-bit integer form used by the spoofed-source generators.
"""

from __future__ import annotations

import random


def ip_to_int(address: str) -> int:
    """Dotted quad -> 32-bit integer.  Raises ValueError on bad input."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer -> dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value!r}")
    return f"{value >> 24}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def make_ip(net: int, host: int) -> str:
    """Address ``10.<net>.<host/256>.<host%256>`` — the lab addressing plan."""
    if not 0 <= net <= 255:
        raise ValueError("net must fit in one octet")
    if not 0 <= host <= 0xFFFF:
        raise ValueError("host must fit in two octets")
    return f"10.{net}.{host >> 8}.{host & 0xFF}"


def make_mac(index: int) -> str:
    """Locally administered MAC ``02:00:...`` from a flat index."""
    if not 0 <= index <= 0xFFFFFFFF:
        raise ValueError("mac index out of range")
    octets = [0x02, 0x00] + [(index >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    return ":".join(f"{o:02x}" for o in octets)


def random_spoofed_ip(rng: random.Random) -> str:
    """A uniformly random unicast address, as hping3's --rand-source does.

    Avoids 0.x and 255.x first octets so every spoofed source looks like
    plausible unicast; collisions across draws are possible but as rare
    as in the real tool.
    """
    return int_to_ip(rng.randrange(0x01000000, 0xFF000000))
