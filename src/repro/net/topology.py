"""Topology registry and path computation.

:class:`Network` owns every node, wires links (recording them in a
networkx graph with delay weights), and answers shortest-path queries for
the controller's route computation.  Middleboxes are excluded from path
computation by default — traffic only traverses them when a policy
explicitly routes through them (paper §5.4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

import networkx as nx

from repro.net.links import connect
from repro.net.node import Node
from repro.sim.engine import Simulator


class Network:
    """The physical topology: nodes, links, and routing queries."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.graph = nx.Graph()
        self._routing_excluded: set = set()
        self._path_cache: Dict[Tuple[str, str, FrozenSet[str]], List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.graph.add_node(node.name)
        self._path_cache.clear()
        return node

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def link(
        self,
        a: str,
        b: str,
        rate_bps: float = 1e9,
        delay: float = 50e-6,
        queue_packets: int = 1000,
    ) -> Tuple[int, int]:
        """Wire a full-duplex link; returns the new (port on a, port on b)."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        port_a, port_b = connect(self.sim, node_a, node_b, rate_bps, delay, queue_packets)
        self.graph.add_edge(
            a,
            b,
            delay=delay,
            rate_bps=rate_bps,
            ports={a: port_a.port_no, b: port_b.port_no},
        )
        self._path_cache.clear()
        return port_a.port_no, port_b.port_no

    def exclude_from_routing(self, name: str) -> None:
        """Never route *through* this node (middleboxes, paper §5.4);
        it may still be a path endpoint."""
        self._routing_excluded.add(name)
        self._path_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def port_between(self, a: str, b: str) -> int:
        """Port number on ``a`` of the direct link to ``b``."""
        data = self.graph.get_edge_data(a, b)
        if data is None:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return data["ports"][a]

    def neighbors(self, name: str) -> List[str]:
        return list(self.graph.neighbors(name))

    def shortest_path(
        self,
        src: str,
        dst: str,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Minimum-delay node path from src to dst.

        Routing-excluded nodes (middleboxes) and ``exclude`` are not used
        as transit hops; endpoints are always permitted.  Raises
        ``networkx.NetworkXNoPath`` if disconnected.
        """
        banned = frozenset(self._routing_excluded | set(exclude)) - {src, dst}
        cache_key = (src, dst, banned)
        cached = self._path_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        if banned:
            view = nx.subgraph_view(self.graph, filter_node=lambda n: n not in banned)
        else:
            view = self.graph
        path = nx.shortest_path(view, src, dst, weight="delay")
        self._path_cache[cache_key] = list(path)
        return path

    def path_delay(self, path: List[str]) -> float:
        """Sum of propagation delays along a node path."""
        return sum(
            self.graph.edges[path[i], path[i + 1]]["delay"] for i in range(len(path) - 1)
        )

    def hop_ports(self, path: List[str]) -> List[Tuple[str, int]]:
        """[(node, egress port_no)] for each forwarding hop of ``path``."""
        return [
            (path[i], self.port_between(path[i], path[i + 1]))
            for i in range(len(path) - 1)
        ]
