"""Canonical topology builders: linear, leaf-spine, fat-tree.

DESIGN.md's inventory calls for standard data-center shapes; these
builders produce a :class:`~repro.net.topology.Network` plus handles to
the switches/hosts, ready for a controller and (optionally) a Scotch
overlay.  They only build the *physical* underlay — overlay construction
stays explicit so tests and scenarios control vSwitch placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import PICA8_PRONTO_3780, SwitchProfile
from repro.switch.switch import PhysicalSwitch

FABRIC_BPS = 10e9
HOST_BPS = 1e9


@dataclass
class BuiltTopology:
    """A physical underlay plus convenient handles."""

    sim: Simulator
    network: Network
    switches: List[PhysicalSwitch]
    hosts: List[Host]
    #: Layer name -> switch names (e.g. "leaf", "spine", "core"...).
    layers: Dict[str, List[str]] = field(default_factory=dict)

    def host_ips(self) -> List[str]:
        return [h.ip for h in self.hosts]


def linear(
    n_switches: int,
    hosts_per_switch: int = 1,
    seed: int = 0,
    profile: SwitchProfile = PICA8_PRONTO_3780,
) -> BuiltTopology:
    """A chain s0 - s1 - ... with hosts hanging off every switch."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    sim = Simulator(seed=seed)
    network = Network(sim)
    switches, hosts = [], []
    for index in range(n_switches):
        switches.append(network.add(PhysicalSwitch(sim, f"s{index}", profile)))
        if index:
            network.link(f"s{index - 1}", f"s{index}", FABRIC_BPS)
        for h in range(hosts_per_switch):
            host = network.add(Host(sim, f"h{index}_{h}", f"10.0.{index}.{h + 1}"))
            network.link(host.name, f"s{index}", HOST_BPS)
            hosts.append(host)
    return BuiltTopology(sim, network, switches, hosts,
                         layers={"chain": [s.name for s in switches]})


def leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    seed: int = 0,
    profile: SwitchProfile = PICA8_PRONTO_3780,
) -> BuiltTopology:
    """The standard two-tier Clos: every leaf links to every spine."""
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    sim = Simulator(seed=seed)
    network = Network(sim)
    switches, hosts = [], []
    spine_names, leaf_names = [], []
    for index in range(spines):
        switch = network.add(PhysicalSwitch(sim, f"spine{index}", profile))
        switches.append(switch)
        spine_names.append(switch.name)
    for index in range(leaves):
        leaf = network.add(PhysicalSwitch(sim, f"leaf{index}", profile))
        switches.append(leaf)
        leaf_names.append(leaf.name)
        for spine in spine_names:
            network.link(leaf.name, spine, FABRIC_BPS)
        for h in range(hosts_per_leaf):
            host = network.add(Host(sim, f"h{index}_{h}", f"10.0.{index}.{h + 1}"))
            network.link(host.name, leaf.name, HOST_BPS)
            hosts.append(host)
    return BuiltTopology(sim, network, switches, hosts,
                         layers={"spine": spine_names, "leaf": leaf_names})


def fat_tree(
    k: int = 4,
    seed: int = 0,
    profile: SwitchProfile = PICA8_PRONTO_3780,
) -> BuiltTopology:
    """The classic k-ary fat-tree (k even): (k/2)^2 cores, k pods of
    k/2 aggregation + k/2 edge switches, (k/2)^2 hosts per pod... scaled
    to one host per edge switch to keep simulations tractable."""
    if k < 2 or k % 2:
        raise ValueError("k must be an even integer >= 2")
    half = k // 2
    sim = Simulator(seed=seed)
    network = Network(sim)
    switches, hosts = [], []
    cores, aggs, edges = [], [], []

    for index in range(half * half):
        core = network.add(PhysicalSwitch(sim, f"core{index}", profile))
        switches.append(core)
        cores.append(core.name)
    for pod in range(k):
        pod_aggs, pod_edges = [], []
        for a in range(half):
            agg = network.add(PhysicalSwitch(sim, f"agg{pod}_{a}", profile))
            switches.append(agg)
            aggs.append(agg.name)
            pod_aggs.append(agg.name)
            # Each aggregation switch links to `half` cores.
            for c in range(half):
                network.link(agg.name, f"core{a * half + c}", FABRIC_BPS)
        for e in range(half):
            edge = network.add(PhysicalSwitch(sim, f"edge{pod}_{e}", profile))
            switches.append(edge)
            edges.append(edge.name)
            pod_edges.append(edge.name)
            for agg in pod_aggs:
                network.link(edge.name, agg, FABRIC_BPS)
            host = network.add(Host(sim, f"h{pod}_{e}", f"10.{pod}.{e}.1"))
            network.link(host.name, edge.name, HOST_BPS)
            hosts.append(host)
    return BuiltTopology(sim, network, switches, hosts,
                         layers={"core": cores, "agg": aggs, "edge": edges})
