"""Workload generation: clients, attackers, flow-size models, traces.

The paper's traffic tools are replaced 1:1: hping3's spoofed-source SYN
flood becomes :class:`~repro.traffic.attack.SpoofedFlood`; the legitimate
client that "simulates new flows by spoofing each packet's source IP"
(§3.2) becomes :class:`~repro.traffic.generators.NewFlowSource`; the
trace-driven experiment uses the synthetic heavy-tailed trace of
:mod:`repro.traffic.trace` (most flows are mice, most bytes are in a few
elephants — the property §5.3's migration design depends on, citing [1]).
"""

from repro.traffic.attack import SpoofedFlood
from repro.traffic.generators import NewFlowSource, flow_key_sequence
from repro.traffic.sizes import FixedSize, HeavyTailedSizes, SizeSample
from repro.traffic.trace import TraceRecord, TraceReplayer, generate_trace, read_trace, write_trace

__all__ = [
    "FixedSize",
    "HeavyTailedSizes",
    "NewFlowSource",
    "SizeSample",
    "SpoofedFlood",
    "TraceRecord",
    "TraceReplayer",
    "flow_key_sequence",
    "generate_trace",
    "read_trace",
    "write_trace",
]
