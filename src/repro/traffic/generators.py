"""New-flow generators for legitimate clients.

Per the paper's methodology (§3.2), each generated flow has a unique
five-tuple so the switch treats every flow's first packet as a table
miss; the client tap + server tap pair then yields the failure fraction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.net.addresses import make_ip
from repro.net.flow import FlowKey, FlowSpec
from repro.net.packet import PROTO_TCP
from repro.sim.process import Process
from repro.traffic.sizes import FixedSize

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.engine import Simulator


def flow_key_sequence(
    dst_ip: str,
    dst_port: int = 80,
    src_net: int = 20,
    proto: int = PROTO_TCP,
    source_pool: Optional[int] = None,
) -> Iterator[FlowKey]:
    """An endless stream of unique five-tuples toward one destination.

    By default source addresses walk ``10.<src_net>.x.y`` and ports walk
    the ephemeral range, guaranteeing uniqueness for billions of flows
    without randomness (so client flows never collide with the
    attacker's random spoofed sources, which use non-10/8 space).

    ``source_pool`` limits the distinct sources to that many addresses
    (ports vary instead) — the shape of a *flash crowd*: many flows from
    a bounded set of real clients, as opposed to a spoofed flood's fresh
    source per packet.
    """
    index = 0
    while True:
        if source_pool is not None:
            src_ip = make_ip(src_net, index % source_pool)
            src_port = 1024 + (index // source_pool) % 60000
        else:
            src_ip = make_ip(src_net, index % 65536)
            src_port = 1024 + (index // 65536) % 60000
        yield FlowKey(src_ip, dst_ip, proto, src_port, dst_port)
        index += 1


class NewFlowSource:
    """Generates new flows from a host at a configurable rate.

    ``poisson=False`` gives the constant spacing the paper's profiling
    experiments use; ``poisson=True`` gives memoryless arrivals for the
    trace-style scenarios.  Flow sizes come from a size model
    (default: single-packet flows, the paper's stress shape).
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        dst_ip: str,
        rate_fps: float,
        dst_port: int = 80,
        src_net: int = 20,
        sizes=None,
        poisson: bool = False,
        rng_name: Optional[str] = None,
        batch: int = 1,
        jitter: float = 0.05,
        source_pool: Optional[int] = None,
    ):
        if rate_fps <= 0:
            raise ValueError("flow rate must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if source_pool is not None and source_pool < 1:
            raise ValueError("source_pool must be positive")
        self.jitter = jitter
        self.source_pool = source_pool
        self.sim = sim
        self.host = host
        self.rate_fps = rate_fps
        self.sizes = sizes or FixedSize()
        self.poisson = poisson
        self.batch = batch
        self._keys = flow_key_sequence(
            dst_ip, dst_port=dst_port, src_net=src_net, source_pool=source_pool
        )
        self._rng = sim.rng.stream(rng_name or f"client:{host.name}")
        self.flows_started = 0
        self._process: Optional[Process] = None

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        self._stop_at = stop_at
        self._process = Process(self.sim, self._run(), start_delay=at)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    def _next_gap(self) -> float:
        """Inter-flow gap.  Constant-rate gaps get a small multiplicative
        jitter — the OS scheduling noise real traffic tools exhibit —
        which prevents artificial phase locking between CBR sources and
        the OFA's deterministic service clock."""
        if self.poisson:
            return self._rng.expovariate(self.rate_fps)
        gap = 1.0 / self.rate_fps
        if self.jitter:
            gap *= self._rng.uniform(1 - self.jitter, 1 + self.jitter)
        return gap

    def _run(self):
        while self._stop_at is None or self.sim.now < self._stop_at:
            sample = self.sizes.sample(self._rng)
            spec = FlowSpec(
                key=next(self._keys),
                start_time=self.sim.now,
                size_packets=sample.size_packets,
                packet_size=sample.packet_size,
                rate_pps=sample.rate_pps,
                batch=self.batch,
            )
            self.host.start_flow(spec)
            self.flows_started += 1
            yield self._next_gap()
