"""Flow size models.

The migration design rests on the measured skew the paper cites:
"Measurement studies have shown that the majority of link capacity is
consumed by a small fraction of large flows" (§5.3, citing [1]).
:class:`HeavyTailedSizes` reproduces that skew with a mice/elephant
mixture: flows are small with high probability, and a small elephant
fraction carries most bytes (Pareto-tailed sizes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SizeSample:
    """One sampled flow: packet count, per-packet bytes, send rate."""

    size_packets: int
    packet_size: int
    rate_pps: float
    is_elephant: bool = False


class FixedSize:
    """Every flow identical — the paper's stress tests use 1-packet flows."""

    def __init__(self, size_packets: int = 1, packet_size: int = 1500, rate_pps: float = 100.0):
        self.size_packets = size_packets
        self.packet_size = packet_size
        self.rate_pps = rate_pps

    def sample(self, rng: random.Random) -> SizeSample:
        return SizeSample(self.size_packets, self.packet_size, self.rate_pps)


class HeavyTailedSizes:
    """Mice/elephant mixture with Pareto-tailed elephant sizes.

    Defaults produce ~95% mice averaging a handful of packets and ~5%
    elephants averaging ``elephant_mean_pkts``, so elephants carry the
    large majority of bytes.
    """

    def __init__(
        self,
        elephant_fraction: float = 0.05,
        mice_mean_pkts: float = 5.0,
        elephant_mean_pkts: float = 2000.0,
        pareto_alpha: float = 1.5,
        packet_size: int = 1500,
        mice_rate_pps: float = 100.0,
        elephant_rate_pps: float = 2000.0,
    ):
        if not 0 <= elephant_fraction <= 1:
            raise ValueError("elephant_fraction must be in [0, 1]")
        if pareto_alpha <= 1:
            raise ValueError("pareto_alpha must exceed 1 for a finite mean")
        self.elephant_fraction = elephant_fraction
        self.mice_mean_pkts = mice_mean_pkts
        self.elephant_mean_pkts = elephant_mean_pkts
        self.pareto_alpha = pareto_alpha
        self.packet_size = packet_size
        self.mice_rate_pps = mice_rate_pps
        self.elephant_rate_pps = elephant_rate_pps
        # Pareto minimum chosen so the tail mean equals elephant_mean_pkts:
        # E[X] = alpha * xm / (alpha - 1).
        self._pareto_xm = elephant_mean_pkts * (pareto_alpha - 1) / pareto_alpha

    def sample(self, rng: random.Random) -> SizeSample:
        if rng.random() < self.elephant_fraction:
            size = max(2, int(self._pareto_xm * rng.paretovariate(self.pareto_alpha)))
            return SizeSample(size, self.packet_size, self.elephant_rate_pps, is_elephant=True)
        size = max(1, int(rng.expovariate(1.0 / self.mice_mean_pkts)) + 1)
        return SizeSample(size, self.packet_size, self.mice_rate_pps, is_elephant=False)
