"""The DDoS attacker: a spoofed-source SYN flood (hping3 equivalent).

"We use hping3 to generate attacking traffic ... We simulate the new
flows by spoofing each packet's source IP address. Since the OpenFlow
controller installs the flow rules at the switch using both the source
and destination IP addresses, a spoofed packet is treated as a new flow
by the switch. Hence the flow rate ... is equivalent to the packet
rate." (§3.2)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addresses import random_spoofed_ip
from repro.net.packet import PROTO_TCP, TCP_SYN, Packet
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.engine import Simulator

#: hping3 sends minimum-size SYNs; 60 bytes on the wire.
SYN_PACKET_SIZE = 60


class SpoofedFlood:
    """Constant-rate flood of single-packet "flows" with random sources."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        dst_ip: str,
        rate_fps: float,
        dst_port: int = 80,
        packet_size: int = SYN_PACKET_SIZE,
        rng_name: Optional[str] = None,
        jitter: float = 0.05,
    ):
        if rate_fps <= 0:
            raise ValueError("attack rate must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self.jitter = jitter
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.rate_fps = rate_fps
        self.packet_size = packet_size
        self._rng = sim.rng.stream(rng_name or f"attacker:{host.name}")
        self.packets_sent = 0
        self._process: Optional[Process] = None
        self._stop_at: Optional[float] = None

    def set_rate(self, rate_fps: float) -> None:
        if rate_fps <= 0:
            raise ValueError("attack rate must be positive")
        self.rate_fps = rate_fps

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        self._stop_at = stop_at
        self._process = Process(self.sim, self._run(), start_delay=at)

    def stop(self) -> None:
        self._stop_at = self.sim.now
        if self._process is not None:
            self._process.stop()

    def _run(self):
        while self._stop_at is None or self.sim.now < self._stop_at:
            packet = Packet(
                src_ip=random_spoofed_ip(self._rng),
                dst_ip=self.dst_ip,
                proto=PROTO_TCP,
                src_port=self._rng.randrange(1024, 65536),
                dst_port=self.dst_port,
                size=self.packet_size,
                tcp_flag=TCP_SYN,
                created_at=self.sim.now,
            )
            self.host.send(packet)
            self.packets_sent += 1
            gap = 1.0 / self.rate_fps
            if self.jitter:
                # hping3's pacing is not cycle-accurate; the jitter also
                # prevents artificial phase locking with the OFA clock.
                gap *= self._rng.uniform(1 - self.jitter, 1 + self.jitter)
            yield gap
