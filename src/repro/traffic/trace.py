"""Synthetic traces for the trace-driven experiment.

The paper's trace-driven run uses a "realistic network environment"; we
substitute a synthetic data-center-style trace (see DESIGN.md §4): flow
arrivals are Poisson with a configurable surge phase (the flash crowd /
attack window), and sizes are heavy-tailed.  Traces are plain CSV so
experiments are inspectable and re-runnable byte-for-byte.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.net.flow import FlowKey, FlowSpec
from repro.traffic.generators import flow_key_sequence
from repro.traffic.sizes import HeavyTailedSizes

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One flow in a trace."""

    time: float
    src_host: str
    key: FlowKey
    size_packets: int
    packet_size: int
    rate_pps: float


def generate_trace(
    rng: random.Random,
    src_hosts: Sequence[str],
    dst_ips: Sequence[str],
    base_rate_fps: float,
    duration: float,
    surge_start: Optional[float] = None,
    surge_end: Optional[float] = None,
    surge_multiplier: float = 10.0,
    sizes: Optional[HeavyTailedSizes] = None,
) -> List[TraceRecord]:
    """A Poisson trace with an optional rate surge window.

    Flow sources/destinations are chosen uniformly; five-tuples are
    unique across the trace.
    """
    if not src_hosts or not dst_ips:
        raise ValueError("need at least one source and one destination")
    sizes = sizes or HeavyTailedSizes()
    keygens: Dict[str, Iterable] = {
        ip: flow_key_sequence(ip, src_net=30 + i % 200) for i, ip in enumerate(dst_ips)
    }
    records: List[TraceRecord] = []
    now = 0.0
    while True:
        rate = base_rate_fps
        if surge_start is not None and surge_end is not None and surge_start <= now < surge_end:
            rate = base_rate_fps * surge_multiplier
        now += rng.expovariate(rate)
        if now >= duration:
            break
        dst_ip = rng.choice(dst_ips)
        sample = sizes.sample(rng)
        records.append(
            TraceRecord(
                time=now,
                src_host=rng.choice(src_hosts),
                key=next(keygens[dst_ip]),
                size_packets=sample.size_packets,
                packet_size=sample.packet_size,
                rate_pps=sample.rate_pps,
            )
        )
    return records


def write_trace(path: str, records: Iterable[TraceRecord]) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time", "src_host", "src_ip", "dst_ip", "proto", "src_port", "dst_port",
             "size_packets", "packet_size", "rate_pps"]
        )
        for r in records:
            writer.writerow(
                [f"{r.time:.6f}", r.src_host, r.key.src_ip, r.key.dst_ip, r.key.proto,
                 r.key.src_port, r.key.dst_port, r.size_packets, r.packet_size, r.rate_pps]
            )


def read_trace(path: str) -> List[TraceRecord]:
    records: List[TraceRecord] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                TraceRecord(
                    time=float(row["time"]),
                    src_host=row["src_host"],
                    key=FlowKey(
                        row["src_ip"],
                        row["dst_ip"],
                        int(row["proto"]),
                        int(row["src_port"]),
                        int(row["dst_port"]),
                    ),
                    size_packets=int(row["size_packets"]),
                    packet_size=int(row["packet_size"]),
                    rate_pps=float(row["rate_pps"]),
                )
            )
    return records


class TraceReplayer:
    """Schedules every trace record onto its source host."""

    def __init__(self, sim: "Simulator", hosts: Dict[str, "Host"], batch: int = 10):
        self.sim = sim
        self.hosts = hosts
        self.batch = batch
        self.flows_scheduled = 0

    def schedule(self, records: Iterable[TraceRecord], offset: float = 0.0) -> None:
        for record in records:
            host = self.hosts.get(record.src_host)
            if host is None:
                raise KeyError(f"trace references unknown host {record.src_host!r}")
            spec = FlowSpec(
                key=record.key,
                start_time=record.time + offset,
                size_packets=record.size_packets,
                packet_size=record.packet_size,
                rate_pps=record.rate_pps,
                batch=self.batch,
            )
            host.start_flow(spec)
            self.flows_scheduled += 1
