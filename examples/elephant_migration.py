#!/usr/bin/env python3
"""Elephant migration: large flows return from the overlay to hardware.

Demonstrates §5.3.  Under control-path congestion, new flows are split:
the rate-R head service admits what the physical network can take, the
rest rides the vSwitch overlay.  Which path any *individual* flow gets
is a race between the two drains — so this demo launches a herd of
elephants: the ones that landed on the overlay are detected via vSwitch
flow stats once they cross the packet threshold and are migrated to
physical paths (first-hop rule last, so the hand-over is lossless).

Run:  python examples/elephant_migration.py
"""

from repro.core.config import ScotchConfig
from repro.net.flow import FlowKey, FlowSpec
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood

HERD = 8
ELEPHANT_PACKETS = 6000
ELEPHANT_PPS = 600.0


def main() -> None:
    deployment = build_deployment(
        seed=12, racks=2, mesh_per_rack=1,
        config=ScotchConfig(overlay_threshold=2),
    )
    sim = deployment.sim
    app = deployment.scotch
    server_ip = deployment.servers[0].ip

    flood = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=3000.0)
    flood.start(at=0.5, stop_at=18.0)

    keys = []
    for index in range(HERD):
        key = FlowKey("10.99.0.42", server_ip, 6, 7000 + index, 80)
        deployment.attacker.start_flow(FlowSpec(
            key=key,
            start_time=3.0 + 0.2 * index,
            size_packets=ELEPHANT_PACKETS,
            packet_size=1500,
            rate_pps=ELEPHANT_PPS,
            batch=10,
        ))
        keys.append(key)

    sim.run(until=3.0 + ELEPHANT_PACKETS / ELEPHANT_PPS + 6.0)

    print(f"{HERD} elephants ({ELEPHANT_PACKETS} pkts @ {ELEPHANT_PPS:.0f} pps) "
          f"launched into a 3000 f/s flood\n")
    print(f"{'flow':<8} {'initial path':<14} {'migrated at':<12} {'delivered':<12}")
    migrated = direct = 0
    for key in keys:
        info = app.flow_db.get(key)
        record = deployment.servers[0].recv_tap.flow(key)
        got = record.packets_received if record else 0
        if info.migrated_at is not None:
            migrated += 1
            initial, when = "overlay", f"t={info.migrated_at:.2f}s"
        else:
            direct += 1
            initial, when = "physical", "—"
        status = f"{got}/{ELEPHANT_PACKETS}"
        print(f":{key.src_port:<7} {initial:<14} {when:<12} {status:<12}")
    print()
    print(f"admitted to physical directly : {direct}")
    print(f"started on overlay, migrated  : {migrated}")
    print(f"migrations completed           : {app.migrator.migrations_completed}")
    lossless = all(
        (deployment.servers[0].recv_tap.flow(k) or None) is not None
        and deployment.servers[0].recv_tap.flow(k).packets_received == ELEPHANT_PACKETS
        for k in keys
    )
    print(f"every elephant fully delivered : {lossless}")


if __name__ == "__main__":
    main()
