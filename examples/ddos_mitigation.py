#!/usr/bin/env python3
"""DDoS scenario: full Scotch lifecycle with ingress-port isolation.

Demonstrates the paper's §5 machinery in one run:

* a spoofed-source SYN flood saturates the edge switch's control path;
* the congestion monitor activates the overlay (default rules + select
  group over the switch->vSwitch tunnels);
* per-ingress-port queues keep the clean client port at full service
  while the attacked port's legitimate traffic rides the overlay;
* when the flood stops, the overlay withdraws (pin rules, default-rule
  removal) and the switch returns to normal reactive operation.

Run:  python examples/ddos_mitigation.py
"""

from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood

ATTACK_START, ATTACK_STOP = 2.0, 14.0
RUN_UNTIL = 30.0


def main() -> None:
    deployment = build_deployment(seed=11, racks=2, mesh_per_rack=1)
    sim = deployment.sim
    app = deployment.scotch
    server_ip = deployment.servers[0].ip

    # A clean-port client, an attacked-port client (same host as the
    # attacker), and the flood itself.
    clean_client = NewFlowSource(sim, deployment.client, server_ip, rate_fps=50.0,
                                 src_net=20)
    dirty_client = NewFlowSource(sim, deployment.attacker, server_ip, rate_fps=50.0,
                                 src_net=21)
    flood = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=2500.0)

    clean_client.start(at=0.5, stop_at=RUN_UNTIL - 2.0)
    dirty_client.start(at=0.5, stop_at=RUN_UNTIL - 2.0)
    flood.start(at=ATTACK_START, stop_at=ATTACK_STOP)

    # Narrate the lifecycle as it happens.
    events = []
    original_congested = app._on_congested
    original_cleared = app._on_cleared

    def on_congested(dpid):
        events.append(f"t={sim.now:6.2f}s  congestion detected at {dpid}; overlay ON")
        original_congested(dpid)

    def on_cleared(dpid):
        events.append(f"t={sim.now:6.2f}s  control path clear at {dpid}; withdrawing")
        original_cleared(dpid)

    app.monitor.on_congested = on_congested
    app.monitor.on_cleared = on_cleared

    sim.run(until=RUN_UNTIL)

    print(f"Flood: {flood.packets_sent} spoofed flows "
          f"between t={ATTACK_START}s and t={ATTACK_STOP}s\n")
    for line in events:
        print(line)
    print()

    def report(tap, label, src_prefix):
        sent = {
            k for k, r in tap.records.items()
            if r.packets_sent > 0 and k.src_ip.startswith(src_prefix)
            and ATTACK_START + 2 <= (r.first_sent_at or 0) < ATTACK_STOP
        }
        arrived = deployment.servers[0].recv_tap.received_flow_keys()
        failed = sum(1 for k in sent if k not in arrived)
        fraction = failed / len(sent) if sent else 0.0
        print(f"  {label:<28s} {fraction:7.1%}  ({len(sent)} flows)")

    print("Client flow failure during the attack:")
    report(deployment.client.sent_tap, "clean port", "10.20.")
    report(deployment.attacker.sent_tap, "attacked port (legit flows)", "10.21.")

    post = client_flow_failure_fraction(
        deployment.client.sent_tap, deployment.servers[0].recv_tap,
        start=ATTACK_STOP + 8.0, end=RUN_UNTIL - 2.0,
    )
    print(f"\nAfter withdrawal: clean-port failure {post:.1%}; "
          f"overlay active at: {sorted(app.overlay.active) or 'none'}")
    # Cumulative routing decisions (the Flow Info Database itself is
    # point-in-time: retired flows leave it as their rules expire).
    overlaid = sum(s.flows_overlaid for s in app.schedulers.values())
    admitted = sum(s.flows_admitted for s in app.schedulers.values())
    dropped = sum(s.flows_dropped for s in app.schedulers.values())
    print(f"Flows carried — overlay: {overlaid}, physical: {admitted}, "
          f"dropped: {dropped}; retired from controller state: {app.flows_retired}")


if __name__ == "__main__":
    main()
