#!/usr/bin/env python3
"""Wide-area Scotch: the overlay spanning multiple sites.

The paper (§4.1) allows the vSwitch pool to be "distributed at different
locations for a wide-area SDN network".  This demo builds a 4-site ring
with 10 ms WAN legs, floods the entry PoP, and shows the overlay
absorbing the flood while delivering legitimate flows to a *remote*
site's server — with the extra relay delay the WAN implies.

Run:  python examples/wan_overlay.py
"""

from repro.metrics import client_flow_failure_fraction
from repro.metrics.stats import mean
from repro.testbed.wan import build_wan_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def main() -> None:
    deployment = build_wan_deployment(sites=4, seed=5)
    sim = deployment.sim
    remote_server = deployment.servers[2]  # two WAN hops away

    delays = []
    remote_server.on_receive = lambda p: delays.append(sim.now - p.created_at)

    client = NewFlowSource(sim, deployment.client, remote_server.ip, rate_fps=60.0)
    flood = SpoofedFlood(sim, deployment.attacker, remote_server.ip, rate_fps=2000.0)
    client.start(at=0.5, stop_at=18.0)
    flood.start(at=2.0, stop_at=18.0)
    sim.run(until=20.0)

    app = deployment.scotch
    failure = client_flow_failure_fraction(
        deployment.client.sent_tap, remote_server.recv_tap, start=6.0, end=16.0)
    print("4-site WAN ring, 10 ms legs; flood 2000 f/s at site 0; "
          f"client flows to site 2's server\n")
    print(f"overlay activations       : {app.activations} "
          f"(active at: {sorted(app.overlay.active)})")
    print(f"client failure (attack)   : {failure:.1%}")
    print(f"flows carried by overlay  : {app.flow_db.counts().get('overlay', 0)}")
    print(f"mean delivery delay       : {mean(delays) * 1e3:.1f} ms "
          f"(includes WAN legs and overlay relay)")
    print(f"pop1 (remote) control RTT : {deployment.pops[1].channel.latency * 2 * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
