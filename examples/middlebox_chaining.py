#!/usr/bin/env python3
"""Policy consistency: one firewall instance across overlay and physical.

Demonstrates §5.4 / Fig. 8.  A policy forces all server-bound traffic
through a stateful firewall.  A long flow starts on the overlay (via the
S_U decap / S_D re-encap plumbing), is later migrated to the physical
path — and because both paths pin the *same* firewall instance, the
firewall's per-flow state survives the migration and nothing is dropped.

The script also shows the counterfactual: replaying the post-migration
leg through a *fresh* firewall drops everything, because a stateful
middlebox rejects mid-flow packets it has no context for.

Run:  python examples/middlebox_chaining.py
"""

from repro.net.flow import FlowKey, FlowSpec
from repro.net.middlebox import Firewall
from repro.net.packet import TCP_DATA, Packet
from repro.sim.engine import Simulator
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def main() -> None:
    deployment = build_deployment(seed=13, racks=2, mesh_per_rack=1, with_firewall=True)
    sim = deployment.sim
    app = deployment.scotch
    firewall = deployment.firewall
    server_ip = deployment.servers[0].ip

    flood = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=16.0)

    key = FlowKey("10.99.0.7", server_ip, 6, 9999, 443)
    deployment.attacker.start_flow(
        FlowSpec(key=key, start_time=3.0, size_packets=5000, packet_size=1500,
                 rate_pps=600.0, batch=10)
    )
    sim.run(until=16.0)

    info = app.flow_db.get(key)
    record = deployment.servers[0].recv_tap.flow(key)
    print("Policy: all server-bound flows must traverse firewall fw0\n")
    print(f"flow policy chain       : {info.middlebox_chain}")
    print(f"initial route           : overlay (entry {info.entry_vswitch})")
    print(f"migrated to physical at : t={info.migrated_at:.2f}s")
    print(f"firewall saw            : {firewall.packets_in} packets, "
          f"dropped {firewall.packets_dropped}")
    print(f"mid-flow rejects        : {firewall.rejected_unknown} "
          f"(same instance on both paths -> state preserved)")
    print(f"delivered               : {record.packets_received}/5000 packets\n")

    # Counterfactual: the same mid-flow packets hitting a NEW firewall.
    fresh_sim = Simulator()
    fresh_fw = Firewall(fresh_sim, "fw-naive")
    midflow = Packet(key.src_ip, key.dst_ip, proto=key.proto,
                     src_port=key.src_port, dst_port=key.dst_port,
                     tcp_flag=TCP_DATA)
    admitted = fresh_fw.admit(midflow)
    print("Counterfactual (naive re-routing through a different firewall):")
    print(f"  a mid-flow packet at a fresh firewall is "
          f"{'admitted' if admitted else 'REJECTED — the flow would break'}")


if __name__ == "__main__":
    main()
