#!/usr/bin/env python3
"""Quickstart: build a small SDN network, flood it, watch Scotch save it.

This walks the library's public API end to end:

1. build the Fig. 5-style deployment (physical fabric + vSwitch overlay),
2. run a legitimate client plus a spoofed-source flood,
3. watch the congestion monitor activate the overlay,
4. compare the client's failure fraction with and without Scotch.

Run:  python examples/quickstart.py
"""

from repro.controller.reactive_app import ReactiveForwardingApp
from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood

ATTACK_RATE = 2000.0  # spoofed flows/second
CLIENT_RATE = 100.0   # legitimate new flows/second


def run(with_scotch: bool) -> float:
    """One run; returns the client's flow failure fraction under attack."""
    deployment = build_deployment(seed=1, add_scotch_app=with_scotch)
    if not with_scotch:
        # The baseline: plain reactive forwarding, as in the paper's §3.
        deployment.controller.add_app(ReactiveForwardingApp())

    sim = deployment.sim
    server_ip = deployment.servers[0].ip
    client = NewFlowSource(sim, deployment.client, server_ip, rate_fps=CLIENT_RATE)
    attack = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=ATTACK_RATE)
    client.start(at=0.5, stop_at=12.0)
    attack.start(at=2.0, stop_at=12.0)
    sim.run(until=14.0)

    if with_scotch:
        app = deployment.scotch
        print(f"  overlay activations : {app.activations}")
        print(f"  flows via overlay   : {app.flow_db.counts().get('overlay', 0)}")
        print(f"  flows via physical  : {app.flow_db.counts().get('physical', 0)}")
    return client_flow_failure_fraction(
        deployment.client.sent_tap,
        deployment.servers[0].recv_tap,
        start=4.0,
        end=11.0,
    )


def main() -> None:
    print(f"Flooding one switch at {ATTACK_RATE:.0f} spoofed flows/s "
          f"(client at {CLIENT_RATE:.0f} flows/s)\n")
    print("Without Scotch (vanilla reactive SDN):")
    vanilla = run(with_scotch=False)
    print(f"  client flow failure : {vanilla:.1%}\n")
    print("With Scotch:")
    scotch = run(with_scotch=True)
    print(f"  client flow failure : {scotch:.1%}\n")
    print(f"Scotch reduced the client failure fraction from "
          f"{vanilla:.1%} to {scotch:.1%}.")


if __name__ == "__main__":
    main()
