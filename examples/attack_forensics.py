#!/usr/bin/env python3
"""Attack forensics: the security application on top of Scotch.

The paper's pitch (§1, §5.2): because Scotch keeps every new flow
visible to the controller even while the switch OFA is saturated, "the
collected flow information can be fed into the security tools to help
pinpoint the root cause" — e.g. as another controller application.

This demo runs a spoofed-source flood plus a legitimate flash crowd on
different ports, and shows the :class:`repro.core.SecurityApp`:

* pinpointing the attacked switch + ingress port (recovered through the
  overlay's tunnel/port labels),
* telling the spoofed flood (one fresh source per packet) apart from the
  flash crowd (many flows, few sources),
* and, in ``block`` mode, shedding the flood in the data plane while the
  clean ports keep working.

Run:  python examples/attack_forensics.py
"""

from repro.core.security import BLOCK, SecurityApp
from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def main() -> None:
    deployment = build_deployment(seed=17, racks=2, mesh_per_rack=1)
    sim = deployment.sim
    server_ip = deployment.servers[0].ip

    reports = []
    security = SecurityApp(
        deployment.overlay,
        mitigation=BLOCK,
        on_attack=lambda report: reports.append(report),
    )
    deployment.controller.add_app(security)

    # Port A (attacker host): a spoofed-source SYN flood.
    flood = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=2500.0)
    flood.start(at=2.0, stop_at=15.0)
    # Port B (client host): a legitimate flash crowd — high rate, but a
    # small set of repeat sources.
    crowd = NewFlowSource(sim, deployment.client, server_ip, rate_fps=700.0,
                          src_net=30, source_pool=25)
    crowd.start(at=2.0, stop_at=15.0)

    sim.run(until=20.0)

    print("Security reports:")
    for report in reports[:6]:
        kind = "SPOOFED FLOOD" if report.spoofing_suspected else "flash crowd"
        action = "-> blocked in data plane" if report.mitigated else "-> reported"
        print(f"  t={report.time:5.1f}s  {report.switch} port {report.port}: "
              f"{report.new_flow_rate:6.0f} flows/s, "
              f"{report.distinct_sources} sources, victim {report.top_destination}  "
              f"[{kind}] {action}")

    attacked_port = deployment.network.port_between("edge", "attacker")
    crowd_port = deployment.network.port_between("edge", "client")
    flagged = {(r.port, r.spoofing_suspected) for r in reports}
    print()
    print(f"attacked port {attacked_port} flagged as spoofed : "
          f"{(attacked_port, True) in flagged}")
    print(f"crowd port {crowd_port} flagged as spoofed    : "
          f"{(crowd_port, True) in flagged}")
    print(f"mitigations installed : {security.mitigations_installed}")
    failure = client_flow_failure_fraction(
        deployment.client.sent_tap, deployment.servers[0].recv_tap, start=6.0, end=14.0)
    print(f"flash-crowd failure   : {failure:.1%} (Scotch keeps carrying it)")


if __name__ == "__main__":
    main()
