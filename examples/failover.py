#!/usr/bin/env python3
"""vSwitch failover: heartbeats, backup substitution, and recovery.

Demonstrates §5.6.  While the overlay is active under a flood, one mesh
vSwitch crashes.  The controller's heartbeat monitor misses its echo
replies, declares it dead, and swaps the backup vSwitch into the edge
switch's select-group bucket — flows that hashed to the dead vSwitch
re-appear at the backup as new flows and keep being served.  When the
vSwitch comes back, its echoes resume and it rejoins the overlay.

Run:  python examples/failover.py
"""

from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood

FAIL_AT, RECOVER_AT = 6.0, 16.0


def main() -> None:
    deployment = build_deployment(seed=14, racks=2, mesh_per_rack=1, backups=1)
    sim = deployment.sim
    app = deployment.scotch
    server_ip = deployment.servers[0].ip

    flood = SpoofedFlood(sim, deployment.attacker, server_ip, rate_fps=2000.0)
    client = NewFlowSource(sim, deployment.client, server_ip, rate_fps=100.0)
    flood.start(at=0.5, stop_at=24.0)
    client.start(at=0.5, stop_at=24.0)

    victim = deployment.mesh_vswitches[0]
    sim.schedule(FAIL_AT, victim.fail)
    sim.schedule(RECOVER_AT, victim.recover)

    def show_buckets(label):
        group = deployment.edge.datapath.groups.get(1)
        buckets = [b.label for b in group.buckets] if group else []
        print(f"t={sim.now:5.1f}s  {label:<22s} edge group buckets: {buckets}")

    sim.schedule(5.0, show_buckets, "before failure")
    sim.schedule(FAIL_AT + 5.0, show_buckets, "after failover")
    sim.schedule(RECOVER_AT + 4.0, show_buckets, "after recovery")
    sim.run(until=25.0)

    print()
    print(f"victim vSwitch       : {victim.name} "
          f"(failed t={FAIL_AT}s, recovered t={RECOVER_AT}s)")
    print(f"failures detected    : {app.heartbeat.failures_detected}")
    print(f"recoveries detected  : {app.heartbeat.recoveries_detected}")
    print(f"currently dead       : {sorted(app.overlay.dead) or 'none'}")
    failure = client_flow_failure_fraction(
        deployment.client.sent_tap, deployment.servers[0].recv_tap,
        start=FAIL_AT + 4.0, end=24.0,
    )
    print(f"client failure after failover window: {failure:.1%}")


if __name__ == "__main__":
    main()
