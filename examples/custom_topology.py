#!/usr/bin/env python3
"""Build your own protected fabric: Scotch on a builder topology.

Composes the pieces by hand (see docs/usage.md): a leaf-spine fabric
from `repro.net.builders`, a vSwitch pool, the overlay, a controller
with ScotchApp + SecurityApp — then a flood at one leaf and legitimate
cross-rack traffic.

Run:  python examples/custom_topology.py
"""

from repro.controller import OpenFlowController
from repro.core import ScotchApp, ScotchOverlay, SecurityApp
from repro.metrics import client_flow_failure_fraction, sparkline
from repro.metrics.series import TimeSeries, sample_periodically
from repro.net.builders import leaf_spine
from repro.switch.switch import VSwitch
from repro.traffic import NewFlowSource, SpoofedFlood


def main() -> None:
    # 1. A 4-leaf / 2-spine fabric with one host per leaf.
    topo = leaf_spine(leaves=4, spines=2, hosts_per_leaf=1, seed=21)
    sim, net = topo.sim, topo.network

    # 2. Three mesh vSwitches on different leaves.
    overlay = ScotchOverlay(net)
    for index in range(3):
        net.add(VSwitch(sim, f"mv{index}"))
        net.link(f"mv{index}", f"leaf{index}", 1e9)
        overlay.add_mesh_vswitch(f"mv{index}")
    for host in topo.hosts:
        overlay.set_host_delivery(host.name, None, "mv0")
    for switch in topo.switches:
        overlay.register_switch(switch.name)

    # 3. Controller with Scotch + the security application.
    controller = OpenFlowController(sim, net)
    for node in net.nodes.values():
        if hasattr(node, "ofa"):
            controller.register_switch(node)
    scotch = controller.add_app(ScotchApp(overlay))
    security = controller.add_app(SecurityApp(overlay))

    # 4. Traffic: a flood from host 0 toward host 3, a legitimate client
    #    on host 1 toward the same victim.
    victim = topo.hosts[3]
    attacker, client = topo.hosts[0], topo.hosts[1]
    SpoofedFlood(sim, attacker, victim.ip, rate_fps=2500.0).start(at=2.0, stop_at=14.0)
    legit = NewFlowSource(sim, client, victim.ip, rate_fps=80.0)
    legit.start(at=0.5, stop_at=14.0)

    # 5. Instrument: overlay share over time.
    overlay_share = TimeSeries("overlay fraction")
    sample_periodically(
        sim, overlay_share,
        lambda: (lambda c: c.get("overlay", 0) / max(1, sum(c.values())))(
            scotch.flow_db.counts()),
        interval=1.0, until=15.0)

    sim.run(until=16.0)

    failure = client_flow_failure_fraction(
        client.sent_tap, victim.recv_tap, start=4.0, end=13.0)
    print("Leaf-spine fabric, flood 2500 f/s at leaf0, client at leaf1\n")
    print(f"overlay active at      : {sorted(scotch.overlay.active)}")
    print(f"client failure (attack): {failure:.1%}")
    print(f"flows via overlay      : {scotch.flow_db.counts().get('overlay', 0)}")
    print(f"security reports       : {len(security.reports)} "
          f"(first names {security.reports[0].switch} port "
          f"{security.reports[0].port})" if security.reports else "security reports: none")
    print(f"overlay share timeline : {sparkline(overlay_share.values())}")


if __name__ == "__main__":
    main()
