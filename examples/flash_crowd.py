#!/usr/bin/env python3
"""Flash crowd: Scotch absorbing a legitimate traffic surge.

The paper stresses that control-path overload is not only an attack
phenomenon — flash crowds cause the same collapse ("this blocking of
legitimate traffic can occur whenever the control plane is overloaded,
e.g., under DDoS attacks or due to flash crowds").  This example replays
a heavy-tailed synthetic trace whose arrival rate surges 12x mid-run
(everything legitimate, flows with real sizes) and compares vanilla
reactive forwarding against Scotch on flow failure and completion time.

Run:  python examples/flash_crowd.py
"""

from repro.testbed.experiments import fig15_run
from repro.testbed.report import format_table


def main() -> None:
    print("Replaying a 20 s heavy-tailed trace; arrivals surge 12x "
          "between t=5 s and t=15 s.\n")
    results = []
    for scheme in ("vanilla", "scotch"):
        print(f"running {scheme} ...")
        results.append(fig15_run(scheme))
    print()
    print(format_table(
        ["scheme", "flows", "failed", "mean FCT (s)", "p99 FCT (s)"],
        [
            [r.scheme, r.flows_measured, f"{r.failure_fraction:.1%}",
             r.mean_fct, r.p99_fct]
            for r in results
        ],
        title="Flash crowd: application-level outcome",
    ))
    vanilla, scotch = results
    saved = (vanilla.failure_fraction - scotch.failure_fraction) * vanilla.flows_measured
    print(f"\nScotch saved roughly {saved:.0f} flows that the vanilla "
          f"control plane would have blocked.")


if __name__ == "__main__":
    main()
