"""Chaos recovery — client impact of the docs/robustness.md fault gauntlet.

Runs the canonical chaos scenario (every fault class on the fixed
timeline, invariant checker armed) and reports the §3.2 client flow
failure fraction during the fault window versus after recovery, plus
the control-plane repair work it took to get there.
"""

from _harness import emit_bench, measure

from repro.faults import format_report, run_chaos
from repro.testbed.report import format_table

SEEDS = (1, 2, 3)


def test_chaos_recovery(emit):
    timing = measure(
        lambda: [run_chaos(seed=seed) for seed in SEEDS], warmup=0, repeats=1
    )
    reports = timing["result"]
    # The provenance + flight-recorder overhead contract
    # (docs/observability.md#causality--flight-recorder): the same
    # gauntlet with postmortem instrumentation on, so the fractional
    # cost of causal provenance rides in the tracked BENCH_ file.
    instrumented = measure(
        lambda: [run_chaos(seed=seed, postmortem=True) for seed in SEEDS],
        warmup=0, repeats=1,
    )
    overhead = (instrumented["median"] - timing["median"]) / timing["median"]
    emit_bench("chaos", timing, workload={
        "seeds": list(SEEDS),
        "faults_injected": sum(r.faults_injected for r in reports),
        "flows_started": sum(r.flows_started for r in reports),
        "postmortem_median_s": instrumented["median"],
        "postmortem_overhead": round(overhead, 4),
        "postmortem_bundles": sum(
            len(r.postmortems) for r in instrumented["result"]),
    })
    emit(
        "chaos_recovery",
        format_table(
            ["seed", "faults", "failure (fault window)", "failure (recovered)",
             "failovers", "recoveries", "retries", "verdict"],
            [[r.seed, r.faults_injected, f"{r.failure_during_faults:.4f}",
              f"{r.failure_post_recovery:.4f}", r.failures_detected,
              r.recoveries_detected, r.reliable["retries"],
              "HEALTHY" if r.healthy else "DEGRADED"]
             for r in reports],
            title="Chaos recovery — full fault gauntlet, 18 s, flood 2000 f/s",
        )
        + "\n\n"
        + format_report(reports[0]),
    )
    for report in reports:
        assert report.healthy
        assert report.violations == []
        # The gauntlet must actually hurt while it is running…
        assert report.failure_during_faults > report.failure_post_recovery
        # …and the system must self-heal to near-zero client impact.
        assert report.failure_post_recovery < 0.05
