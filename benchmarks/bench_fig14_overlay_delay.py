"""Fig. 14 (reconstructed) — extra delay of overlay relay.

Section 6's preamble: "We further investigate the extra delay incurred
by the Scotch overlay traffic relay."  Established flows are measured on
the direct physical path and on the overlay path (three tunnels:
switch -> entry mesh vSwitch -> exit mesh vSwitch -> delivery); the
overlay adds a small-constant stretch, not an order of magnitude.
"""

from repro.metrics.stats import cdf_points
from repro.testbed.experiments import fig14_run
from repro.testbed.report import format_table


def test_fig14_overlay_relay_delay(benchmark, emit):
    result = benchmark.pedantic(lambda: fig14_run(), rounds=1, iterations=1)
    summary = result.summary()
    lines = [
        format_table(
            ["path", "mean delay (ms)", "p99 delay (ms)", "samples"],
            [
                ["direct (physical)", summary["direct_mean"] * 1e3,
                 summary["direct_p99"] * 1e3, len(result.direct_delays)],
                ["overlay (3 tunnels)", summary["overlay_mean"] * 1e3,
                 summary["overlay_p99"] * 1e3, len(result.overlay_delays)],
            ],
            title="Fig. 14 — established-flow one-way delay",
        ),
        f"mean stretch: {summary['stretch_mean']:.2f}x",
        "",
        "overlay delay CDF (ms, fraction):",
    ]
    for value, fraction in cdf_points(result.overlay_delays, points=10):
        lines.append(f"  {value * 1e3:8.3f}  {fraction:.2f}")
    emit("fig14", "\n".join(lines))

    assert len(result.direct_delays) > 100
    assert len(result.overlay_delays) > 100
    assert summary["overlay_mean"] > summary["direct_mean"]
    assert summary["stretch_mean"] < 20
