"""Ablation — Scotch vs. the alternatives §4 considers and rejects.

* vanilla reactive forwarding (no defence);
* proactive pre-installation (§1: survives anything but "at the expense
  of fine-grained policy control, visibility, and flexibility" — the
  controller sees zero flows);
* drop policing (rate-R install budget + per-port fairness, no overlay);
* dedicated-port deflection (§4: "another method is to dedicate one port
  of the physical switch to the overloaded new flows ... does not fully
  solve the problem. The maximum flow rule insertion rate is limited.");
* Scotch.

Measured under the same 2000 f/s flood + 100 f/s client: client failure
fraction, total delivered new-flow rate, and controller visibility
(Packet-In messages seen).
"""

from repro.testbed.experiments import ablation_run
from repro.testbed.report import format_table

SCHEMES = ("vanilla", "proactive", "drop", "dedicated", "scotch")


def test_ablation_scotch_vs_baselines(benchmark, emit):
    results = benchmark.pedantic(
        lambda: [ablation_run(scheme) for scheme in SCHEMES], rounds=1, iterations=1
    )
    emit(
        "ablation",
        format_table(
            ["scheme", "client failure", "delivered flows/s", "controller visibility"],
            [[r.scheme, r.client_failure, r.total_success_rate, r.flows_visible]
             for r in results],
            title="Ablation — flood 2000 f/s, client 100 f/s",
        ),
    )
    by_scheme = {r.scheme: r for r in results}
    assert by_scheme["scotch"].client_failure < 0.05
    assert by_scheme["vanilla"].client_failure > 0.5
    # Scotch's delivered-flow rate dominates the reactive baselines (the
    # overlay pools vSwitch control capacity; they cap at R or the OFA).
    for scheme in ("vanilla", "drop", "dedicated"):
        assert by_scheme["scotch"].total_success_rate > by_scheme[scheme].total_success_rate
    # Proactive mode also survives — but blind: zero controller
    # visibility, versus Scotch seeing every flow.  That is the §1
    # trade-off Scotch exists to avoid.
    assert by_scheme["proactive"].client_failure < 0.05
    assert by_scheme["proactive"].flows_visible == 0
    assert by_scheme["scotch"].flows_visible > 10_000
