"""Fig. 13 (reconstructed) — overlay capacity grows with mesh size.

Section 6's preamble: "We also show the growth in the Scotch overlay's
capacity with addition of new vswitches into the overlay."  The pooled
Packet-In capacity of the serving vSwitches (~4000 msg/s each in our
OVS model) is the new-flow ceiling, so successful flow rate scales
near-linearly with the number of vSwitches until it crosses the offered
load — versus a hard ~200 f/s without Scotch.
"""

from repro.testbed.experiments import fig13_point
from repro.testbed.report import format_table

MESH_SIZES = (1, 2, 3, 4)
OFFERED = 20000.0


def test_fig13_capacity_scaling(benchmark, emit):
    rates = benchmark.pedantic(
        lambda: {n: fig13_point(n, offered_rate=OFFERED) for n in MESH_SIZES},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig13",
        format_table(
            ["vSwitches", "successful new flows/s", "per-vSwitch"],
            [[n, rates[n], rates[n] / n] for n in MESH_SIZES],
            title=f"Fig. 13 — overlay control-plane capacity (offered {OFFERED:.0f} f/s)",
        ),
    )
    # Strictly growing with mesh size...
    values = [rates[n] for n in MESH_SIZES]
    assert values == sorted(values)
    # ... near-linearly (each added vSwitch contributes most of its agent).
    assert rates[4] > 2.5 * rates[1]
    # Far above the no-overlay ceiling (~200 f/s = the OFA capacity).
    assert rates[1] > 5 * 200
