"""Fig. 3 — client flow failure fraction vs. attacking flow rate.

Paper: all three switches suffer rising client-flow failure as the
attack rate grows from 100 to 3800 flows/sec; the two hardware switches
(Pica8 worst, HP Procurve better) fail far more than Open vSwitch, whose
software agent has an order of magnitude more control-path capacity.
"""

from _harness import emit_bench, measure

from repro.metrics.plot import sparkline
from repro.testbed.experiments import FIG3_ATTACK_RATES, FIG3_PROFILES, fig3_series
from repro.testbed.report import format_table


def test_fig3_failure_vs_attack_rate(emit):
    timing = measure(lambda: fig3_series(duration=10.0), warmup=0, repeats=1)
    series = timing["result"]
    emit_bench("fig03", timing, workload={
        "duration": 10.0,
        "profiles": [p.name for p in FIG3_PROFILES],
        "attack_rates": list(FIG3_ATTACK_RATES),
    })
    rows = []
    for rate_index, rate in enumerate(FIG3_ATTACK_RATES):
        row = [rate]
        for profile in FIG3_PROFILES:
            row.append(series[profile.name][rate_index][1])
        rows.append(row)
    lines = [
        format_table(
            ["attack (flows/s)"] + [p.name for p in FIG3_PROFILES],
            rows,
            title="Fig. 3 — client flow failure fraction (client at 100 flows/s)",
        ),
        "",
    ]
    for profile in FIG3_PROFILES:
        curve = [v for _, v in series[profile.name]]
        lines.append(f"{profile.name:<28s} {sparkline(curve)}")
    emit("fig03", "\n".join(lines))
    # Shape assertions (the paper's qualitative claims).
    for profile in FIG3_PROFILES:
        curve = [v for _, v in series[profile.name]]
        assert curve[-1] >= curve[0]
    final = {p.name: series[p.name][-1][1] for p in FIG3_PROFILES}
    assert final["Pica8 Pronto 3780"] > 0.9
    assert final["HP Procurve 6600"] > 0.8
    assert final["Open vSwitch (Xeon E5-1650)"] < 0.1
