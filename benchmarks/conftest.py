"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper: it runs the
experiment once under pytest-benchmark (wall-clock of the simulation is
the benchmarked quantity) and emits the figure's rows both to stdout
(visible with ``pytest -s``) and to ``benchmarks/output/<name>.txt``.
"""

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture
def emit():
    """Print a figure's table and persist it under benchmarks/output/."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return _emit
