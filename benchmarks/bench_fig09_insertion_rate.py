"""Fig. 9 — maximum flow-rule insertion rate at the Pica8 switch.

Paper: insertions are lossless up to 200 rules/s; beyond that some rule
requests are not installed, and the successful insertion rate flattens
out at about 1000 rules/s.
"""

from repro.metrics.plot import ascii_plot
from repro.testbed.experiments import fig9_point
from repro.testbed.report import format_table

ATTEMPTED_RATES = (50, 100, 200, 400, 800, 1500, 2500, 4000)


def test_fig9_max_insertion_rate(benchmark, emit):
    # duration chosen so the 8192-entry TCAM never fills within a run
    # (10 s at the ~1000/s plateau would; the paper measures insertion
    # throughput, not table size).
    successful = benchmark.pedantic(
        lambda: [fig9_point(rate, duration=6.0) for rate in ATTEMPTED_RATES],
        rounds=1,
        iterations=1,
    )
    emit(
        "fig09",
        format_table(
            ["attempted rules/s", "successful rules/s"],
            list(zip(ATTEMPTED_RATES, successful)),
            title="Fig. 9 — flow rule insertion rate (Pica8)",
        )
        + "\n\n"
        + ascii_plot(
            list(zip(ATTEMPTED_RATES, successful)),
            x_label="attempted rules/s",
            y_label="successful rules/s",
        ),
    )
    by_rate = dict(zip(ATTEMPTED_RATES, successful))
    # Lossless region.
    assert by_rate[100] > 95 and by_rate[200] > 190
    # Lossy beyond 200.
    assert by_rate[800] < 800 * 0.95
    # Plateau near 1000.
    assert 850 < by_rate[4000] < 1050
    # Monotone non-decreasing.
    assert successful == sorted(successful)
