"""Ablation — choosing the controller's install rate R (§5.2, §6.1).

"The service rate for the queue is R, the maximum rate at which the
OpenFlow controller can install rules at the physical switch without
insertion failure ... We will investigate how to choose the proper
value of R."

Sweep R around the Pica8 lossless insertion rate (200/s) under a flood:

* R below 200 is safe but under-uses the physical network — fewer flows
  get physical paths (more ride the overlay);
* R above 200 drives the OFA into its Fig. 9 loss region: FlowMods
  silently fail — and client flows that were admitted to physical paths
  get blackholed by their missing rules, so overshooting R actively
  *hurts* the very traffic it was meant to serve.
"""

from repro.metrics.plot import sparkline
from repro.testbed.experiments import install_rate_run
from repro.testbed.report import format_table

RATES = (50, 100, 200, 400, 800)


def test_ablation_install_rate_choice(benchmark, emit):
    results = benchmark.pedantic(
        lambda: [install_rate_run(rate) for rate in RATES], rounds=1, iterations=1
    )
    lines = [
        format_table(
            ["R (rules/s)", "client failure", "failed installs", "flows on physical"],
            [[r.install_rate, r.client_failure, r.install_failures, r.physical_flows]
             for r in results],
            title="Ablation — controller install rate R (Pica8 lossless = 200/s)",
        ),
        "",
        "flows on physical : " + sparkline([r.physical_flows for r in results]),
        "failed installs   : " + sparkline([r.install_failures for r in results]),
    ]
    emit("ablation_install_rate", "\n".join(lines))

    by_rate = {r.install_rate: r for r in results}
    # At or below the lossless rate: fully protected, (essentially) no
    # failed installs.  (A couple of jitter-edge failures can occur at
    # exactly the lossless boundary.)
    for rate in (50, 100, 200):
        assert by_rate[rate].client_failure < 0.05
        assert by_rate[rate].install_failures <= 5
    # Overshooting R fails installs *and* blackholes admitted client
    # flows — the paper's reason for pinning R at the lossless rate.
    assert by_rate[800].install_failures > 100
    assert by_rate[800].client_failure > by_rate[200].client_failure + 0.1
    # More R -> more flows served on physical paths.
    assert by_rate[200].physical_flows > by_rate[50].physical_flows
