"""Fig. 4 — control-path profiling at the Pica8 switch.

Paper: the Packet-In message rate, the flow-rule insertion rate and the
successful flow rate are *identical* across the new-flow-rate sweep,
identifying the OFA's Packet-In generation as the control-path
bottleneck (all three clamp at its capacity).
"""

from repro.testbed.experiments import fig4_point
from repro.testbed.report import format_table

NEW_FLOW_RATES = (50, 100, 150, 200, 300, 500, 800)


def test_fig4_control_path_profiling(benchmark, emit):
    points = benchmark.pedantic(
        lambda: [fig4_point(rate) for rate in NEW_FLOW_RATES], rounds=1, iterations=1
    )
    emit(
        "fig04",
        format_table(
            ["new flows/s", "Packet-In/s", "rule inserts/s", "successful flows/s"],
            [
                [p.new_flow_rate, p.packet_in_rate, p.rule_insertion_rate, p.successful_flow_rate]
                for p in points
            ],
            title="Fig. 4 — SDN switch control path profiling (Pica8)",
        ),
    )
    for point in points:
        # The three observed rates are identical (within sampling noise)...
        assert abs(point.packet_in_rate - point.rule_insertion_rate) <= 0.05 * max(
            1.0, point.packet_in_rate
        )
        assert abs(point.packet_in_rate - point.successful_flow_rate) <= 0.08 * max(
            1.0, point.packet_in_rate
        )
        # ... and never exceed the OFA's Packet-In capacity.
        assert point.packet_in_rate <= 200 * 1.05
