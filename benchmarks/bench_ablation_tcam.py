"""Ablation — the §3.3 TCAM bottleneck, with and without Scotch.

"A limited amount of TCAM at a switch can also cause new flows being
dropped ... the solution proposed in this paper is applicable to the
TCAM bottleneck scenario as well."

Switches get a 200-entry table; 10-packet flows arrive at 100 f/s with
10 s rules (~1000 resident rules of demand).  Vanilla reactive
forwarding truncates most flows once tables fill; Scotch predicts the
occupancy from its install history, detours flows to the overlay (no
per-flow physical state), and activates via TABLE_FULL error reports as
a backstop.
"""

from repro.testbed.report import format_table
from repro.testbed.experiments import tcam_run as run


def test_ablation_tcam_bottleneck(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {
            "vanilla": run(with_scotch=False),
            "scotch": run(with_scotch=True),
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, (dep, failure) in results.items():
        table_full = dep.edge.ofa.table_full_failures
        overlay = 0
        if dep.scotch is not None:
            overlay = dep.scotch.flow_db.counts().get("overlay", 0)
        rows.append([name, failure, table_full, overlay])
    emit(
        "ablation_tcam",
        format_table(
            ["scheme", "flow failure", "edge TABLE_FULL errors", "flows via overlay"],
            rows,
            title="Ablation — 200-entry TCAM, 100 f/s of 10-packet flows",
        ),
    )
    vanilla_failure = results["vanilla"][1]
    scotch_failure = results["scotch"][1]
    assert vanilla_failure > 0.5
    assert scotch_failure < 0.1
