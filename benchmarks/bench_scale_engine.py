"""Scale engine benchmark — flash crowd over a 500+-vSwitch overlay.

This is the engine's macro benchmark (ROADMAP: open ever-larger
workloads): it builds the `repro.testbed.scale` topology — a moderate
fully-meshed overlay core fronting hundreds of host vSwitches — drives
the flash-crowd load through it, and emits ``BENCH_scale.json``
(events/sec, wall time per phase, peak RSS) via the shared harness so
the perf trajectory is tracked commit over commit.

Size is selectable for CI: ``REPRO_SCALE_SIZE=ci`` runs the reduced
topology (same shape, ~6× fewer vSwitches) that the non-blocking
perf-smoke job uses; the default is the full 504-vSwitch run.
"""

import os

from _harness import emit_bench, measure

from repro.testbed.scale import run_scale

SIZES = {
    "full": dict(host_vswitches=480, mesh=24, tors=8, targets=16,
                 duration=5.0, base_rate_fps=20.0, crowd_multiplier=10.0),
    "ci": dict(host_vswitches=72, mesh=8, tors=4, targets=8,
               duration=3.0, base_rate_fps=20.0, crowd_multiplier=10.0),
}


def test_scale_engine(emit):
    size = os.environ.get("REPRO_SCALE_SIZE", "full")
    params = SIZES[size]
    timing = measure(lambda: run_scale(seed=1, **params), warmup=0, repeats=1)
    result = timing["result"]

    emit_bench("scale", timing, workload={
        "size": size,
        "vswitches": result.vswitches,
        "mesh": result.mesh,
        "host_vswitches": result.host_vswitches,
        "tunnels": result.tunnels,
        "targets": result.targets,
        "sim_duration": result.duration,
        "flows_started": result.flows_started,
        "build_wall_seconds": round(result.build_wall, 3),
        "run_wall_seconds": round(result.run_wall, 3),
        "run_events": result.run_events,
        "events_per_sec": round(result.events_per_sec, 1),
        "client_failure": result.client_failure,
        "edge_punts": result.edge_punts,
    })
    emit("scale_engine", result.summary())

    if size == "full":
        # The tentpole acceptance shape: a >= 500-vSwitch overlay run.
        assert result.vswitches >= 500
    # The crowd must actually flow (engine under real load, not idle
    # daemon ticks) and the overlay must keep clients whole.
    assert result.flows_started > 1000
    assert result.client_failure < 0.05
    assert result.events_per_sec > 0
