"""Shared measurement harness for the perf benchmarks.

pytest-benchmark gives nice terminal tables, but the numbers the repo
tracks over time live in ``benchmarks/output/BENCH_<name>.json``: a
small, stable schema (wall-clock samples + median/p95, workload
counters, peak RSS) that CI uploads as an artifact and humans diff
across commits.  docs/usage.md ("Reading BENCH_*.json") documents the
schema.

Usage::

    from benchmarks._harness import measure, emit_bench

    timing = measure(run_workload, warmup=1, repeats=3)
    emit_bench("scale", timing, workload={"vswitches": 504, ...})

``measure`` returns a dict with the raw samples and the derived stats;
``emit_bench`` merges in workload metadata and writes the JSON.

**Regression gate** (warn-only): the committed files under
``benchmarks/output/`` are the baselines.  ``emit_bench`` compares each
fresh result against the baseline it is about to replace and prints a
one-line delta; ``python benchmarks/_harness.py --fresh DIR`` diffs a
whole directory of fresh ``BENCH_*.json`` against the baselines and
prints the delta table (median wall regressions beyond the threshold,
default 25%, are flagged ``WARN``).  The exit code is always 0 —
shared CI runners are too noisy for a blocking gate; the table is the
signal.  Set ``REPRO_BENCH_DIR`` to write fresh results somewhere other
than the committed baseline directory (what the CI perf-smoke job does
before diffing).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

#: Median wall-time regressions beyond this fraction get a WARN flag.
REGRESSION_THRESHOLD = 0.25


def peak_rss_mib() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of a small sample."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def measure(
    fn: Callable[[], Any],
    warmup: int = 0,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Time ``fn`` with optional warmup runs.

    Returns ``{"samples": [...], "median": s, "p95": s, "min": s,
    "max": s, "repeats": n, "warmup": n, "result": last_return}``.
    The last run's return value is kept so callers can pull workload
    counters out of it without running the workload twice.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return {
        "samples": [round(s, 6) for s in samples],
        "median": round(percentile(samples, 50.0), 6),
        "p95": round(percentile(samples, 95.0), 6),
        "min": round(min(samples), 6),
        "max": round(max(samples), 6),
        "repeats": repeats,
        "warmup": warmup,
        "result": result,
    }


def emit_bench(
    name: str,
    timing: Dict[str, Any],
    workload: Optional[Dict[str, Any]] = None,
    path: Optional[str] = None,
) -> str:
    """Write ``BENCH_<name>.json`` under benchmarks/output/ (or ``path``).

    The emitted schema::

        {
          "bench": "<name>",
          "wall_seconds": {samples, median, p95, min, max, repeats, warmup},
          "workload": {...counters the benchmark chose to record...},
          "peak_rss_mib": ...,
          "python": "3.11.x", "platform": "Linux-..."
        }
    """
    wall = {k: v for k, v in timing.items() if k != "result"}
    payload = {
        "bench": name,
        "wall_seconds": wall,
        "workload": workload or {},
        "peak_rss_mib": round(peak_rss_mib(), 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_DIR") or OUTPUT_DIR
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{name}.json")
    baseline = load_bench(os.path.join(OUTPUT_DIR, f"BENCH_{name}.json"))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    delta = compare_bench(baseline, payload)
    if delta is not None:
        print(format_delta_table([delta]))
    return path


# ----------------------------------------------------------------------
# Baseline regression diffing (warn-only)
# ----------------------------------------------------------------------
def load_bench(path: str) -> Optional[Dict[str, Any]]:
    """A BENCH_*.json payload, or None (missing/unparseable)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def compare_bench(
    baseline: Optional[Dict[str, Any]],
    fresh: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> Optional[Dict[str, Any]]:
    """One delta row: fresh vs committed baseline medians.

    Returns None when there is nothing to compare against (no baseline,
    or the baseline file *is* the fresh result).  ``delta`` is the
    fractional median wall change (+0.30 = 30% slower); ``flag`` is
    ``"WARN"`` past the threshold, ``"ok"`` otherwise (improvements
    are never flagged).
    """
    if baseline is None or baseline == fresh:
        return None
    base_median = baseline.get("wall_seconds", {}).get("median")
    fresh_median = fresh.get("wall_seconds", {}).get("median")
    if not base_median or fresh_median is None:
        return None
    delta = (fresh_median - base_median) / base_median
    return {
        "bench": fresh.get("bench", "?"),
        "baseline_median": base_median,
        "fresh_median": fresh_median,
        "delta": round(delta, 4),
        "flag": "WARN" if delta > threshold else "ok",
    }


def diff_baselines(
    fresh_dir: str,
    baseline_dir: str = OUTPUT_DIR,
    threshold: float = REGRESSION_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Delta rows for every ``BENCH_*.json`` under ``fresh_dir``.

    Fresh results without a committed baseline appear with ``flag``
    ``"new"`` so additions are visible too.
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(fresh_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        fresh = load_bench(os.path.join(fresh_dir, name))
        if fresh is None:
            continue
        baseline = load_bench(os.path.join(baseline_dir, name))
        row = compare_bench(baseline, fresh, threshold)
        if row is None:
            rows.append({
                "bench": fresh.get("bench", name),
                "baseline_median": None,
                "fresh_median": fresh.get("wall_seconds", {}).get("median"),
                "delta": None,
                "flag": "new" if baseline is None else "ok",
            })
        else:
            rows.append(row)
    return rows


def format_delta_table(rows: List[Dict[str, Any]]) -> str:
    """The warn-only regression table CI prints."""
    if not rows:
        return "perf delta: no fresh BENCH_*.json to compare"
    lines = [f"{'bench':<12} {'baseline':>10} {'fresh':>10} "
             f"{'delta':>8}  flag"]
    for row in rows:
        base = ("-" if row["baseline_median"] is None
                else f"{row['baseline_median']:.3f}s")
        fresh = ("-" if row["fresh_median"] is None
                 else f"{row['fresh_median']:.3f}s")
        delta = ("-" if row["delta"] is None
                 else f"{row['delta']:+.1%}")
        lines.append(f"{row['bench']:<12} {base:>10} {fresh:>10} "
                     f"{delta:>8}  {row['flag']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python benchmarks/_harness.py --fresh DIR [--baseline DIR]``:
    print the regression delta table.  Always exits 0 (warn-only)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="diff fresh BENCH_*.json against committed baselines")
    parser.add_argument("--fresh", default=OUTPUT_DIR,
                        help="directory of freshly generated BENCH_*.json "
                             "(default: the committed baseline dir, which "
                             "compares nothing)")
    parser.add_argument("--baseline", default=OUTPUT_DIR,
                        help="committed baseline directory")
    parser.add_argument("--threshold", type=float,
                        default=REGRESSION_THRESHOLD,
                        help="median wall regression fraction that flags "
                             "WARN (default 0.25)")
    args = parser.parse_args(argv)
    rows = diff_baselines(args.fresh, args.baseline, args.threshold)
    print(format_delta_table(rows))
    warned = [row["bench"] for row in rows if row["flag"] == "WARN"]
    if warned:
        print(f"perf delta: {len(warned)} bench(es) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(warned)} (warn-only)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
