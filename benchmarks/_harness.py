"""Shared measurement harness for the perf benchmarks.

pytest-benchmark gives nice terminal tables, but the numbers the repo
tracks over time live in ``benchmarks/output/BENCH_<name>.json``: a
small, stable schema (wall-clock samples + median/p95, workload
counters, peak RSS) that CI uploads as an artifact and humans diff
across commits.  docs/usage.md ("Reading BENCH_*.json") documents the
schema.

Usage::

    from benchmarks._harness import measure, emit_bench

    timing = measure(run_workload, warmup=1, repeats=3)
    emit_bench("scale", timing, workload={"vswitches": 504, ...})

``measure`` returns a dict with the raw samples and the derived stats;
``emit_bench`` merges in workload metadata and writes the JSON.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")


def peak_rss_mib() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of a small sample."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def measure(
    fn: Callable[[], Any],
    warmup: int = 0,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Time ``fn`` with optional warmup runs.

    Returns ``{"samples": [...], "median": s, "p95": s, "min": s,
    "max": s, "repeats": n, "warmup": n, "result": last_return}``.
    The last run's return value is kept so callers can pull workload
    counters out of it without running the workload twice.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return {
        "samples": [round(s, 6) for s in samples],
        "median": round(percentile(samples, 50.0), 6),
        "p95": round(percentile(samples, 95.0), 6),
        "min": round(min(samples), 6),
        "max": round(max(samples), 6),
        "repeats": repeats,
        "warmup": warmup,
        "result": result,
    }


def emit_bench(
    name: str,
    timing: Dict[str, Any],
    workload: Optional[Dict[str, Any]] = None,
    path: Optional[str] = None,
) -> str:
    """Write ``BENCH_<name>.json`` under benchmarks/output/ (or ``path``).

    The emitted schema::

        {
          "bench": "<name>",
          "wall_seconds": {samples, median, p95, min, max, repeats, warmup},
          "workload": {...counters the benchmark chose to record...},
          "peak_rss_mib": ...,
          "python": "3.11.x", "platform": "Linux-..."
        }
    """
    wall = {k: v for k, v in timing.items() if k != "result"}
    payload = {
        "bench": name,
        "wall_seconds": wall,
        "workload": workload or {},
        "peak_rss_mib": round(peak_rss_mib(), 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if path is None:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        path = os.path.join(OUTPUT_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
