"""Ablation — flow-hash (select group) vs. per-packet random spraying.

DESIGN.md §5(1): the select group hashes on the flow id so all packets
of a flow reach the *same* vSwitch — the vSwitch then emits exactly one
Packet-In per flow (later packets wait as table hits once the rule is
in).  Per-packet spraying sends successive packets of one flow to
different vSwitches, each of which raises its own Packet-In and needs
its own rule: duplicated control-plane work that grows with mesh size.

Measured: duplicate Packet-Ins observed at the controller per multi-
packet flow, under both bucket-selection policies.
"""

from repro.switch.group_table import GroupEntry
from repro.testbed.deployment import build_deployment
from repro.testbed.report import format_table
from repro.traffic import NewFlowSource, SpoofedFlood
from repro.traffic.sizes import FixedSize


def _patch_random_spray(deployment):
    """Replace flow-hash selection with per-packet random choice."""
    rng = deployment.sim.rng.stream("spray")

    def random_select(self, packet):
        if not self.buckets:
            return None
        return rng.choice(self.buckets)

    GroupEntry.select_bucket = random_select


def run(spray: bool):
    dep = build_deployment(seed=9, racks=2, mesh_per_rack=1)
    original = GroupEntry.select_bucket
    try:
        if spray:
            _patch_random_spray(dep)
        sim = dep.sim
        server_ip = dep.servers[0].ip
        flood = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=1500.0)
        flood.start(at=0.5, stop_at=12.0)
        # Multi-packet legitimate flows on the attacked port ride the overlay.
        flows = NewFlowSource(
            sim, dep.attacker, server_ip, rate_fps=20.0, src_net=21,
            sizes=FixedSize(size_packets=30, rate_pps=100.0),
        )
        flows.start(at=3.0, stop_at=10.0)
        sim.run(until=13.0)
        app = dep.scotch
        return {
            "duplicate_packet_ins": app.duplicate_packet_ins,
            "flows": flows.flows_started,
            "failure": 1.0
            - len(
                {
                    k
                    for k in dep.servers[0].recv_tap.received_flow_keys()
                    if k.src_ip.startswith("10.21.")
                }
            )
            / max(1, flows.flows_started),
        }
    finally:
        GroupEntry.select_bucket = original


def test_ablation_flow_hash_vs_spray(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {"flow-hash": run(False), "random-spray": run(True)},
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_lb",
        format_table(
            ["bucket selection", "duplicate Packet-Ins", "client failure"],
            [
                [name, r["duplicate_packet_ins"], r["failure"]]
                for name, r in results.items()
            ],
            title="Ablation — select-group bucket policy (30-pkt flows on attacked port)",
        ),
    )
    # Spraying multiplies duplicate Packet-Ins (per-packet re-punts at
    # vSwitches that lack the flow's rule).
    assert results["random-spray"]["duplicate_packet_ins"] > (
        1.5 * results["flow-hash"]["duplicate_packet_ins"]
    )
