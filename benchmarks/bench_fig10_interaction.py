"""Fig. 10 — interaction of the data path and the control path (Pica8).

Paper: with data flows at 500/1000/2000 packets/s, the data-path loss
ratio exhibits a turning point at a rule-insertion rate of ~1300
rules/s, beyond which loss exceeds 90% at all three data rates.
"""

from repro.testbed.experiments import fig10_point
from repro.testbed.report import format_table

INSERTION_RATES = (200, 600, 1000, 1250, 1400, 2000, 3000)
DATA_RATES = (500, 1000, 2000)


def test_fig10_datapath_control_interaction(benchmark, emit):
    def run():
        return {
            ir: [fig10_point(ir, dr) for dr in DATA_RATES] for ir in INSERTION_RATES
        }

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig10",
        format_table(
            ["insert rules/s"] + [f"loss @ {dr} pps" for dr in DATA_RATES],
            [[ir] + losses[ir] for ir in INSERTION_RATES],
            title="Fig. 10 — data-path packet loss vs. rule insertion rate (Pica8)",
        ),
    )
    # Negligible loss below the knee.
    for ir in (200, 600, 1000, 1250):
        assert all(loss < 0.05 for loss in losses[ir])
    # >90% loss beyond the 1300/s turning point, at every data rate.
    for ir in (1400, 2000, 3000):
        assert all(loss > 0.9 for loss in losses[ir])
