"""Fig. 15 (reconstructed) — trace-driven application performance.

Section 6's preamble: "we conduct the trace driven experiment that
demonstrates the benefits of Scotch to the application performance in a
realistic network environment."  A synthetic heavy-tailed trace with a
mid-run surge (see DESIGN.md §4 for the substitution) is replayed under
vanilla reactive forwarding and under Scotch; measured: legitimate-flow
failure fraction and flow completion times.
"""

from repro.testbed.experiments import fig15_run
from repro.testbed.report import format_table


def test_fig15_trace_driven(benchmark, emit):
    results = benchmark.pedantic(
        lambda: [fig15_run(scheme) for scheme in ("vanilla", "scotch")],
        rounds=1,
        iterations=1,
    )
    emit(
        "fig15",
        format_table(
            ["scheme", "flows", "failure fraction", "mean FCT (s)", "p99 FCT (s)"],
            [
                [r.scheme, r.flows_measured, r.failure_fraction, r.mean_fct, r.p99_fct]
                for r in results
            ],
            title="Fig. 15 — trace-driven run (12x surge mid-trace)",
        ),
    )
    vanilla, scotch = results
    assert scotch.failure_fraction < 0.05
    assert vanilla.failure_fraction > scotch.failure_fraction + 0.3
