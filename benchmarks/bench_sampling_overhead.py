"""Sampling-overhead benchmark — what each flow-measurement mode costs.

Runs the telemetry scorecard's flood-plus-elephants scenario once per
stats mode (full polling, 1-in-10 packet sampling, measurement off) and
emits ``BENCH_sampling.json`` via the shared harness: wall time per
mode, the monitoring-cost counters (polls, sample reports,
control-channel bytes) and the accuracy each mode bought (elephant
recall, migrations).  The ``off`` run is the true zero-overhead
baseline — the datapath hook is a single ``is None`` check — so the
poll/sample deltas are the full cost of each measurement scheme.
"""

from _harness import emit_bench, measure

from repro.core.config import ScotchConfig
from repro.telemetry.scorecard import run_telemetry_point
from repro.testbed.report import format_table

SCENARIO = dict(seed=1, duration=6.0, attack_rate=500.0,
                elephants=5, mice=5)
MODES = ("poll", "sample", "off")


def _run(mode):
    config = ScotchConfig(stats_mode=mode, sampling_period=10)
    return run_telemetry_point(config, **SCENARIO)


def test_sampling_overhead(emit):
    timings = {}
    for mode in MODES:
        timings[mode] = measure(lambda mode=mode: _run(mode),
                                warmup=0, repeats=2)
    scores = {mode: timing["result"] for mode, timing in timings.items()}

    workload = dict(SCENARIO)
    for mode in MODES:
        score = scores[mode]
        workload[f"{mode}_wall_seconds"] = round(
            timings[mode]["median"], 3)
        workload[f"{mode}_monitoring_bytes"] = score.monitoring_bytes
        workload[f"{mode}_polls_sent"] = score.polls_sent
        workload[f"{mode}_sample_reports"] = score.sample_reports
        workload[f"{mode}_recall"] = round(score.recall, 4)
    emit_bench("sampling", timings["sample"], workload=workload)

    rows = []
    off_wall = timings["off"]["median"]
    for mode in MODES:
        score = scores[mode]
        wall = timings[mode]["median"]
        overhead = (wall / off_wall - 1.0) * 100.0 if off_wall else 0.0
        rows.append([
            mode, f"{wall:.3f}", f"{overhead:+.1f}%",
            score.polls_sent, score.sample_reports,
            f"{score.monitoring_bytes:,}",
            f"{score.recall:.2f}" if mode != "off" else "-",
        ])
    emit("sampling_overhead", format_table(
        ["mode", "wall (s)", "vs off", "polls", "reports", "bytes", "recall"],
        rows,
        title="Flow-measurement overhead — flood 500 f/s + 5 elephants, 6 s sim",
    ))

    # Measurement off really measures nothing; both active modes find
    # the elephants; sampling is >= 5x cheaper on the control channel.
    assert scores["off"].monitoring_bytes == 0
    assert scores["off"].flagged == 0
    assert scores["poll"].recall >= 0.9
    assert scores["sample"].recall >= 0.9
    assert (scores["poll"].monitoring_bytes
            >= 5 * scores["sample"].monitoring_bytes)
