"""Health-engine overhead — cost of streaming SLIs + alert evaluation.

Runs the canonical chaos scenario with the health engine off and on and
reports the wall-time cost of the telemetry daemon (snapshot + SLI
computation + rule evaluation every 0.25 simulated seconds) alongside
what it bought: the detection scorecard.  The engine is read-only, so
both runs produce identical model results — the delta is pure
observability overhead.
"""

import time

from repro.faults import run_chaos
from repro.testbed.report import format_table

SEED = 1


def _timed(**kwargs):
    start = time.perf_counter()
    report = run_chaos(seed=SEED, **kwargs)
    return report, time.perf_counter() - start


def test_health_overhead(benchmark, emit):
    (off, off_s), (on, on_s) = benchmark.pedantic(
        lambda: (_timed(health=False), _timed(health=True)),
        rounds=1, iterations=1,
    )
    card = on.scorecard
    overhead = (on_s / off_s - 1.0) * 100.0 if off_s else 0.0
    emit(
        "health_overhead",
        format_table(
            ["run", "wall (s)", "alert transitions", "recall", "precision"],
            [
                ["health off", f"{off_s:.3f}", "-", "-", "-"],
                ["health on", f"{on_s:.3f}", len(on.alert_timeline),
                 f"{card.recall:.2f}", f"{card.precision:.2f}"],
            ],
            title=f"Health engine overhead — chaos 18 s, seed {SEED} "
                  f"(+{overhead:.0f}% wall)",
        ),
    )
    # Read-only contract: identical model outcomes either way.
    assert on.fault_log_jsonl == off.fault_log_jsonl
    assert on.failure_post_recovery == off.failure_post_recovery
    # And the run it instrumented was fully detected, with no noise.
    assert card.all_detected
    assert card.clean
