"""Pool scaling — failover and migration cost vs controller pool size.

Runs the pool chaos workload (docs/cluster.md) at pool sizes 1, 2 and 4
over the same switch fabric and traffic load.  Size 1 is the seed-
equivalent single-controller baseline (no faults — there is nobody to
fail over to); sizes 2 and 4 take staggered member crashes and report
the lease-bounded failover windows (p50/p95), barrier-acked role
migration latencies, and sim events/sec throughput.
"""

from _harness import emit_bench, measure, percentile

from repro.cluster import format_pool_report, run_pool_chaos
from repro.faults.plan import FaultPlan
from repro.testbed.report import format_table

DURATION = 20.0
SWITCHES = 8
RATE_FPS = 400.0


def _plan(members: int) -> FaultPlan:
    """Staggered member crashes: one per spare member, recovery later."""
    plan = FaultPlan()
    for index in range(1, members):
        plan.pool_member_crash(4.0 + 4.0 * (index - 1), f"c{index}",
                               down_for=6.0)
    return plan


def _run(members: int):
    plan = _plan(members) if members > 1 else FaultPlan()
    return run_pool_chaos(seed=7, duration=DURATION, controllers=members,
                          switches=SWITCHES, rate_fps=RATE_FPS, plan=plan)


def test_pool_scaling(emit):
    sizes = (1, 2, 4)
    rows = []
    workload = {"duration_s": DURATION, "switches": SWITCHES,
                "rate_fps": RATE_FPS, "sizes": list(sizes)}
    reports = {}
    for members in sizes:
        timing = measure(lambda m=members: _run(m), warmup=0, repeats=3)
        report = timing["result"]
        reports[members] = report
        events_per_s = report.packet_ins_total / timing["median"]
        windows = report.failover_windows
        migrations = report.migration_latencies
        fo_p50 = percentile(windows, 50.0) if windows else None
        fo_p95 = percentile(windows, 95.0) if windows else None
        mig_p50 = percentile(migrations, 50.0) if migrations else None
        rows.append([
            members, report.packet_ins_total, f"{events_per_s:,.0f}",
            len(windows),
            "-" if fo_p50 is None else f"{fo_p50 * 1000.0:.0f} ms",
            "-" if fo_p95 is None else f"{fo_p95 * 1000.0:.0f} ms",
            "-" if mig_p50 is None else f"{mig_p50 * 1000.0:.1f} ms",
            "HEALTHY" if report.healthy else "DEGRADED",
        ])
        workload[f"pool_{members}"] = {
            "packet_ins": report.packet_ins_total,
            "events_per_s": round(events_per_s, 1),
            "wall_median_s": timing["median"],
            "failovers": len(windows),
            "failover_p50_s": None if fo_p50 is None else round(fo_p50, 4),
            "failover_p95_s": None if fo_p95 is None else round(fo_p95, 4),
            "migration_p50_s": (None if mig_p50 is None
                                else round(mig_p50, 4)),
            "handoffs": report.handoffs_acked,
            "healthy": report.healthy,
        }
    total = measure(lambda: [_run(m) for m in sizes], warmup=0, repeats=1)
    emit_bench("pool", total, workload=workload)
    emit(
        "pool_scaling",
        format_table(
            ["pool size", "packet-ins", "events/s", "failovers",
             "failover p50", "failover p95", "migration p50", "verdict"],
            rows,
            title=f"Pool scaling — {SWITCHES} switches, {RATE_FPS:.0f} f/s, "
                  f"{DURATION:.0f} s, staggered member crashes",
        )
        + "\n\n"
        + format_pool_report(reports[4]),
    )
    for members, report in reports.items():
        assert report.healthy, f"pool size {members} degraded"
        assert report.double_installs == 0
        assert len(report.acked_master) == SWITCHES
    # Pool sizes with spares must survive crashes with bounded windows.
    for members in (2, 4):
        report = reports[members]
        assert report.failover_windows, f"pool size {members} saw no failover"
        assert max(report.failover_windows) <= report.pool_grace
