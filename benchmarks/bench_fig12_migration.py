"""Fig. 12 (reconstructed) — large-flow migration out of the overlay.

Section 5.3: elephants identified from vSwitch flow stats are migrated
to physical paths (first-hop rule installed last), after which they stop
consuming overlay capacity; their vSwitch rules are removed.  Measured:
time-to-migrate, delivery completeness, and rule cleanup — with and
without a middlebox chain (§5.4: migration must keep the same firewall).
"""

from repro.testbed.experiments import fig12_run
from repro.testbed.report import format_table


def test_fig12_large_flow_migration(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {
            "plain": fig12_run(with_firewall=False),
            "through firewall": fig12_run(with_firewall=True),
        },
        rounds=1,
        iterations=1,
    )
    emit(
        "fig12",
        format_table(
            ["scenario", "migrated", "time to migrate (s)", "delivered", "rules cleaned"],
            [
                [name, r.migrated, r.migration_time, f"{r.delivered_packets}/{r.total_packets}",
                 r.overlay_rules_cleaned]
                for name, r in results.items()
            ],
            title="Fig. 12 — elephant migration under a 1500 f/s flood",
        ),
    )
    for result in results.values():
        assert result.migrated
        assert result.migration_time < 6.0
        assert result.delivered_packets == result.total_packets  # lossless hand-over
        assert result.overlay_rules_cleaned
