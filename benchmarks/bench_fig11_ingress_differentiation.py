"""Fig. 11 (reconstructed) — ingress-port differentiation.

Section 5.2 motivates per-ingress-port queues: "if a DDoS attack comes
from one or a few ports, we can limit its impact to those ports only."
Two legitimate clients — one sharing the attacker's switch port, one on
a clean port — are measured under vanilla reactive forwarding and under
Scotch.  Scotch keeps the clean port at zero failure and still carries
the attacked port's legitimate flows over the overlay; vanilla loses
both.
"""

from repro.testbed.experiments import fig11_run
from repro.testbed.report import format_table


def test_fig11_ingress_port_differentiation(benchmark, emit):
    results = benchmark.pedantic(
        lambda: [fig11_run(scheme) for scheme in ("vanilla", "scotch")],
        rounds=1,
        iterations=1,
    )
    emit(
        "fig11",
        format_table(
            ["scheme", "clean-port failure", "attacked-port failure"],
            [[r.scheme, r.clean_port_failure, r.attacked_port_failure] for r in results],
            title="Fig. 11 — client failure by ingress port (attack 2000 f/s)",
        ),
    )
    vanilla, scotch = results
    assert vanilla.clean_port_failure > 0.5
    assert vanilla.attacked_port_failure > 0.5
    assert scotch.clean_port_failure < 0.05
    assert scotch.attacked_port_failure < 0.2
    assert scotch.attacked_port_failure < vanilla.attacked_port_failure
