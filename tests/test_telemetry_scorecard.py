"""Acceptance tests for the sampled-telemetry accuracy/overhead
scorecard: 1-in-10 sampling must keep elephant-detection recall >= 0.9
while cutting flow-stats control-channel bytes >= 5x vs. full polling —
on both the flood scenario (the scorecard's own run) and the scale
scenario — proven from the scorecard JSON itself."""

import json

import pytest

pytestmark = pytest.mark.slow  # scenario-scale runs (several seconds each)

from repro.core.config import ScotchConfig
from repro.obs import Observability, observed
from repro.telemetry.scorecard import (
    TELEMETRY_SCORECARD_VERSION,
    format_telemetry_scorecard,
    render_telemetry_html,
    run_telemetry_scorecard,
    telemetry_scorecard_json,
)

SCORECARD_KWARGS = dict(
    seed=1, duration=6.0, attack_rate=500.0, elephants=5, mice=5,
    periods=(10,),
)


@pytest.fixture(scope="module")
def card():
    return run_telemetry_scorecard(**SCORECARD_KWARGS)


@pytest.fixture(scope="module")
def payload(card):
    return json.loads(telemetry_scorecard_json(card))


def _run(payload, mode):
    return next(r for r in payload["telemetry_runs"] if r["mode"] == mode)


def test_scorecard_meets_accuracy_and_overhead_targets(payload):
    """The PR's acceptance bar, read from the scorecard JSON."""
    sample = _run(payload, "sample")
    assert sample["period"] == 10
    assert sample["recall"] >= 0.9
    assert sample["byte_reduction"] >= 5.0
    # And the baseline proves the scenario is detectable at all.
    assert _run(payload, "poll")["recall"] >= 0.9


def test_scorecard_truth_is_nontrivial(payload):
    poll = _run(payload, "poll")
    assert poll["true_elephants"] >= 3
    assert poll["polls_sent"] > 0
    sample = _run(payload, "sample")
    assert sample["polls_sent"] == 0
    assert sample["sample_reports"] > 0
    assert sample["estimates_emitted"] > 0
    assert sample["migrations_completed"] >= sample["flagged_true"] > 0
    assert sample["mean_detection_delay"] is not None
    assert sample["mean_detection_delay"] < 3.0
    assert sample["precision"] >= 0.9


def test_scorecard_payload_shape(payload):
    assert payload["kind"] == "telemetry_scorecard"
    assert payload["version"] == TELEMETRY_SCORECARD_VERSION
    assert payload["seed"] == 1
    assert len(payload["telemetry_runs"]) == 2
    assert [r["mode"] for r in payload["telemetry_runs"]] == ["poll", "sample"]


def test_scorecard_json_is_canonical_and_deterministic(card, payload):
    text = telemetry_scorecard_json(card)
    # Canonical: compact separators, sorted keys, single line.
    assert "\n" not in text
    assert ": " not in text
    assert json.loads(text) == payload
    # Deterministic: an identical re-run differs at most in the
    # wall-clock-derived cpu-share fields.
    rerun = json.loads(telemetry_scorecard_json(
        run_telemetry_scorecard(**SCORECARD_KWARGS)))

    def strip_cpu(p):
        return {
            **p,
            "telemetry_runs": [
                {k: v for k, v in run.items() if k != "controller_cpu_share"}
                for run in p["telemetry_runs"]
            ],
        }

    assert strip_cpu(rerun) == strip_cpu(payload)


def test_ascii_and_html_renderings(card, tmp_path):
    text = format_telemetry_scorecard(card)
    assert "Telemetry scorecard" in text
    assert "sample 1/10" in text
    assert "recall" in text
    path = tmp_path / "telemetry.html"
    render_telemetry_html(str(path), card)
    html = path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "accuracy / overhead scorecard" in html
    assert "sample 1/10" in html
    assert "</html>" in html


def test_inspect_sniffs_and_summarizes_scorecard(card, tmp_path):
    from repro.obs.inspect import (
        sniff_kind,
        summarize_telemetry_scorecard,
        telemetry_run_rows,
    )

    path = tmp_path / "telemetry.json"
    path.write_text(telemetry_scorecard_json(card) + "\n")
    assert sniff_kind(str(path)) == "telemetry_scorecard"
    summary = summarize_telemetry_scorecard(str(path))
    assert summary["version"] == TELEMETRY_SCORECARD_VERSION
    assert summary["modes"] == ["poll", "sample 1/10"]
    rows = telemetry_run_rows(summary)
    assert len(rows) == 2
    assert rows[1][0] == "sample 1/10"


def test_scale_scenario_sampling_cuts_monitoring_bytes():
    """The scale scenario's half of the acceptance bar: same seed, same
    flash crowd, sample mode >= 5x cheaper with unchanged client
    outcome."""
    from repro.testbed.scale import run_scale

    results = {}
    for mode in ("poll", "sample"):
        with observed(Observability(trace=False, metrics=True)):
            results[mode] = run_scale(
                seed=2, host_vswitches=40, mesh=4, tors=2, targets=4,
                duration=4.0,
                config=ScotchConfig(stats_mode=mode, sampling_period=10),
            )
    poll, sample = results["poll"], results["sample"]
    assert poll.extras["monitoring_bytes"] > 0
    assert sample.extras["sample_reports"] > 0
    assert (poll.extras["monitoring_bytes"]
            >= 5.0 * sample.extras["monitoring_bytes"])
    # Estimates drive the same client-visible behaviour.
    assert sample.client_failure == pytest.approx(poll.client_failure, abs=0.05)
    assert "monitoring:" in sample.summary()
