"""Property tests: the indexed FlowTable lookup equals a naive scan.

The table keeps three index structures (per-five-tuple buckets, the
label index over ``mpls_label``/``gre_key`` rules, and the general scan
list).  These tests pin the contract that none of that indexing is
observable: for any rule set and any packet, ``lookup`` returns exactly
the entry a naive full scan would pick — the highest-priority live
matching entry, ties broken by installation order (older wins).

Field values are drawn from deliberately tiny pools so that matches,
priority ties, label collisions and shadowed rules all occur often.
"""

from hypothesis import given, strategies as st

from repro.net.packet import GreHeader, MplsHeader, Packet
from repro.switch.actions import Drop
from repro.switch.flow_table import FlowEntry, FlowTable
from repro.switch.match import MATCH_FIELDS, Match, extract_fields

IPS = ("10.0.0.1", "10.0.0.2", "10.0.0.3")
PORTS = (0, 1, 80)
PROTOS = (6, 17)
LABELS = (5, 9, 77)
IN_PORTS = (1, 2)

_FIELD_VALUES = {
    "in_port": st.sampled_from(IN_PORTS),
    "src_ip": st.sampled_from(IPS),
    "dst_ip": st.sampled_from(IPS),
    "proto": st.sampled_from(PROTOS),
    "src_port": st.sampled_from(PORTS),
    "dst_port": st.sampled_from(PORTS),
    "mpls_label": st.sampled_from(LABELS),
    "gre_key": st.sampled_from(LABELS),
}


@st.composite
def matches(draw):
    chosen = draw(st.sets(st.sampled_from(MATCH_FIELDS)))
    return Match(**{name: draw(_FIELD_VALUES[name]) for name in sorted(chosen)})


@st.composite
def entry_specs(draw):
    return (
        draw(matches()),
        draw(st.integers(min_value=0, max_value=3)),  # narrow: force ties
        draw(st.sampled_from([0.0, 0.4, 2.0])),  # idle_timeout
        draw(st.sampled_from([0.0, 0.7, 3.0])),  # hard_timeout
    )


@st.composite
def packets(draw):
    packet = Packet(
        src_ip=draw(st.sampled_from(IPS)),
        dst_ip=draw(st.sampled_from(IPS)),
        proto=draw(st.sampled_from(PROTOS)),
        src_port=draw(st.sampled_from(PORTS)),
        dst_port=draw(st.sampled_from(PORTS)),
    )
    encap = draw(st.sampled_from(["none", "mpls", "gre", "gre+mpls"]))
    if "gre" in encap:
        packet.push(GreHeader(key=draw(st.sampled_from(LABELS))))
    if "mpls" in encap:
        packet.push(MplsHeader(label=draw(st.sampled_from(LABELS))))
    return packet, draw(st.sampled_from(IN_PORTS))


def naive_winner(entries, fields, now):
    live = [
        entry
        for entry in entries
        if not entry.expired(now) and entry.match.matches(fields)
    ]
    if not live:
        return None
    return max(live, key=lambda entry: (entry.priority, -entry.entry_id))


@given(
    specs=st.lists(entry_specs(), min_size=1, max_size=25),
    probes=st.lists(
        st.tuples(packets(), st.sampled_from([0.0, 0.5, 1.0, 2.5])),
        min_size=1,
        max_size=10,
    ),
)
def test_lookup_equals_naive_scan(specs, probes):
    table = FlowTable()
    for match, priority, idle, hard in specs:
        table.insert(
            FlowEntry(match, priority, [Drop()], idle_timeout=idle, hard_timeout=hard)
        )
    # Probe in time order: lookup legitimately mutates the table (lazy
    # expiry, winner counters), so each reference snapshot is taken
    # immediately before the lookup it checks.
    for (packet, in_port), now in sorted(probes, key=lambda probe: probe[1]):
        fields = extract_fields(packet, in_port)
        expected = naive_winner(table.entries(), fields, now)
        got = table.lookup(packet, in_port, now)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got.entry_id == expected.entry_id


@given(specs=st.lists(entry_specs(), min_size=1, max_size=25))
def test_insert_replaces_same_match_and_priority(specs):
    table = FlowTable()
    for match, priority, idle, hard in specs:
        table.insert(
            FlowEntry(match, priority, [Drop()], idle_timeout=idle, hard_timeout=hard)
        )
    # OpenFlow overlap-replace: one live entry per (match, priority).
    assert len(table) == len({(match.key(), priority) for match, priority, _, _ in specs})
    assert len(table.entries()) == len(table)


@given(specs=st.lists(entry_specs(), min_size=1, max_size=25), data=st.data())
def test_remove_clears_every_index(specs, data):
    table = FlowTable()
    for match, priority, idle, hard in specs:
        table.insert(
            FlowEntry(match, priority, [Drop()], idle_timeout=idle, hard_timeout=hard)
        )
    victim_match, _, _, _ = data.draw(st.sampled_from(specs))
    removed = table.remove(victim_match)
    assert removed >= 1
    assert all(entry.match != victim_match for entry in table.entries())
    assert len(table.entries()) == len(table)
    # A fresh lookup never returns a removed rule.
    (packet, in_port), now = data.draw(
        st.tuples(packets(), st.sampled_from([0.0, 1.0]))
    )
    got = table.lookup(packet, in_port, now)
    assert got is None or got.match != victim_match
