"""Tests for address helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    int_to_ip,
    ip_to_int,
    make_ip,
    make_mac,
    random_spoofed_ip,
)


def test_ip_roundtrip_known_values():
    assert ip_to_int("0.0.0.0") == 0
    assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
    assert int_to_ip(ip_to_int("10.1.2.3")) == "10.1.2.3"


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_roundtrip_property(value):
    assert ip_to_int(int_to_ip(value)) == value


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
def test_malformed_ip_rejected(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_int_to_ip_range_check():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(1 << 32)


def test_make_ip_layout():
    assert make_ip(20, 0) == "10.20.0.0"
    assert make_ip(20, 257) == "10.20.1.1"


def test_make_ip_bounds():
    with pytest.raises(ValueError):
        make_ip(256, 0)
    with pytest.raises(ValueError):
        make_ip(0, 1 << 16)


def test_make_mac_locally_administered_and_unique():
    macs = {make_mac(i) for i in range(100)}
    assert len(macs) == 100
    assert all(m.startswith("02:") for m in macs)


def test_random_spoofed_ip_is_plausible_unicast():
    rng = random.Random(1)
    for _ in range(200):
        address = random_spoofed_ip(rng)
        first = int(address.split(".")[0])
        assert 1 <= first <= 254


def test_random_spoofed_ip_deterministic_per_seed():
    assert random_spoofed_ip(random.Random(5)) == random_spoofed_ip(random.Random(5))
