"""Tests for the OFA model — the calibrated control-path bottleneck."""

import pytest

from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.openflow.messages import (
    ADD,
    DELETE,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    PacketIn,
    PacketOut,
)
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.group_table import Bucket
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH, PICA8_PRONTO_3780
from repro.switch.switch import PhysicalSwitch


def build(profile=PICA8_PRONTO_3780):
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "sw", profile))
    inbox = []
    sw.channel.controller_sink = lambda dpid, msg: inbox.append((dpid, msg))
    return sim, sw, inbox


def flow_mod(index, **kwargs):
    key = FlowKey(f"10.0.{index >> 8 & 255}.{index & 255}", "2.2.2.2", 6,
                  1024 + index % 60000, 80)
    return FlowMod(match=Match.for_flow(key), priority=100, actions=[Output(1)], **kwargs)


class TestPacketIn:
    def test_packet_in_rate_limited(self):
        sim, sw, inbox = build()
        for i in range(100):
            sw.ofa.punt(Packet("1.1.1.1", "2.2.2.2", src_port=i, dst_port=80), 1, "no_match")
        sim.run(until=0.25)
        # 200 msg/s for 0.25 s -> ~50 Packet-Ins.
        packet_ins = [m for _, m in inbox if isinstance(m, PacketIn)]
        assert 40 <= len(packet_ins) <= 60

    def test_queue_overflow_drops(self):
        sim, sw, inbox = build()
        queue_cap = sw.profile.packet_in_queue
        for i in range(queue_cap + 200):
            sw.ofa.punt(Packet("1.1.1.1", "2.2.2.2", src_port=i % 60000, dst_port=80), 1, "x")
        assert sw.ofa.packet_ins_dropped >= 150

    def test_packet_in_carries_context(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        packet = Packet("1.1.1.1", "2.2.2.2", src_port=7, dst_port=80)
        packet.popped_labels.extend([500, 600])
        sw.ofa.punt(packet, 3, "no_match")
        sim.run()
        _, message = inbox[0]
        assert message.in_port == 3
        assert message.metadata["tunnel_id"] == 500
        assert message.metadata["inner_label"] == 600
        assert message.datapath_id == "sw"


class TestInstall:
    def test_lossless_below_threshold(self):
        sim, sw, _ = build()
        gap = 1.0 / 150.0
        for i in range(300):
            sim.schedule(i * gap, sw.ofa.handle_from_controller, flow_mod(i, idle_timeout=60))
        sim.run()
        assert sw.ofa.installs_failed == 0
        assert sw.ofa.installs_succeeded == 300

    def test_lossy_beyond_threshold(self):
        sim, sw, _ = build()
        gap = 1.0 / 800.0
        for i in range(1600):
            sim.schedule(i * gap, sw.ofa.handle_from_controller, flow_mod(i, idle_timeout=60))
        sim.run()
        assert sw.ofa.installs_failed > 100
        # Successful rate should land near the Fig. 9 curve (~620/s over 2 s).
        assert 1000 < sw.ofa.installs_succeeded < 1500

    def test_success_flattens_at_plateau(self):
        sim, sw, _ = build()
        gap = 1.0 / 5000.0
        for i in range(10000):
            sim.schedule(i * gap, sw.ofa.handle_from_controller, flow_mod(i, idle_timeout=60))
        sim.run()
        rate = sw.ofa.installs_succeeded / 2.0
        assert rate < sw.profile.install_saturated_rate * 1.05

    def test_table_full_counts_failure(self):
        sim, sw, _ = build(PICA8_PRONTO_3780.variant(tcam_capacity=5))
        for i in range(10):
            sim.schedule(i * 0.1, sw.ofa.handle_from_controller, flow_mod(i, idle_timeout=0))
        sim.run()
        assert sw.ofa.table_full_failures == 5
        assert sw.ofa.installs_succeeded == 5

    def test_delete_applies(self):
        sim, sw, _ = build(IDEAL_SWITCH)
        mod = flow_mod(1)
        sw.ofa.handle_from_controller(mod)
        sim.run()
        assert len(sw.datapath.table(0)) == 1
        sw.ofa.handle_from_controller(
            FlowMod(match=mod.match, priority=100, command=DELETE)
        )
        sim.run()
        assert len(sw.datapath.table(0)) == 0

    def test_datapath_degradation_beyond_knee(self):
        sim, sw, _ = build()
        assert sw.ofa.datapath_capacity() == sw.profile.datapath_pps
        gap = 1.0 / 2000.0  # beyond the 1300/s knee
        for i in range(1000):
            sim.schedule(i * gap, sw.ofa.handle_from_controller, flow_mod(i))
        sim.run(until=0.4)
        assert sw.ofa.datapath_capacity() == sw.profile.datapath_degraded_pps

    def test_degradation_recovers_when_writes_stop(self):
        sim, sw, _ = build()
        gap = 1.0 / 2000.0
        for i in range(500):
            sim.schedule(i * gap, sw.ofa.handle_from_controller, flow_mod(i))
        sim.run(until=0.2)
        assert sw.ofa.datapath_capacity() == sw.profile.datapath_degraded_pps
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sw.ofa.datapath_capacity() == sw.profile.datapath_pps


class TestControlMessages:
    def test_group_mod_add_modify_delete(self):
        sim, sw, _ = build(IDEAL_SWITCH)
        sw.ofa.handle_from_controller(
            GroupMod(group_id=1, buckets=[Bucket([Output(1)])], command=ADD)
        )
        assert 1 in sw.datapath.groups
        sw.ofa.handle_from_controller(
            GroupMod(group_id=1, buckets=[Bucket([Output(2)]), Bucket([Output(3)])], command=ADD)
        )
        assert len(sw.datapath.groups.get(1).buckets) == 2  # ADD upserts
        sw.ofa.handle_from_controller(GroupMod(group_id=1, command=DELETE))
        assert 1 not in sw.datapath.groups

    def test_packet_out_executes_actions(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        packet = Packet("1.1.1.1", "2.2.2.2")
        sw.ofa.handle_from_controller(PacketOut(packet=packet, actions=[Output(99)]))
        sim.run()
        assert sw.datapath.dropped_no_route == 1  # port 99 does not exist

    def test_flow_stats_reply(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        sw.ofa.handle_from_controller(flow_mod(1, cookie="tagged"))
        sim.run()
        sw.ofa.handle_from_controller(FlowStatsRequest())
        sim.run()
        replies = [m for _, m in inbox if isinstance(m, FlowStatsReply)]
        assert len(replies) == 1
        assert len(replies[0].entries) == 1
        assert replies[0].entries[0].cookie == "tagged"

    def test_flow_stats_filter_by_table(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        sw.ofa.handle_from_controller(flow_mod(1, table_id=0))
        sw.ofa.handle_from_controller(flow_mod(2, table_id=1))
        sim.run()
        sw.ofa.handle_from_controller(FlowStatsRequest(table_id=1))
        sim.run()
        replies = [m for _, m in inbox if isinstance(m, FlowStatsReply)]
        assert len(replies[0].entries) == 1
        assert replies[0].entries[0].table_id == 1

    def test_echo_and_barrier(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        echo = EchoRequest()
        barrier = BarrierRequest()
        sw.ofa.handle_from_controller(echo)
        sw.ofa.handle_from_controller(barrier)
        sim.run()
        kinds = {type(m) for _, m in inbox}
        assert EchoReply in kinds and BarrierReply in kinds
        echo_reply = next(m for _, m in inbox if isinstance(m, EchoReply))
        assert echo_reply.request_xid == echo.xid

    def test_dead_switch_silent(self):
        sim, sw, inbox = build(IDEAL_SWITCH)
        sw.fail()
        sw.ofa.handle_from_controller(EchoRequest())
        sim.run()
        assert inbox == []
