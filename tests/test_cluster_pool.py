"""Tests for the elastic controller pool (docs/cluster.md).

Covers the bus, leader election, lease-bounded failover, generation-
fenced role handoff, orphan buffering/drain, exactly-once flow setup,
autoscaling, EASM rebalancing, pool chaos invariants and determinism.
"""

import pytest

from repro.cluster import (
    PoolTraffic,
    build_pool_deployment,
    peak_live_members,
    pool_chaos_config,
    randomized_pool_plan,
    run_pool_autoscale,
    run_pool_chaos,
)
from repro.cluster.bus import PoolBus
from repro.cluster.pool import pool_grace
from repro.core.config import ScotchConfig
from repro.faults.plan import KINDS, POOL_KINDS, FaultEvent, FaultPlan
from repro.openflow.messages import RoleMod, RoleStatus
from repro.sim.engine import Simulator


def build(controllers=3, switches=6, seed=3, **overrides):
    base = pool_chaos_config(controllers)
    if overrides:
        merged = {**base.__dict__, **overrides}
        base = ScotchConfig(**merged)
    return build_pool_deployment(seed=seed, switches=switches, config=base)


# ----------------------------------------------------------------------
# PoolBus
# ----------------------------------------------------------------------
def test_bus_broadcast_skips_sender_and_detached():
    sim = Simulator(seed=0)
    bus = PoolBus(sim, delay=0.01)
    got = {"a": [], "b": [], "c": []}
    for name in ("a", "b", "c"):
        bus.attach(name, lambda src, p, name=name: got[name].append((src, p)))
    bus.detach("c")
    bus.broadcast("a", ("hello",))
    sim.run(until=0.1)
    assert got["b"] == [("a", ("hello",))]
    assert got["a"] == [] and got["c"] == []


def test_bus_partition_blocks_cross_group_and_heals():
    sim = Simulator(seed=0)
    bus = PoolBus(sim, delay=0.01)
    got = {"a": [], "b": []}
    bus.attach("a", lambda src, p: got["a"].append(p))
    bus.attach("b", lambda src, p: got["b"].append(p))
    bus.set_partition([["a"], ["b"]])
    bus.send("a", "b", ("x",))
    sim.run(until=0.1)
    assert got["b"] == [] and bus.partition_blocked == 1
    bus.heal_partition()
    bus.send("a", "b", ("y",))
    sim.run(until=0.2)
    assert got["b"] == [("y",)]


def test_bus_loss_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        bus = PoolBus(sim, delay=0.01)
        bus.loss = 0.5
        got = []
        bus.attach("b", lambda src, p: got.append(p))
        for i in range(40):
            bus.send("a", "b", (i,))
        sim.run(until=1.0)
        return got

    assert run(5) == run(5)
    assert run(5) != run(6)
    assert 0 < len(run(5)) < 40


# ----------------------------------------------------------------------
# Election + failover
# ----------------------------------------------------------------------
def test_initial_leader_is_lowest_id_no_election_storm():
    dep = build()
    dep.sim.run(until=3.0)
    pool = dep.pool
    for member in pool.members.values():
        assert member.leader_id == "c0"
        assert member.term == 1
    assert not [e for e in pool.events if e["event"] == "leader-elected"]


def test_every_switch_gets_a_master_at_start():
    dep = build()
    dep.sim.run(until=3.0)
    pool = dep.pool
    assert sorted(pool.acked_master) == [s.name for s in dep.switches]
    # Spread: no member hoards the switches.
    counts = pool.member_switch_counts()
    assert max(counts.values()) - min(counts.values()) <= 1


def test_leader_crash_elects_new_leader_within_bounded_window():
    dep = build()
    dep.sim.run(until=2.0)
    dep.pool.crash_member("c0")  # the leader
    config = dep.config
    bound = (config.pool_lease_timeout + config.pool_election_timeout
             + 2 * config.pool_lease_interval + 4 * config.pool_bus_delay)
    dep.sim.run(until=2.0 + bound)
    elected = [e for e in dep.pool.events if e["event"] == "leader-elected"]
    assert len(elected) == 1
    assert elected[0]["leader"] == "c1"  # lowest live id wins the tie
    assert elected[0]["t"] - 2.0 <= bound
    for member_id in ("c1", "c2"):
        member = dep.pool.members[member_id]
        assert member.leader_id == "c1"
        assert member.term == 2


def test_member_crash_promotes_new_master_within_pool_grace():
    dep = build()
    traffic = PoolTraffic(dep.sim, dep.switches)
    traffic.start(at=0.5, stop_at=15.0, rate_fps=200.0)
    dep.sim.run(until=4.0)
    pool = dep.pool
    victim = "c1"  # a follower, so election noise stays out of the test
    orphans = [d for d, m in pool.acked_master.items() if m == victim]
    assert orphans
    pool.crash_member(victim)
    dep.sim.run(until=4.0 + pool_grace(dep.config))
    for dpid in orphans:
        master = pool.acked_master[dpid]
        assert master != victim
        assert pool.members[master].alive
    assert pool.orphan_since == {}  # every orphan window closed
    # The measured windows are lease-bounded: death is only observable
    # through missing alive-beats, never via shared-memory shortcuts.
    assert pool.failover_windows
    for window in pool.failover_windows:
        assert dep.config.pool_lease_timeout <= window <= pool_grace(dep.config)


def test_restored_member_rejoins_as_follower():
    dep = build()
    dep.sim.run(until=2.0)
    dep.pool.crash_member("c2")
    dep.sim.run(until=6.0)
    dep.pool.restore_member("c2")
    dep.sim.run(until=9.0)
    member = dep.pool.members["c2"]
    assert member.alive
    assert member.leader_id == "c0"
    assert dep.pool.live_member_count() == 3


# ----------------------------------------------------------------------
# Role handoff: generation fencing + orphan drain + exactly-once
# ----------------------------------------------------------------------
def test_stale_role_mod_is_rejected_by_generation_fence():
    dep = build()
    dep.sim.run(until=3.0)
    switch = dep.switches[0]
    current_gen = switch.ofa.role_generation
    assert current_gen >= 1 and switch.ofa.master_id is not None
    replies = []
    original_sink = switch.channel.controller_sink
    switch.channel.controller_sink = lambda d, m: replies.append(m) or original_sink(d, m)
    switch.channel.send_to_switch(RoleMod(master_id="cX", generation=current_gen))
    dep.sim.run(until=3.5)
    assert switch.ofa.stale_role_mods == 1
    assert switch.ofa.master_id != "cX"
    errors = [m for m in replies if getattr(m, "code", "") == "role_stale"]
    assert len(errors) == 1
    assert dep.pool.stale_role_errors == 1
    # A strictly newer generation is adopted and acknowledged.
    switch.channel.send_to_switch(RoleMod(master_id="cY", generation=current_gen + 5))
    dep.sim.run(until=4.0)
    assert switch.ofa.master_id == "cY"
    assert switch.ofa.role_generation == current_gen + 5
    assert any(isinstance(m, RoleStatus) for m in replies)


def test_orphaned_packet_ins_buffer_and_drain_to_new_master():
    dep = build()
    traffic = PoolTraffic(dep.sim, dep.switches)
    dep.sim.run(until=3.0)
    pool = dep.pool
    victim = "c1"
    victim_switches = [d for d, m in pool.acked_master.items() if m == victim]
    assert victim_switches
    pool.crash_member(victim)
    # Traffic starts only after the crash: every Packet-In for the
    # victim's switches lands in the orphan buffer first.
    traffic.start(at=3.1, stop_at=3.6, rate_fps=600.0)
    dep.sim.run(until=3.0 + pool_grace(dep.config))
    assert pool.orphaned > 0
    assert pool.drained == pool.orphaned - pool.orphan_dropped
    assert pool.orphan_dropped == 0
    # Every drained flow got its rule installed by the new master.
    for dpid in victim_switches:
        keys = [k for k in pool.flow_owner if k[0] == dpid]
        assert keys
        owners = {pool.flow_owner[k] for k in keys}
        assert victim not in owners


def test_no_flow_setup_lost_or_double_installed_across_crash():
    dep = build()
    traffic = PoolTraffic(dep.sim, dep.switches, flows_per_switch=32)
    traffic.start(at=0.5, stop_at=14.0, rate_fps=400.0)
    dep.sim.run(until=4.0)
    pool = dep.pool
    pool.crash_member("c1")
    dep.sim.run(until=16.0)
    assert pool.double_installs == 0
    assert pool.orphan_dropped == 0
    # Zero lost setups: every switch holds exactly one rule per distinct
    # five-tuple the traffic offered it (32 flows round-robin).
    for switch in dep.switches:
        owned = [k for k in pool.flow_owner if k[0] == switch.name]
        assert len(owned) == 32
        installed = {
            tuple(e.match.fields.get(f) for f in
                  ("src_ip", "dst_ip", "proto", "src_port", "dst_port"))
            for e in switch.datapath.table(0).entries()
        }
        for _dpid, flow_key in owned:
            five_tuple = (flow_key.src_ip, flow_key.dst_ip, flow_key.proto,
                          flow_key.src_port, flow_key.dst_port)
            assert five_tuple in installed, f"flow lost at {switch.name}"
        assert len(installed) == 32  # one rule per flow, never duplicated


def test_handled_plus_buffered_accounts_for_every_packet_in():
    dep = build()
    traffic = PoolTraffic(dep.sim, dep.switches)
    traffic.start(at=0.5, stop_at=9.0, rate_fps=300.0)
    dep.sim.run(until=5.0)
    dep.pool.crash_member("c2")
    dep.sim.run(until=10.0)
    pool = dep.pool
    handled = sum(m.packet_ins_handled for m in pool.members.values())
    buffered = len(pool._orphan_buffer)
    assert pool.packet_ins_total == handled - pool.drained + pool.orphaned
    assert pool.orphaned == pool.drained + buffered + pool.orphan_dropped


# ----------------------------------------------------------------------
# Autoscaling + rebalancing
# ----------------------------------------------------------------------
def test_flash_crowd_scales_up_then_cools_back_down():
    report = run_pool_autoscale(seed=2)
    assert peak_live_members(report) >= 2
    assert report.members_live == 1  # back at the floor after cooldown
    events = [e["event"] for e in report.pool_events]
    up = events.index("scale-up")
    down = events.index("scale-down")
    assert up < down
    assert "member-retired" in events
    assert not report.violations
    assert report.double_installs == 0
    # Draining handed every switch off before the member retired.
    assert len(report.acked_master) == report.switches


def test_scale_up_respects_ceiling_and_warmup():
    report = run_pool_autoscale(seed=2)
    spawns = [e for e in report.pool_events if e["event"] == "member-spawn"]
    assert 1 <= len(spawns) <= 2  # floor 1 + ceiling 3
    times = [e["t"] for e in spawns]
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= 1.5  # pool_warmup spacing


def test_rebalance_moves_switch_from_hot_member_to_idle_one():
    dep = build(controllers=2, switches=4)
    dep.sim.run(until=2.0)
    pool = dep.pool
    hot = [d for d, m in pool.acked_master.items() if m == "c0"]
    assert hot
    # All load lands on c0's switches: imbalance ratio is infinite.
    hot_switches = [s for s in dep.switches if s.name in hot]
    traffic = PoolTraffic(dep.sim, hot_switches)
    traffic.start(at=2.0, stop_at=10.0, rate_fps=400.0)
    dep.sim.run(until=10.0)
    moves = [e for e in pool.events if e["event"] == "rebalance-move"]
    assert moves
    assert moves[0]["src"] == "c0" and moves[0]["dst"] == "c1"
    moved = moves[0]["dpid"]
    assert pool.acked_master[moved] == "c1"
    assert not [v for v in pool.events if v["event"] == "role-abandoned"]


# ----------------------------------------------------------------------
# Chaos scenario + invariants + determinism
# ----------------------------------------------------------------------
def test_pool_chaos_default_plan_stays_healthy():
    report = run_pool_chaos(seed=1)
    assert report.healthy
    assert report.faults_injected == 3
    assert set(report.fault_counts) == set(POOL_KINDS)
    assert report.violations == []
    assert report.double_installs == 0
    assert report.members_live == 3
    assert len(report.acked_master) == report.switches
    for window in report.failover_windows:
        assert window <= report.pool_grace


def test_pool_chaos_is_byte_deterministic():
    a = run_pool_chaos(seed=4, duration=24.0)
    b = run_pool_chaos(seed=4, duration=24.0)
    assert a.pool_events_jsonl == b.pool_events_jsonl
    assert a.fault_log_jsonl == b.fault_log_jsonl
    assert a.packet_ins_total == b.packet_ins_total
    c = run_pool_chaos(seed=5, duration=24.0)
    assert a.pool_events_jsonl != c.pool_events_jsonl


def test_split_brain_partition_converges_after_heal():
    config = pool_chaos_config(3)
    plan = FaultPlan().pool_partition(3.0, [["c0"], ["c1", "c2"]],
                                      duration=3.0)
    report = run_pool_chaos(seed=6, plan=plan, config=config)
    # The minority/majority split elects a second leader; after the
    # heal, precedence (higher term, then lowest id) converges on one.
    assert report.elections >= 1
    assert report.violations == []
    assert report.double_installs == 0
    assert len(report.acked_master) == report.switches


def test_pool_chaos_with_health_produces_scorecard():
    report = run_pool_chaos(seed=1, health=True)
    assert report.health_enabled
    assert report.scorecard is not None
    names = set(report.scorecard.rules)
    assert "pool_member_down" in names
    member_down = report.scorecard.rules["pool_member_down"]
    assert member_down.firings >= 1


def test_randomized_pool_plan_is_seed_deterministic_and_pool_only():
    from repro.sim.rng import RngRegistry

    a = randomized_pool_plan(RngRegistry(9), 20.0, ["c0", "c1", "c2"])
    b = randomized_pool_plan(RngRegistry(9), 20.0, ["c0", "c1", "c2"])
    assert a.events() == b.events()
    assert all(e.kind in POOL_KINDS for e in a)
    c = randomized_pool_plan(RngRegistry(10), 20.0, ["c0", "c1", "c2"])
    assert a.events() != c.events()


def test_pool_kinds_stay_out_of_randomized_kinds():
    # The golden chaos fixtures depend on randomized() drawing from the
    # original six kinds only.
    assert set(KINDS) == {
        "channel_loss", "channel_flap", "partition",
        "vswitch_crash", "ofa_stall", "controller_outage",
    }
    assert not set(POOL_KINDS) & set(KINDS)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "no_such_kind")
    # Pool kinds validate through the union.
    FaultEvent(1.0, "pool_member_crash", "c1", 2.0)


def test_injector_rejects_pool_plan_without_pool():
    from repro.faults.injector import FaultInjector

    sim = Simulator(seed=0)
    from repro.net.topology import Network

    plan = FaultPlan().pool_member_crash(1.0, "c0")
    injector = FaultInjector(sim, Network(sim), plan=plan)
    with pytest.raises(ValueError):
        injector.start()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_pool_config_validation():
    with pytest.raises(ValueError):
        ScotchConfig(controllers=0)
    with pytest.raises(ValueError):
        ScotchConfig(pool_min_controllers=3, pool_max_controllers=2)
    with pytest.raises(ValueError):
        ScotchConfig(pool_lease_timeout=0.2, pool_lease_interval=0.5)
    with pytest.raises(ValueError):
        ScotchConfig(pool_scale_down_pps=5000.0, pool_scale_up_pps=4000.0)
    with pytest.raises(ValueError):
        ScotchConfig(pool_imbalance_ratio=1.0)
