"""Tests for the streaming health engine: SLI computation over sliding
sim-time windows, the daemon tick lifecycle, and alert integration."""

import json

import pytest

from repro.obs.health import HealthEngine, SliSpec, _wildcard_capture
from repro.obs.metrics import MetricsRegistry
from repro.obs.rules import parse_rules
from repro.sim.engine import Simulator


def _engine(sim, registry, slis, rules=()):
    return HealthEngine(sim, registry, rules=list(rules), slis=slis,
                        interval=0.25)


# ----------------------------------------------------------------------
# Construction / validation
# ----------------------------------------------------------------------
def test_engine_rejects_disabled_registry():
    from repro.obs import NULL_OBS

    with pytest.raises(ValueError):
        HealthEngine(Simulator(), NULL_OBS.metrics)


def test_engine_rejects_rule_referencing_unknown_sli():
    with pytest.raises(ValueError):
        HealthEngine(Simulator(), MetricsRegistry(),
                     rules=parse_rules("r: no.such.sli > 1"))


def test_engine_rejects_bad_interval():
    with pytest.raises(ValueError):
        HealthEngine(Simulator(), MetricsRegistry(), rules=[], interval=0.0)


def test_sli_spec_validation():
    with pytest.raises(ValueError):
        SliSpec("x", "bogus")
    with pytest.raises(ValueError):
        SliSpec("x", "rate", window=0.0)


def test_wildcard_capture():
    assert _wildcard_capture("ofa.*.packet_ins", "ofa.sw1.packet_ins") == "sw1"
    assert _wildcard_capture("ofa.*.packet_ins", "ofa.sw1.drops") is None
    assert _wildcard_capture("overlay.relay.*", "overlay.relay.mv0") == "mv0"
    assert _wildcard_capture("exact", "exact") == "exact"
    assert _wildcard_capture("exact", "other") is None


# ----------------------------------------------------------------------
# SLI kinds
# ----------------------------------------------------------------------
def test_rate_sli_windows_counter_deltas():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("ofa.sw1.packet_in_drops")
    spec = SliSpec("drops", "rate", window=1.0,
                   patterns=("ofa.*.packet_in_drops",))
    engine = _engine(sim, registry, [spec])
    engine.start()
    for index in range(8):  # 10 events every 0.25s -> 40/s
        sim.schedule(0.25 * index + 0.1, counter.inc, 10)
    sim.run(until=2.0)
    engine.stop()
    series = dict(engine.series["drops"])
    assert series[2.0] == pytest.approx(40.0)
    # Early in the run the baseline is the engine-start snapshot, so the
    # rate uses the actual (shorter) span instead of reading low.
    assert series[0.25] == pytest.approx(40.0)


def test_gauge_sli_max_and_sum():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("ofa.a.packet_in_queue", fn=lambda: 3.0)
    registry.gauge("ofa.b.packet_in_queue", fn=lambda: 7.0)
    specs = [
        SliSpec("qmax", "gauge", gauge_pattern="ofa.*.packet_in_queue",
                agg="max"),
        SliSpec("qsum", "gauge", gauge_pattern="ofa.*.packet_in_queue",
                agg="sum"),
    ]
    values = _engine(sim, registry, specs).compute(0.0)
    assert values["qmax"] == 7.0
    assert values["qsum"] == 10.0


def test_quantile_sli_sees_only_the_window():
    sim = Simulator()
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
    spec = SliSpec("p50", "quantile", window=0.5, histogram="lat", q=0.5)
    engine = _engine(sim, registry, [spec])
    engine.start()

    def observe(value, n):
        for _ in range(n):
            hist.observe(value)

    # 100 fast observations early, 10 slow ones inside the last window:
    # the windowed p50 must reflect only the slow ones (the whole-run
    # p50 would be 0.001).
    sim.schedule(0.1, observe, 0.001, 100)
    sim.schedule(1.4, observe, 0.5, 10)
    sim.run(until=1.5)
    engine.stop()
    # Bucket bound 1.0 clamped to the histogram's observed max 0.5.
    assert dict(engine.series["p50"])[1.5] == pytest.approx(0.5)


def test_saturation_sli_per_entity_capacity():
    sim = Simulator()
    registry = MetricsRegistry()
    a = registry.counter("ofa.a.packet_ins")
    b = registry.counter("ofa.b.packet_ins")
    registry.gauge("ofa.a.packet_in_capacity", fn=lambda: 100.0)
    registry.gauge("ofa.b.packet_in_capacity", fn=lambda: 400.0)
    specs = [
        SliSpec("sat_max", "saturation", window=1.0,
                patterns=("ofa.*.packet_ins",),
                capacity="ofa.{}.packet_in_capacity", agg="max"),
        SliSpec("sat_total", "saturation", window=1.0,
                patterns=("ofa.*.packet_ins",),
                capacity="ofa.{}.packet_in_capacity", agg="total"),
    ]
    engine = _engine(sim, registry, specs)
    engine.start()

    def bump():
        a.inc(20)   # 80/s against capacity 100 -> 0.8
        b.inc(25)   # 100/s against capacity 400 -> 0.25

    for index in range(4):
        sim.schedule(0.25 * index + 0.05, bump)
    sim.run(until=1.0)
    engine.stop()
    latest = engine.latest()
    assert latest["sat_max"] == pytest.approx(0.8)
    assert latest["sat_total"] == pytest.approx(180.0 / 500.0)


def test_ratio_sli_reads_healthy_without_demand():
    sim = Simulator()
    registry = MetricsRegistry()
    delivered = registry.counter("controller.packet_ins")
    generated = registry.counter("ofa.sw1.packet_ins")
    spec = SliSpec("ratio", "ratio", window=0.5,
                   patterns=("controller.packet_ins",),
                   denominator=("ofa.*.packet_ins",), min_demand=10.0)
    engine = _engine(sim, registry, [spec])
    engine.start()
    sim.schedule(0.05, lambda: (generated.inc(100), delivered.inc(25)))
    sim.run(until=0.25)
    assert engine.latest()["ratio"] == pytest.approx(0.25)
    sim.run(until=2.0)  # traffic over: demand under the floor -> healthy
    engine.stop()
    assert engine.latest()["ratio"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_stop_start_does_not_duplicate_tick_chain():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.counter("c")
    spec = SliSpec("r", "rate", patterns=("c",))
    engine = _engine(sim, registry, [spec])
    engine.start()
    engine.start()  # double start is a no-op
    sim.run(until=1.0)
    assert engine.ticks == 4  # t = 0.25 .. 1.0
    engine.stop()
    sim.run(until=2.0)
    assert engine.ticks == 4  # stopped: the pending tick was cancelled
    engine.start()
    sim.run(until=3.0)
    engine.stop()
    assert engine.ticks == 8  # t = 2.25 .. 3.0: one chain, not two
    assert len(engine.series["r"]) == 8


def test_engine_events_are_daemon_only():
    sim = Simulator()
    engine = _engine(sim, MetricsRegistry(),
                     [SliSpec("g", "gauge", gauge_pattern="x")])
    engine.start()
    sim.run()  # no foreground work: the engine must not hold the run
    assert sim.now == 0.0
    assert engine.ticks == 0


def test_engine_fires_rules_into_a_deterministic_timeline():
    import json

    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("errors")
    spec = SliSpec("err_rate", "rate", window=0.5, patterns=("errors",))
    rules = parse_rules("errors_high: err_rate > 10 for 0.25 clear 5")
    engine = HealthEngine(sim, registry, rules=rules, slis=[spec],
                          interval=0.25)
    engine.start()
    for index in range(6):  # a burst of ~100/s between 0.5 and 1.0
        sim.schedule(0.5 + 0.1 * index, counter.inc, 10)
    sim.schedule(3.0, lambda: None)
    sim.run()
    engine.stop()
    states = [record["state"] for record in engine.timeline]
    assert "firing" in states
    assert states[-1] == "resolved"
    firings = engine.firing_intervals(end=3.0)
    assert len(firings) == 1
    name, t0, t1 = firings[0]
    assert name == "errors_high"
    assert 0.0 < t0 < t1 <= 3.0
    lines = engine.timeline_jsonl().splitlines()
    assert [json.loads(line)["state"] for line in lines] == states


def test_export_timeline_writes_jsonl(tmp_path):
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("errors")
    spec = SliSpec("err_rate", "rate", window=0.5, patterns=("errors",))
    engine = HealthEngine(
        sim, registry, rules=parse_rules("hot: err_rate > 1"),
        slis=[spec], interval=0.25)
    engine.start()
    sim.schedule(0.1, counter.inc, 100)
    sim.schedule(0.5, lambda: None)
    sim.run()
    engine.stop()
    path = str(tmp_path / "alerts.jsonl")
    count = engine.export_timeline(path)
    assert count == len(engine.timeline) > 0
    with open(path) as handle:
        lines = handle.read().strip().splitlines()
    # One schema header line, then the transition records.
    assert json.loads(lines[0]) == {"type": "schema",
                                    "schema": "alert_timeline", "version": 1}
    assert len(lines) == count + 1
