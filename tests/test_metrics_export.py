"""Tests for CSV/JSONL export of measurement taps."""

import pytest

from repro.metrics.export import (
    read_flow_records,
    read_flow_records_jsonl,
    write_flow_records,
    write_flow_records_jsonl,
)
from repro.metrics.recorder import PacketRecorder
from repro.net.packet import Packet


def populate():
    tap = PacketRecorder()
    delivered = Packet("1.1.1.1", "2.2.2.2", src_port=1, dst_port=80, size=500)
    tap.on_send(delivered, 1.0)
    tap.on_receive(delivered, 1.5)
    tap.on_receive(delivered, 2.0)
    lost = Packet("3.3.3.3", "2.2.2.2", src_port=2, dst_port=80)
    tap.on_send(lost, 1.1)
    return tap


def test_roundtrip(tmp_path):
    tap = populate()
    path = str(tmp_path / "flows.csv")
    assert write_flow_records(path, tap) == 2
    records = read_flow_records(path)
    assert len(records) == 2
    by_src = {r["src_ip"]: r for r in records}
    ok = by_src["1.1.1.1"]
    assert ok["succeeded"] is True
    assert ok["packets_received"] == 2
    assert ok["bytes_received"] == 1000
    assert ok["setup_latency"] == pytest.approx(0.5)
    assert ok["completion_time"] == pytest.approx(1.0)
    lost = by_src["3.3.3.3"]
    assert lost["succeeded"] is False
    assert lost["first_received_at"] is None


def test_empty_tap(tmp_path):
    path = str(tmp_path / "empty.csv")
    assert write_flow_records(path, PacketRecorder()) == 0
    assert read_flow_records(path) == []


def test_jsonl_roundtrip(tmp_path):
    tap = populate()
    path = str(tmp_path / "flows.jsonl")
    assert write_flow_records_jsonl(path, tap) == 2
    records = read_flow_records_jsonl(path)
    assert len(records) == 2
    by_src = {r["src_ip"]: r for r in records}
    ok = by_src["1.1.1.1"]
    assert ok["succeeded"] is True
    assert ok["packets_received"] == 2
    assert ok["bytes_received"] == 1000
    assert ok["setup_latency"] == pytest.approx(0.5)
    lost = by_src["3.3.3.3"]
    assert lost["succeeded"] is False
    assert lost["first_received_at"] is None


def test_jsonl_matches_csv(tmp_path):
    # The two formats must describe the same records; JSONL keeps exact
    # floats while CSV goes through 9-decimal text, hence approx.
    tap = populate()
    csv_path = str(tmp_path / "flows.csv")
    jsonl_path = str(tmp_path / "flows.jsonl")
    write_flow_records(csv_path, tap)
    write_flow_records_jsonl(jsonl_path, tap)
    from_csv = read_flow_records(csv_path)
    from_jsonl = read_flow_records_jsonl(jsonl_path)
    assert len(from_csv) == len(from_jsonl)
    for a, b in zip(from_csv, from_jsonl):
        assert set(a) == set(b)
        for field in a:
            if isinstance(a[field], float):
                assert b[field] == pytest.approx(a[field])
            else:
                assert a[field] == b[field]


def test_jsonl_empty_tap(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    assert write_flow_records_jsonl(path, PacketRecorder()) == 0
    assert read_flow_records_jsonl(path) == []


def test_export_from_simulation(tmp_path):
    from repro.testbed.single_switch import SERVER_IP, build_single_switch
    from repro.traffic import NewFlowSource

    bed = build_single_switch(seed=3)
    source = NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=50.0)
    source.start(at=0.5, stop_at=2.5)
    bed.sim.run(until=4.0)
    path = str(tmp_path / "server.csv")
    rows = write_flow_records(path, bed.server.recv_tap)
    assert rows == source.flows_started
    records = read_flow_records(path)
    assert all(r["succeeded"] for r in records)
