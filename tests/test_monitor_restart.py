"""Regression tests: stop()/start() cycles on the periodic monitors.

Before the fix, stop() only flipped a flag; the already-scheduled tick
survived in the calendar, and start() scheduled a second one — every
stop/start cycle doubled the tick chain (and its echo / evaluation
load) forever.  The monitors now hold the scheduled Event handle and
cancel it.  HeartbeatMonitor additionally clears its per-switch miss
counts on stop(), so a restarted monitor cannot declare a vSwitch dead
from echoes it never sent.
"""

from repro.core.config import ScotchConfig
from repro.core.monitor import CongestionMonitor
from repro.sim.engine import Simulator
from repro.switch.profiles import PICA8_PRONTO_3780
from repro.testbed.deployment import build_deployment


def _deployment(**kwargs):
    config = ScotchConfig(heartbeat_interval=0.5, heartbeat_miss_limit=3)
    return build_deployment(seed=4, racks=2, mesh_per_rack=1, backups=1,
                            config=config, **kwargs)


# ----------------------------------------------------------------------
# HeartbeatMonitor
# ----------------------------------------------------------------------
def _count_echoes(dep):
    """Wrap controller.echo with a counter; returns the count list."""
    echoes = []
    original = dep.controller.echo

    def spy(dpid):
        echoes.append(dpid)
        return original(dpid)

    dep.controller.echo = spy
    return echoes


def test_heartbeat_stop_start_does_not_double_echo_rate():
    dep = _deployment()
    heartbeat = dep.scotch.heartbeat
    echoes = _count_echoes(dep)
    dep.sim.run(until=3.0)
    window1 = len(echoes)
    # Cycle the monitor several times: each cycle used to leave one more
    # live tick chain behind.
    for _ in range(3):
        heartbeat.stop()
        heartbeat.start()
    dep.sim.run(until=6.0)
    window2 = len(echoes) - window1
    # Same-length windows, same tick rate: the second window must not
    # carry multiples of the first (allow small phase slack).
    assert window2 <= window1 * 1.5


def test_heartbeat_stop_cancels_tick_event():
    dep = _deployment()
    heartbeat = dep.scotch.heartbeat
    dep.sim.run(until=1.0)
    assert heartbeat._tick_event is not None
    heartbeat.stop()
    assert heartbeat._tick_event is None
    # And no new echoes are sent while stopped.
    echoes = _count_echoes(dep)
    dep.sim.run(until=4.0)
    assert echoes == []


def test_heartbeat_stop_clears_pending_miss_counts():
    dep = _deployment()
    heartbeat = dep.scotch.heartbeat
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(1.0, victim.fail)
    dep.sim.run(until=2.3)  # a couple of missed echoes, below the limit
    assert heartbeat._pending.get(victim.name, 0) > 0
    heartbeat.stop()
    assert heartbeat._pending == {}
    # Restart with the vSwitch already recovered: the stale misses must
    # not count toward a death declaration.
    victim.recover()
    heartbeat.start()
    dep.sim.run(until=6.0)
    assert heartbeat.failures_detected == 0


def test_heartbeat_restart_still_detects_real_failures():
    dep = _deployment()
    heartbeat = dep.scotch.heartbeat
    heartbeat.stop()
    heartbeat.start()
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(1.0, victim.fail)
    dep.sim.run(until=8.0)
    assert heartbeat.failures_detected == 1


# ----------------------------------------------------------------------
# CongestionMonitor
# ----------------------------------------------------------------------
def test_congestion_monitor_stop_start_does_not_double_ticks():
    sim = Simulator()
    config = ScotchConfig(monitor_interval=0.1, withdraw_hold=1.0)
    monitor = CongestionMonitor(sim, config, lambda d: None, lambda d: None)
    monitor.watch("sw", PICA8_PRONTO_3780)
    ticks = []
    original = monitor._tick

    def spy():
        ticks.append(sim.now)
        original()

    monitor._tick = spy
    monitor.start()
    sim.run(until=1.0)
    first_window = len(ticks)
    for _ in range(3):
        monitor.stop()
        monitor.start()
    sim.run(until=2.0)
    second_window = len(ticks) - first_window
    assert second_window <= first_window * 1.5


def test_congestion_monitor_stop_cancels_tick():
    sim = Simulator()
    config = ScotchConfig(monitor_interval=0.1, withdraw_hold=1.0)
    monitor = CongestionMonitor(sim, config, lambda d: None, lambda d: None)
    monitor.watch("sw", PICA8_PRONTO_3780)
    monitor.start()
    sim.run(until=0.5)
    monitor.stop()
    assert monitor._tick_event is None
    sim.run(until=2.0)  # nothing left but cancelled daemons
    assert not monitor._running


# ----------------------------------------------------------------------
# StatsPoller (same handle-and-cancel pattern)
# ----------------------------------------------------------------------
def test_stats_poller_stop_start_does_not_double_polls():
    dep = _deployment()
    poller = dep.scotch.stats_poller
    dep.sim.run(until=3.0)
    before = dep.controller.stats_replies_received
    for _ in range(3):
        poller.stop()
        poller.start()
    dep.sim.run(until=6.0)
    window2 = dep.controller.stats_replies_received - before
    assert window2 <= before * 1.5 + 2
