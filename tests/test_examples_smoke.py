"""Smoke checks over the example scripts.

Full runs take minutes each (they are demos, not tests); here we verify
each example parses, exposes a main(), and documents itself.  The
behaviours the examples demonstrate are separately covered by the
integration tests.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6  # quickstart + at least five scenario demos


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions
    # Runnable as a script.
    assert "__main__" in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples must not reach into private modules (no `_foo` imports)."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            assert not any(part.startswith("_") for part in node.module.split(".")), (
                f"{path.name} imports private module {node.module}"
            )
