"""Tests for match semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.net.flow import FlowKey
from repro.net.packet import GreHeader, MplsHeader, Packet
from repro.switch.match import FIVE_TUPLE, Match, extract_fields


def make_packet(**kwargs):
    defaults = dict(src_ip="1.1.1.1", dst_ip="2.2.2.2", proto=6, src_port=10, dst_port=80)
    defaults.update(kwargs)
    return Packet(**defaults)


def test_empty_match_matches_everything():
    assert Match.any().matches_packet(make_packet(), in_port=3)


def test_exact_field_match():
    match = Match(src_ip="1.1.1.1", dst_port=80)
    assert match.matches_packet(make_packet(), in_port=1)
    assert not match.matches_packet(make_packet(dst_port=81), in_port=1)


def test_in_port_match():
    match = Match(in_port=2)
    packet = make_packet()
    assert match.matches_packet(packet, in_port=2)
    assert not match.matches_packet(packet, in_port=3)


def test_mpls_label_matches_outermost_only():
    packet = make_packet()
    packet.push(MplsHeader(5))
    packet.push(MplsHeader(7))
    assert Match(mpls_label=7).matches_packet(packet, 1)
    assert not Match(mpls_label=5).matches_packet(packet, 1)


def test_gre_key_match():
    packet = make_packet()
    packet.push(GreHeader(99))
    assert Match(gre_key=99).matches_packet(packet, 1)


def test_unlabelled_packet_fails_label_match():
    assert not Match(mpls_label=1).matches_packet(make_packet(), 1)


def test_for_flow_builds_exact_five_tuple():
    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)
    match = Match.for_flow(key)
    assert match.is_exact_five_tuple
    assert match.has_five_tuple
    assert match.five_tuple_key() == tuple(key)


def test_exact_plus_extra_is_not_exact_but_has_five_tuple():
    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)
    match = Match(mpls_label=3, **Match.for_flow(key).fields)
    assert not match.is_exact_five_tuple
    assert match.has_five_tuple


def test_unknown_field_rejected():
    with pytest.raises(ValueError):
        Match(bogus=1)


def test_none_valued_fields_ignored():
    match = Match(src_ip=None, dst_port=80)
    assert "src_ip" not in match.fields


def test_covers():
    broad = Match(dst_ip="2.2.2.2")
    narrow = Match(dst_ip="2.2.2.2", dst_port=80)
    assert broad.covers(narrow)
    assert not narrow.covers(broad)
    assert Match.any().covers(narrow)


def test_equality_and_hash():
    a = Match(src_ip="1.1.1.1", dst_port=80)
    b = Match(dst_port=80, src_ip="1.1.1.1")
    assert a == b
    assert hash(a) == hash(b)
    assert a != Match(dst_port=81, src_ip="1.1.1.1")


def test_extract_fields_complete():
    packet = make_packet()
    fields = extract_fields(packet, in_port=4)
    assert fields["in_port"] == 4
    assert fields["src_ip"] == "1.1.1.1"
    assert fields["mpls_label"] is None


five_tuples = st.tuples(
    st.sampled_from(["1.1.1.1", "2.2.2.2", "3.3.3.3"]),
    st.sampled_from(["4.4.4.4", "5.5.5.5"]),
    st.sampled_from([6, 17]),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=80, max_value=82),
)


@given(five_tuples, five_tuples)
def test_for_flow_matches_iff_same_tuple(tuple_a, tuple_b):
    key = FlowKey(*tuple_a)
    packet = Packet(tuple_b[0], tuple_b[1], proto=tuple_b[2],
                    src_port=tuple_b[3], dst_port=tuple_b[4])
    expected = tuple_a == tuple_b
    assert Match.for_flow(key).matches_packet(packet, in_port=1) == expected


@given(five_tuples)
def test_covers_implies_matches(tuple_a):
    """If m1 covers m2, every packet matching m2 matches m1."""
    key = FlowKey(*tuple_a)
    narrow = Match.for_flow(key)
    broad = Match(dst_ip=key.dst_ip)
    packet = Packet(key.src_ip, key.dst_ip, proto=key.proto,
                    src_port=key.src_port, dst_port=key.dst_port)
    if broad.covers(narrow):
        assert narrow.matches_packet(packet, 1) <= broad.matches_packet(packet, 1)
