"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_returns_final_time():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    assert sim.run() == 3.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_after_firing():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()
    event.cancel()


def test_schedule_during_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, fired.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_schedule_at_same_time_during_run_fires():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(0.0, fired.append, "zero-delay")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["zero-delay"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    # Remaining events still pending; run resumes.
    sim.run()
    assert fired == ["a", "b"]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_peek_discard_keeps_foreground_accounting():
    # Regression: peek() used to pop cancelled *foreground* events
    # without decrementing the foreground-pending count, so a later
    # un-horizoned run() believed real work remained and kept firing
    # daemon housekeeping forever.
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    assert sim.peek() is None  # discards the cancelled event

    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 50:  # cap the fallout if the accounting is wrong
            sim.schedule(1.0, tick, daemon=True)

    sim.schedule(1.0, tick, daemon=True)
    sim.run()  # no horizon + only daemon work left -> must stop at once
    assert ticks == []
    assert sim.now == 0.0


def test_cancel_settles_foreground_accounting_without_peek():
    # Regression (companion to the peek() fix above): cancel() itself
    # settles the foreground-pending count at cancel time, so a later
    # un-horizoned run() stops immediately even if nothing ever called
    # peek() to garbage-collect the tombstone.
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()

    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 50:  # cap the fallout if the accounting is wrong
            sim.schedule(1.0, tick, daemon=True)

    sim.schedule(0.5, tick, daemon=True)
    sim.run()  # no horizon + only daemon work left -> must stop at once
    assert ticks == []
    assert sim.now == 0.0
    assert sim.pending == 1  # the daemon tick is still live, just parked


def test_peek_discard_then_new_work_still_runs():
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None).cancel()
    assert sim.peek() is None
    fired = []
    sim.schedule(3.0, fired.append, "x")
    assert sim.peek() == 3.0
    sim.run()
    assert fired == ["x"]
    assert sim.now == 3.0


def test_pending_counts_live_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    event.cancel()
    assert sim.pending == 1


def test_not_reentrant():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_callback_args_passed():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
    sim.run()
    assert got == [(1, "x")]


def test_deterministic_replay():
    def run_once():
        sim = Simulator(seed=42)
        trace = []
        rng = sim.rng.stream("t")

        def tick(n):
            trace.append((round(sim.now, 9), n, rng.random()))
            if n < 20:
                sim.schedule(rng.expovariate(10.0), tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        return trace

    assert run_once() == run_once()
