"""Shape tests for the figure runners — short-duration versions of each
reproduced experiment, asserting the qualitative results the paper
reports (who wins, where breaks fall), not absolute numbers."""

import pytest

pytestmark = pytest.mark.slow

from repro.switch.profiles import HP_PROCURVE_6600, OPEN_VSWITCH, PICA8_PRONTO_3780
from repro.testbed import experiments as ex


class TestFig3:
    def test_low_attack_rate_harmless(self):
        assert ex.fig3_point(PICA8_PRONTO_3780, 100, duration=4.0) < 0.05

    def test_failure_grows_with_attack_rate(self):
        low = ex.fig3_point(PICA8_PRONTO_3780, 500, duration=4.0)
        high = ex.fig3_point(PICA8_PRONTO_3780, 3800, duration=4.0)
        assert high > low > 0.3

    def test_switch_ordering_matches_paper(self):
        """Fig. 3: Pica8 worst, HP better, OVS near zero."""
        rate = 2000
        pica = ex.fig3_point(PICA8_PRONTO_3780, rate, duration=4.0)
        hp = ex.fig3_point(HP_PROCURVE_6600, rate, duration=4.0)
        ovs = ex.fig3_point(OPEN_VSWITCH, rate, duration=4.0)
        assert pica > hp > ovs
        assert ovs < 0.02

    def test_series_shape(self):
        series = ex.fig3_series(attack_rates=(100, 2000), duration=3.0)
        assert set(series) == {p.name for p in ex.FIG3_PROFILES}
        for curve in series.values():
            assert curve[0][1] <= curve[-1][1]


class TestFig4:
    def test_three_rates_identical_below_capacity(self):
        point = ex.fig4_point(150, duration=4.0)
        assert point.packet_in_rate == pytest.approx(150, rel=0.05)
        assert point.rule_insertion_rate == pytest.approx(150, rel=0.05)
        assert point.successful_flow_rate == pytest.approx(150, rel=0.05)

    def test_packet_in_caps_all_three_rates(self):
        """§3.3: the OFA's Packet-In generation is the bottleneck — all
        three observed rates clamp together at its capacity."""
        point = ex.fig4_point(800, duration=4.0)
        cap = PICA8_PRONTO_3780.packet_in_rate
        assert point.packet_in_rate == pytest.approx(cap, rel=0.08)
        assert point.rule_insertion_rate == pytest.approx(point.packet_in_rate, rel=0.05)
        assert point.successful_flow_rate == pytest.approx(point.packet_in_rate, rel=0.08)


class TestFig9:
    def test_lossless_region(self):
        assert ex.fig9_point(150, duration=3.0) == pytest.approx(150, rel=0.05)
        assert ex.fig9_point(200, duration=3.0) == pytest.approx(200, rel=0.05)

    def test_lossy_beyond_200(self):
        successful = ex.fig9_point(600, duration=3.0)
        assert successful < 600 * 0.95

    def test_plateau_near_1000(self):
        successful = ex.fig9_point(4000, duration=4.0)
        assert 850 < successful < 1050

    def test_monotone_nondecreasing(self):
        values = [ex.fig9_point(r, duration=3.0) for r in (200, 800, 2500)]
        assert values == sorted(values)


class TestFig10:
    def test_no_loss_below_knee(self):
        assert ex.fig10_point(1000, 1000, duration=2.0) < 0.02

    def test_cliff_beyond_knee(self):
        assert ex.fig10_point(1500, 1000, duration=2.0) > 0.9

    def test_loss_rises_with_data_rate(self):
        low = ex.fig10_point(1500, 500, duration=2.0)
        high = ex.fig10_point(1500, 2000, duration=2.0)
        assert high > low > 0.85


class TestFig11:
    def test_scotch_protects_both_ports(self):
        result = ex.fig11_run("scotch", duration=6.0)
        assert result.clean_port_failure < 0.05
        assert result.attacked_port_failure < 0.2

    def test_vanilla_fails_both_ports(self):
        result = ex.fig11_run("vanilla", duration=6.0)
        assert result.clean_port_failure > 0.5
        assert result.attacked_port_failure > 0.5


class TestFig12:
    def test_elephant_migrates_losslessly(self):
        result = ex.fig12_run(elephant_packets=2000, elephant_pps=400.0)
        assert result.migrated
        assert result.migration_time < 5.0
        assert result.delivered_packets == result.total_packets
        assert result.overlay_rules_cleaned


class TestFig13:
    def test_capacity_grows_with_mesh_size(self):
        small = ex.fig13_point(1, offered_rate=9000.0, duration=3.0)
        large = ex.fig13_point(2, offered_rate=9000.0, duration=3.0)
        assert large > small * 1.5


class TestFig14:
    def test_overlay_adds_bounded_stretch(self):
        result = ex.fig14_run(flows=60)
        summary = result.summary()
        assert summary["overlay_mean"] > summary["direct_mean"]
        # Three tunnels instead of one path: small-constant stretch, not
        # an order of magnitude.
        assert summary["stretch_mean"] < 20


class TestFig15:
    def test_scotch_beats_vanilla_on_trace(self):
        scotch = ex.fig15_run("scotch", duration=10.0)
        vanilla = ex.fig15_run("vanilla", duration=10.0)
        assert scotch.failure_fraction < 0.1
        assert vanilla.failure_fraction > scotch.failure_fraction + 0.2


class TestAblation:
    def test_scotch_wins_the_ablation(self):
        scotch = ex.ablation_run("scotch", duration=5.0)
        vanilla = ex.ablation_run("vanilla", duration=5.0)
        drop = ex.ablation_run("drop", duration=5.0)
        dedicated = ex.ablation_run("dedicated", duration=5.0)
        assert scotch.client_failure < 0.05
        assert vanilla.client_failure > 0.5
        # Scotch's total goodput (legit + flood carried) dominates.
        assert scotch.total_success_rate > dedicated.total_success_rate
        assert scotch.total_success_rate > drop.total_success_rate

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ex.ablation_run("nope", duration=1.0)
        with pytest.raises(ValueError):
            ex.fig11_run("nope", duration=1.0)
        with pytest.raises(ValueError):
            ex.fig15_run("nope", duration=1.0)
