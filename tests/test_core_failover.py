"""Tests for heartbeat-driven vSwitch failover (§5.6)."""

import pytest

from repro.core.config import ScotchConfig
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def build(backups=1, seed=4, heartbeat_interval=0.5, miss_limit=3):
    config = ScotchConfig(heartbeat_interval=heartbeat_interval,
                          heartbeat_miss_limit=miss_limit)
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, backups=backups,
                           config=config)
    return dep


def test_healthy_vswitches_never_declared_dead():
    dep = build()
    dep.sim.run(until=10.0)
    assert dep.scotch.heartbeat.failures_detected == 0
    assert dep.scotch.overlay.dead == set()


def test_detection_latency_bounded_by_miss_limit():
    dep = build(heartbeat_interval=0.5, miss_limit=3)
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(2.0, victim.fail)
    detected = []
    original = dep.scotch.heartbeat._declare_dead

    def spy(dpid):
        detected.append(dep.sim.now)
        original(dpid)

    dep.scotch.heartbeat._declare_dead = spy
    dep.sim.run(until=10.0)
    assert len(detected) == 1
    # Detection needs miss_limit consecutive missed echoes: within
    # (miss_limit .. miss_limit + 2) heartbeat intervals after failure.
    assert 2.0 + 3 * 0.5 - 0.5 <= detected[0] <= 2.0 + 5 * 0.5 + 0.5


def test_group_refreshed_only_after_activation():
    # Without any congestion the group does not exist; failover must not
    # send a GroupMod at a switch whose group was never installed.
    dep = build()
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(1.0, victim.fail)
    dep.sim.run(until=10.0)
    assert dep.scotch.heartbeat.failures_detected == 1
    assert dep.edge.datapath.groups.get(1) is None  # still no group


def test_bucket_swap_under_active_overlay():
    dep = build()
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=0.5, stop_at=20.0)
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(5.0, victim.fail)
    dep.sim.run(until=15.0)
    group = dep.edge.datapath.groups.get(1)
    labels = [b.label for b in group.buckets]
    assert victim.name not in labels
    assert "bv0" in labels  # the backup took its slot


def test_flows_resume_via_backup_as_new_flows():
    dep = build()
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=0.5, stop_at=20.0)
    victim = dep.mesh_vswitches[0]
    backup = next(v for v in dep.mesh_vswitches if v.name == "bv0")
    dep.sim.schedule(5.0, victim.fail)
    dep.sim.run(until=15.0)
    # The backup vSwitch now raises Packet-Ins for the re-hashed flows.
    assert backup.ofa.packet_ins_sent > 100


def test_recovery_restores_original_assignment():
    dep = build()
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=0.5, stop_at=28.0)
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(5.0, victim.fail)
    dep.sim.schedule(12.0, victim.recover)
    dep.sim.run(until=25.0)
    hb = dep.scotch.heartbeat
    assert hb.failures_detected == 1
    assert hb.recoveries_detected == 1
    group = dep.edge.datapath.groups.get(1)
    assert victim.name in [b.label for b in group.buckets]


def test_resync_supersedes_stale_inflight_group_refresh():
    """Regression: a standby resync racing an in-flight group refresh.

    A failover GroupMod keyed ``("group", edge)`` can still be retrying
    (barrier ack lost) when a resync pushes fresh state under the
    *activation* key.  Keyed supersession cannot retire the stale batch
    — different key — so before the fix its next retry landed after the
    fresh push and resurrected the superseded bucket set.  Resync must
    cancel the whole in-flight keyed set first (supersede_all)."""
    dep = build(heartbeat_interval=0.25, miss_limit=2)
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=0.5, stop_at=20.0)
    dep.sim.run(until=4.0)
    edge, victim = dep.edge, dep.mesh_vswitches[0]
    assert edge.datapath.groups.get(1) is not None  # overlay active

    # Ack path dark + victim dead: the failover refresh (buckets without
    # the victim) goes in flight and stays there, retrying.
    edge.channel.disconnect()
    victim.fail()
    dep.sim.run(until=6.0)
    reliable = dep.scotch.reliable
    assert ("group", edge.name) in reliable._by_key

    # Recovery lands through a path that does NOT re-key the group batch
    # (the racing interleaving), then the standby takes over: reconnect
    # and resync in the same instant.
    victim.recover()
    dep.scotch.overlay.dead.discard(victim.name)
    edge.channel.reconnect()
    dep.scotch.resync()
    dep.sim.run(until=12.0)

    # The resync push (victim back in the buckets) must be final state;
    # the stale batch's retry must not have resurrected the victimless
    # bucket set on top of it.
    group = edge.datapath.groups.get(1)
    assert victim.name in [b.label for b in group.buckets]
    assert ("group", edge.name) not in reliable._by_key


def test_no_backup_degrades_to_remaining_vswitches():
    dep = build(backups=0)
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=20.0)
    victim = dep.mesh_vswitches[0]
    dep.sim.schedule(5.0, victim.fail)
    dep.sim.run(until=15.0)
    group = dep.edge.datapath.groups.get(1)
    labels = [b.label for b in group.buckets]
    assert labels == ["mv1_0"]  # one live vSwitch carries everything
