"""Tests for overlay construction, activation rule sets, and routing."""

import pytest

from repro.core.config import (
    LB_TABLE,
    PRIORITY_LB,
    PRIORITY_SCOTCH_DEFAULT,
    SCOTCH_GROUP_ID,
    ScotchConfig,
)
from repro.core.overlay import OverlayError, ScotchOverlay
from repro.net.flow import FlowKey
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import GotoTable, Output, PushMpls
from repro.switch.profiles import HP_PROCURVE_6600
from repro.switch.switch import PhysicalSwitch, VSwitch


def build(racks=2, backups=0):
    sim = Simulator()
    net = Network(sim)
    edge = net.add(PhysicalSwitch(sim, "edge"))
    spine = net.add(PhysicalSwitch(sim, "spine"))
    net.link("edge", "spine")
    overlay = ScotchOverlay(net, ScotchConfig())
    for rack in range(racks):
        net.add(PhysicalSwitch(sim, f"tor{rack}"))
        net.link(f"tor{rack}", "spine")
        net.add(VSwitch(sim, f"mv{rack}"))
        net.link(f"mv{rack}", f"tor{rack}")
        overlay.add_mesh_vswitch(f"mv{rack}")
        net.add(Host(sim, f"server{rack}", f"10.0.{rack}.10"))
        net.link(f"server{rack}", f"tor{rack}")
        overlay.set_host_delivery(f"server{rack}", None, f"mv{rack}")
    for index in range(backups):
        net.add(VSwitch(sim, f"bv{index}"))
        net.link(f"bv{index}", "spine")
        overlay.add_mesh_vswitch(f"bv{index}", backup=True)
    net.add(Host(sim, "client", "10.20.0.1"))
    net.link("client", "edge")
    return sim, net, overlay


KEY = FlowKey("10.20.0.1", "10.0.0.10", 6, 5, 80)


class TestConstruction:
    def test_mesh_is_fully_connected(self):
        _, _, overlay = build(racks=3)
        for a in overlay.mesh:
            for b in overlay.mesh:
                if a != b:
                    assert (a, b) in overlay.mesh_tunnels

    def test_duplicate_mesh_member_rejected(self):
        _, _, overlay = build()
        with pytest.raises(OverlayError):
            overlay.add_mesh_vswitch("mv0")

    def test_non_switch_mesh_member_rejected(self):
        _, net, overlay = build()
        with pytest.raises(OverlayError):
            overlay.add_mesh_vswitch("client")

    def test_register_switch_creates_tunnels_and_labels(self):
        _, net, overlay = build()
        overlay.register_switch("edge")
        assert overlay.assignment["edge"] == ["mv0", "mv1"]
        for vswitch in ("mv0", "mv1"):
            tunnel = overlay.switch_tunnels[("edge", vswitch)]
            assert overlay.tunnel_origin[tunnel.tunnel_id] == "edge"
            assert overlay.tunnel_entry_vswitch[tunnel.tunnel_id] == vswitch
        for port_no in net["edge"].ports:
            label = overlay.port_label("edge", port_no)
            assert overlay.port_labels[label] == ("edge", port_no)

    def test_register_switch_requires_advanced_dataplane(self):
        sim = Simulator()
        net = Network(sim)
        net.add(PhysicalSwitch(sim, "old", HP_PROCURVE_6600))
        net.add(VSwitch(sim, "mv"))
        net.link("old", "mv")
        overlay = ScotchOverlay(net)
        overlay.add_mesh_vswitch("mv")
        with pytest.raises(OverlayError):
            overlay.register_switch("old")

    def test_vswitches_per_switch_capped_by_mesh(self):
        _, _, overlay = build(racks=1)
        overlay.config.vswitches_per_switch = 5
        overlay.register_switch("edge")
        assert overlay.assignment["edge"] == ["mv0"]

    def test_port_label_stable(self):
        _, _, overlay = build()
        assert overlay.port_label("edge", 1) == overlay.port_label("edge", 1)
        assert overlay.port_label("edge", 1) != overlay.port_label("edge", 2)

    def test_host_delivery_requires_known_mesh(self):
        _, _, overlay = build()
        with pytest.raises(OverlayError):
            overlay.set_host_delivery("client", None, "nope")


class TestActivation:
    def test_activation_messages_cover_every_port(self):
        _, net, overlay = build()
        overlay.register_switch("edge")
        group, mods = overlay.activation_messages("edge")
        port_mods = [m for m in mods if "in_port" in m.match.fields]
        assert {m.match.fields["in_port"] for m in port_mods} == set(net["edge"].ports)
        for mod in port_mods:
            assert mod.priority == PRIORITY_SCOTCH_DEFAULT
            assert isinstance(mod.actions[0], PushMpls)
            assert mod.actions[1] == GotoTable(LB_TABLE)

    def test_activation_includes_lb_rule_and_group(self):
        _, _, overlay = build()
        overlay.register_switch("edge")
        group, mods = overlay.activation_messages("edge")
        lb = [m for m in mods if m.table_id == LB_TABLE]
        assert len(lb) == 1
        assert lb[0].priority == PRIORITY_LB
        assert group.group_id == SCOTCH_GROUP_ID
        assert len(group.buckets) == 2

    def test_buckets_enter_correct_tunnels(self):
        _, net, overlay = build()
        overlay.register_switch("edge")
        group, _ = overlay.activation_messages("edge")
        labels = {b.actions[0].label for b in group.buckets}
        expected = {overlay.switch_tunnels[("edge", v)].tunnel_id for v in ("mv0", "mv1")}
        assert labels == expected

    def test_withdrawal_messages_remove_only_port_defaults(self):
        _, net, overlay = build()
        overlay.register_switch("edge")
        mods = overlay.withdrawal_messages("edge")
        assert all(m.command == "delete" for m in mods)
        # Per-port defaults only; the LB rule stays for pin rules to use.
        assert len(mods) == len(net["edge"].ports)
        assert all("in_port" in m.match.fields for m in mods)


class TestRouting:
    def test_route_same_entry_and_exit(self):
        _, _, overlay = build()
        overlay.register_switch("edge")
        rules = overlay.overlay_route(KEY, "mv0", "server0")
        assert len(rules) == 1
        assert rules[0].dpid == "mv0"

    def test_route_across_mesh_last_hop_first(self):
        _, _, overlay = build()
        overlay.register_switch("edge")
        rules = overlay.overlay_route(KEY, "mv1", "server0")
        assert [r.dpid for r in rules] == ["mv0", "mv1"]
        # Entry rule enters the mesh tunnel toward the exit.
        entry_label = rules[1].actions[0].label
        assert entry_label == overlay.mesh_tunnels[("mv1", "mv0")].tunnel_id

    def test_route_unknown_host_rejected(self):
        _, _, overlay = build()
        with pytest.raises(OverlayError):
            overlay.overlay_route(KEY, "mv0", "client")  # no delivery mapping


class TestFailover:
    def test_live_assignment_substitutes_backup(self):
        _, _, overlay = build(backups=1)
        overlay.register_switch("edge")
        assert overlay.live_assignment("edge") == ["mv0", "mv1"]
        affected = overlay.mark_dead("mv0")
        assert affected == ["edge"]
        assert overlay.live_assignment("edge") == ["bv0", "mv1"]
        overlay.mark_alive("mv0")
        assert overlay.live_assignment("edge") == ["mv0", "mv1"]

    def test_dead_without_backup_shrinks_assignment(self):
        _, _, overlay = build()
        overlay.register_switch("edge")
        overlay.mark_dead("mv0")
        assert overlay.live_assignment("edge") == ["mv1"]

    def test_refresh_group_uses_live_buckets(self):
        _, _, overlay = build(backups=1)
        overlay.register_switch("edge")
        overlay.mark_dead("mv1")
        group = overlay.refresh_group("edge")
        assert group.command == "modify"
        assert [b.label for b in group.buckets] == ["mv0", "bv0"]

    def test_exit_vswitch_falls_back_when_local_dead(self):
        _, _, overlay = build(backups=1)
        overlay.mark_dead("mv0")
        assert overlay.exit_vswitch_for("server0") == "bv0"

    def test_all_dead_raises(self):
        _, _, overlay = build()
        overlay.mark_dead("mv0")
        overlay.mark_dead("mv1")
        with pytest.raises(OverlayError):
            overlay.exit_vswitch_for("server0")
        with pytest.raises(OverlayError):
            overlay.group_buckets("edge")
