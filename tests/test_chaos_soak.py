"""Chaos soak: the full fault gauntlet must end in a healthy system.

Acceptance criteria from docs/robustness.md:

* every fault class injects (channel loss, flap, vSwitch crash+restart,
  OFA stall, controller outage with standby resync);
* zero invariant violations over the whole run;
* post-recovery client flow failure below 5 %;
* the fault log is byte-identical across same-seed runs; and
* with fault injection disabled, a run is bit-identical to one where
  the faults package was never imported.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import default_plan, run_chaos

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

SOAK_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def reports():
    return {seed: run_chaos(seed=seed) for seed in SOAK_SEEDS}


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_every_fault_class_injected(reports, seed):
    report = reports[seed]
    assert set(report.fault_counts) == {
        "channel_loss", "channel_flap", "vswitch_crash",
        "ofa_stall", "controller_outage",
    }
    assert report.faults_injected >= 5
    # The impaired channel actually dropped traffic and the crash/outage
    # actually exercised detection + resync.
    assert report.channel_drops > 0
    assert report.failures_detected >= 1
    assert report.recoveries_detected >= 1
    assert report.resyncs == 1


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_soak_ends_healthy(reports, seed):
    report = reports[seed]
    assert report.violations == []
    assert report.invariant_checks > 20
    assert report.failure_post_recovery < 0.05
    assert report.flows_started > 0
    assert report.healthy


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_reliable_layer_survived_the_gauntlet(reports, seed):
    reliable = reports[seed].reliable
    assert reliable["sent"] > 0
    assert reliable["acked"] > 0
    # Nothing fell off the end of the retry budget during recovery.
    assert reliable["abandoned"] == 0


def test_same_seed_runs_are_byte_identical(reports):
    first = reports[SOAK_SEEDS[0]]
    again = run_chaos(seed=SOAK_SEEDS[0])
    assert again.fault_log_jsonl == first.fault_log_jsonl
    assert again.failure_during_faults == first.failure_during_faults
    assert again.failure_post_recovery == first.failure_post_recovery
    assert again.reliable == first.reliable


def test_different_seeds_diverge(reports):
    # The plan is scripted (same fault times), but traffic and hashing
    # differ per seed, so the measured outcomes must not be identical.
    fractions = {reports[s].failure_during_faults for s in SOAK_SEEDS}
    assert len(fractions) > 1


_PROBE = """\
{imports}
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood

dep = build_deployment(seed=7, racks=2, mesh_per_rack=1, backups=1)
flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
flood.start(at=0.5, stop_at=8.0)
dep.sim.run(until=10.0)
print(dep.edge.ofa.packet_ins_sent,
      dep.scotch.heartbeat.failures_detected,
      dep.servers[0].recv_tap.total_packets,
      dep.servers[0].recv_tap.total_bytes,
      len(dep.servers[0].recv_tap.records),
      dep.edge.channel.to_switch_count,
      dep.edge.channel.to_controller_count)
"""


def _probe_output(imports: str) -> str:
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run(
        [sys.executable, "-c", _PROBE.format(imports=imports)],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "0"},
    )
    return result.stdout


def test_faults_package_import_is_bit_identical():
    """Importing (but not using) repro.faults must not perturb a run:
    the chaos layer draws randomness only once it is actually engaged."""
    baseline = _probe_output("")
    with_faults = _probe_output("import repro.faults")
    assert with_faults == baseline
