"""Tests for GRE tunnel mode (§4.1: "GRE, MPLS, MAC-in-MAC...")."""

import pytest

from repro.core.config import ScotchConfig
from repro.metrics import client_flow_failure_fraction
from repro.net.packet import GreHeader, Packet
from repro.net.topology import Network
from repro.net.tunnel import GRE, MPLS, TunnelFabric
from repro.sim.engine import Simulator
from repro.switch.actions import GotoTable, Output, PopGre, PopMpls, SetGreKey
from repro.switch.switch import PhysicalSwitch, VSwitch
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def build_line():
    sim = Simulator()
    net = Network(sim)
    for name in ("s0", "s1"):
        net.add(PhysicalSwitch(sim, name))
    net.add(VSwitch(sim, "v0"))
    net.link("s0", "s1")
    net.link("s1", "v0")
    return sim, net, TunnelFabric(net)


def test_gre_entry_actions_set_key():
    sim, net, fabric = build_line()
    tunnel = fabric.create("s0", "v0", kind=GRE)
    actions = tunnel.entry_actions(net)
    assert actions[0] == SetGreKey(tunnel.tunnel_id)


def test_gre_transit_rules_match_key():
    sim, net, fabric = build_line()
    tunnel = fabric.create("s0", "v0", kind=GRE)
    entries = net["s1"].datapath.table(0).entries()
    keys = [e.match.fields.get("gre_key") for e in entries]
    assert tunnel.tunnel_id in keys


def test_gre_terminal_pops_gre_then_mpls():
    sim, net, fabric = build_line()
    tunnel = fabric.create("s0", "v0", kind=GRE, terminal_pops=2)
    terminal = [
        e for e in net["v0"].datapath.table(0).entries()
        if e.match.fields.get("gre_key") == tunnel.tunnel_id
    ]
    assert terminal[0].actions[:2] == [PopGre(), PopMpls()]
    assert terminal[0].actions[2] == GotoTable(1)


def test_gre_and_mpls_tunnels_are_distinct():
    sim, net, fabric = build_line()
    a = fabric.create("s0", "v0", kind=GRE)
    b = fabric.create("s0", "v0", kind=MPLS)
    assert a.tunnel_id != b.tunnel_id


def test_unknown_kind_rejected():
    sim, net, fabric = build_line()
    with pytest.raises(ValueError):
        fabric.create("s0", "v0", kind="vxlan")


def test_gre_end_to_end_traversal_records_key():
    sim, net, fabric = build_line()
    tunnel = fabric.create("s0", "v0", kind=GRE, terminal_pops=1)
    packet = Packet("1.1.1.1", "2.2.2.2", src_port=1, dst_port=2)
    net["s0"].datapath.execute_actions(packet, tunnel.entry_actions(net), in_port=1)
    sim.run(until=1.0)
    assert packet.popped_labels == [tunnel.tunnel_id]
    assert packet.encap == []


def test_scotch_protects_identically_over_gre():
    """The whole Scotch machinery — activation, LB, overlay routing,
    Packet-In attribution — works unchanged with GRE encapsulation."""
    config = ScotchConfig(tunnel_kind="gre")
    dep = build_deployment(seed=1, config=config)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=100.0)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=2000.0)
    client.start(at=0.5, stop_at=12.0)
    attack.start(at=2.0, stop_at=12.0)
    sim.run(until=14.0)
    assert dep.scotch.activations == 1
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=4.0, end=11.0
    )
    assert failure < 0.02
    counts = dep.scotch.flow_db.counts()
    assert counts.get("overlay", 0) > 1000


def test_config_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ScotchConfig(tunnel_kind="vxlan")
