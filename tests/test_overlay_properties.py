"""Property tests over overlay route construction."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay
from repro.net.flow import FlowKey
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.switch import PhysicalSwitch, VSwitch


def build_overlay(racks):
    sim = Simulator()
    net = Network(sim)
    net.add(PhysicalSwitch(sim, "spine"))
    overlay = ScotchOverlay(net, ScotchConfig())
    for rack in range(racks):
        net.add(PhysicalSwitch(sim, f"tor{rack}"))
        net.link(f"tor{rack}", "spine")
        net.add(VSwitch(sim, f"mv{rack}"))
        net.link(f"mv{rack}", f"tor{rack}")
        overlay.add_mesh_vswitch(f"mv{rack}")
        net.add(Host(sim, f"server{rack}", f"10.0.{rack}.10"))
        net.link(f"server{rack}", f"tor{rack}")
        overlay.set_host_delivery(f"server{rack}", None, f"mv{rack}")
    return net, overlay


@given(
    racks=st.integers(min_value=1, max_value=5),
    entry=st.integers(min_value=0, max_value=4),
    dst=st.integers(min_value=0, max_value=4),
    sport=st.integers(min_value=1, max_value=60000),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_overlay_route_structure(racks, entry, dst, sport):
    """For any mesh size and (entry, destination) pair:

    * every rule targets a vSwitch (never a physical switch),
    * rules come last-hop-first, ending with the entry vSwitch,
    * the entry rule's first action enters a tunnel that exists and
      whose source is the entry vSwitch,
    * at most two rules are needed (entry + exit).
    """
    entry %= racks
    dst %= racks
    net, overlay = build_overlay(racks)
    key = FlowKey("10.20.0.1", f"10.0.{dst}.10", 6, sport, 80)
    rules = overlay.overlay_route(key, f"mv{entry}", f"server{dst}")

    assert 1 <= len(rules) <= 2
    for rule in rules:
        assert rule.dpid.startswith("mv")
        assert isinstance(rule.actions[-1], Output)
    assert rules[-1].dpid == f"mv{entry}"
    # The entry rule's tunnel must originate at the entry vSwitch.
    entry_label = rules[-1].actions[0].label if hasattr(rules[-1].actions[0], "label") else None
    if entry_label is not None:
        tunnel = overlay.fabric.get(entry_label)
        assert tunnel is not None
        assert tunnel.src == f"mv{entry}"
    if entry == dst:
        assert len(rules) == 1
    else:
        assert rules[0].dpid == f"mv{dst}"


@given(
    racks=st.integers(min_value=2, max_value=5),
    dead_mask=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_live_assignment_never_contains_dead(racks, dead_mask):
    net, overlay = build_overlay(racks)
    net.add(PhysicalSwitch(net.sim, "edge"))
    net.link("edge", "spine")
    overlay.register_switch("edge")
    for rack in range(racks):
        if dead_mask & (1 << rack):
            overlay.mark_dead(f"mv{rack}")
    live = overlay.live_assignment("edge")
    assert all(name not in overlay.dead for name in live)
    # With no backups, the assignment shrinks but never invents members.
    assert set(live) <= set(overlay.mesh)
