"""Tests for the wide-area deployment (§4.1's WAN variant)."""

import pytest

pytestmark = pytest.mark.slow

from repro.metrics import client_flow_failure_fraction
from repro.testbed.wan import build_wan_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def test_construction_shape():
    dep = build_wan_deployment(sites=3)
    assert len(dep.pops) == 3
    assert len(dep.mesh_vswitches) == 3
    assert dep.overlay.assignment["pop0"] == ["wmv0", "wmv1"]
    # Remote PoPs are controlled across the WAN.
    assert dep.pops[1].channel.latency > dep.pops[0].channel.latency


def test_minimum_sites_enforced():
    with pytest.raises(ValueError):
        build_wan_deployment(sites=1)


def test_wan_paths_carry_wan_delay():
    dep = build_wan_deployment(sites=3, wan_delay=10e-3)
    path = dep.network.shortest_path("pop0", "pop1")
    assert dep.network.path_delay(path) >= 10e-3


def test_scotch_protects_across_wan():
    """Activation and overlay detour still work when every control and
    tunnel leg includes ~10 ms of WAN latency — only slower."""
    dep = build_wan_deployment(sites=3, seed=2)
    sim = dep.sim
    target = dep.servers[1].ip  # a *remote* site's server
    client = NewFlowSource(sim, dep.client, target, rate_fps=50.0)
    attack = SpoofedFlood(sim, dep.attacker, target, rate_fps=2000.0)
    client.start(at=0.5, stop_at=18.0)
    attack.start(at=2.0, stop_at=18.0)
    sim.run(until=20.0)
    assert dep.scotch.activations >= 1
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[1].recv_tap, start=6.0, end=16.0
    )
    assert failure < 0.05


def test_cross_site_overlay_delivery():
    dep = build_wan_deployment(sites=4, seed=3)
    sim = dep.sim
    target = dep.servers[3].ip
    attack = SpoofedFlood(sim, dep.attacker, target, rate_fps=1500.0)
    attack.start(at=0.5, stop_at=10.0)
    sim.run(until=12.0)
    # Flows entered at site 0 and were delivered at site 3 via the
    # overlay (local mesh vSwitch of the destination site).
    assert dep.servers[3].recv_tap.total_packets > 2000
    counts = dep.scotch.flow_db.counts()
    assert counts.get("overlay", 0) > counts.get("physical", 0)
