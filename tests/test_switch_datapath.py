"""Tests for the data-plane pipeline."""

import pytest

from repro.net.flow import FlowKey
from repro.net.packet import MplsHeader, Packet
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import (
    Controller,
    Drop,
    GotoTable,
    Group,
    Output,
    PopMpls,
    PushMpls,
    SetGreKey,
    PopGre,
)
from repro.switch.datapath import INGRESS_BUFFER, MISS_DROP
from repro.switch.group_table import Bucket, GroupEntry
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH, PICA8_PRONTO_3780
from repro.switch.switch import PhysicalSwitch
from repro.net.host import Host

KEY = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)


def build(profile=IDEAL_SWITCH):
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "sw", profile))
    host = net.add(Host(sim, "h", "2.2.2.2"))
    net.link("sw", "h")
    return sim, net, sw, host


def packet_for(key=KEY):
    return Packet(key.src_ip, key.dst_ip, proto=key.proto,
                  src_port=key.src_port, dst_port=key.dst_port)


def test_miss_punts_to_controller_by_default():
    sim, net, sw, host = build()
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.punted == 1


def test_miss_drop_policy():
    sim, net, sw, host = build()
    sw.datapath.miss_policy = MISS_DROP
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.punted == 0
    assert sw.datapath.dropped_policy == 1


def test_output_action_forwards():
    sim, net, sw, host = build()
    out = net.port_between("sw", "h")
    sw.install_static(Match.for_flow(KEY), 100, [Output(out)])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert host.recv_tap.total_packets == 1


def test_goto_table_continues_pipeline():
    sim, net, sw, host = build()
    out = net.port_between("sw", "h")
    sw.install_static(Match.any(), 1, [GotoTable(2)], table_id=0)
    sw.install_static(Match.for_flow(KEY), 1, [Output(out)], table_id=2)
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert host.recv_tap.total_packets == 1


def test_goto_loop_detected():
    sim, net, sw, host = build()
    sw.install_static(Match.any(), 1, [GotoTable(1)], table_id=0)
    sw.install_static(Match.any(), 1, [GotoTable(0)], table_id=1)
    sw.receive(packet_for(), in_port=1)
    with pytest.raises(RuntimeError):
        sim.run()


def test_push_pop_mpls_actions():
    sim, net, sw, host = build()
    out = net.port_between("sw", "h")
    sw.install_static(Match.for_flow(KEY), 100, [PushMpls(42), Output(out)])
    packet = packet_for()
    sw.receive(packet, in_port=1)
    sim.run()
    # The host strips encapsulation, but records pops are visible via tap.
    assert host.recv_tap.total_packets == 1


def test_pop_mpls_records_label():
    sim, net, sw, host = build()
    sw.install_static(Match(mpls_label=42), 100, [PopMpls(), GotoTable(1)])
    packet = packet_for()
    packet.push(MplsHeader(42))
    sw.receive(packet, in_port=1)
    sim.run()
    assert packet.popped_labels == [42]
    assert sw.datapath.punted == 1  # continued to table 1, missed


def test_gre_push_pop():
    sim, net, sw, host = build()
    out = net.port_between("sw", "h")
    sw.install_static(Match.for_flow(KEY), 100, [SetGreKey(7), Output(out)])
    packet = packet_for()
    sw.receive(packet, in_port=1)
    sim.run()
    assert host.recv_tap.total_packets == 1


def test_drop_action():
    sim, net, sw, host = build()
    sw.install_static(Match.any(), 1, [Drop()])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.dropped_policy == 1


def test_controller_action_punts():
    sim, net, sw, host = build()
    sw.install_static(Match.any(), 1, [Controller(reason="custom")])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.punted == 1


def test_group_action_executes_bucket():
    sim, net, sw, host = build()
    out = net.port_between("sw", "h")
    sw.add_static_group(GroupEntry(1, "select", [Bucket([PushMpls(5), Output(out)])]))
    sw.install_static(Match.any(), 1, [Group(1)])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert host.recv_tap.total_packets == 1
    group = sw.datapath.groups.get(1)
    assert group.buckets[0].packets == 1


def test_missing_group_drops():
    sim, net, sw, host = build()
    sw.install_static(Match.any(), 1, [Group(99)])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.dropped_no_route == 1


def test_output_to_missing_port_drops():
    sim, net, sw, host = build()
    sw.install_static(Match.any(), 1, [Output(250)])
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.dropped_no_route == 1


def test_ingress_buffer_overflow_drops():
    sim, net, sw, host = build(profile=PICA8_PRONTO_3780.variant(datapath_pps=1.0))
    for _ in range(INGRESS_BUFFER + 50):
        sw.receive(packet_for(), in_port=1)
    assert sw.datapath.dropped_no_buffer >= 49


def test_dead_switch_ignores_traffic():
    sim, net, sw, host = build()
    sw.fail()
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.processed == 0
    sw.recover()
    sw.receive(packet_for(), in_port=1)
    sim.run()
    assert sw.datapath.processed == 1


def test_forwarding_budget_paces_throughput():
    sim, net, sw, host = build(profile=IDEAL_SWITCH.variant(datapath_pps=10.0))
    out = net.port_between("sw", "h")
    sw.install_static(Match.for_flow(KEY), 100, [Output(out)])
    for _ in range(5):
        sw.receive(packet_for(), in_port=1)
    sim.run()
    # 5 packets at 10 pps -> last leaves the pipeline at ~0.5 s.
    assert sim.now >= 0.5


def test_hop_recorded():
    sim, net, sw, host = build()
    packet = packet_for()
    sw.receive(packet, in_port=1)
    sim.run()
    assert "sw" in packet.hops
