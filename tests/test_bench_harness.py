"""The benchmark harness's warn-only perf-regression gate."""

import importlib.util
import json
import os

import pytest

_HARNESS_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "_harness.py")
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)


def _payload(name, median, samples=None):
    return {
        "bench": name,
        "wall_seconds": {"median": median,
                         "samples": samples or [median],
                         "p95": median, "min": median, "max": median,
                         "repeats": 1, "warmup": 0},
        "workload": {},
        "peak_rss_mib": 100.0,
        "python": "3.11.0",
        "platform": "test",
    }


def _write(directory, payload):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{payload['bench']}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def test_compare_bench_flags_regressions_only():
    base = _payload("x", 1.0)
    assert harness.compare_bench(base, _payload("x", 1.30))["flag"] == "WARN"
    ok = harness.compare_bench(base, _payload("x", 1.20))
    assert ok["flag"] == "ok" and ok["delta"] == pytest.approx(0.20)
    # Improvements are never flagged.
    assert harness.compare_bench(base, _payload("x", 0.5))["flag"] == "ok"
    # Nothing to compare: no baseline, or baseline == fresh.
    assert harness.compare_bench(None, _payload("x", 1.0)) is None
    assert harness.compare_bench(base, base) is None


def test_compare_bench_honors_threshold():
    base = _payload("x", 1.0)
    row = harness.compare_bench(base, _payload("x", 1.1), threshold=0.05)
    assert row["flag"] == "WARN"


def test_diff_baselines_walks_fresh_dir(tmp_path):
    baseline_dir = str(tmp_path / "baseline")
    fresh_dir = str(tmp_path / "fresh")
    _write(baseline_dir, _payload("fast", 1.0))
    _write(fresh_dir, _payload("fast", 2.0))       # 100% slower: WARN
    _write(fresh_dir, _payload("added", 0.5))      # no baseline: new
    (tmp_path / "fresh" / "notes.txt").write_text("ignored")
    rows = harness.diff_baselines(fresh_dir, baseline_dir)
    by_bench = {row["bench"]: row for row in rows}
    assert by_bench["fast"]["flag"] == "WARN"
    assert by_bench["fast"]["delta"] == pytest.approx(1.0)
    assert by_bench["added"]["flag"] == "new"
    assert by_bench["added"]["delta"] is None
    table = harness.format_delta_table(rows)
    assert "WARN" in table and "new" in table and "+100.0%" in table


def test_main_is_warn_only(tmp_path, capsys):
    baseline_dir = str(tmp_path / "baseline")
    fresh_dir = str(tmp_path / "fresh")
    _write(baseline_dir, _payload("slow", 1.0))
    _write(fresh_dir, _payload("slow", 9.0))
    assert harness.main(["--fresh", fresh_dir, "--baseline",
                         baseline_dir]) == 0
    out = capsys.readouterr().out
    assert "WARN" in out and "regressed beyond 25%" in out
    # Empty fresh dirs are fine too.
    empty = str(tmp_path / "empty")
    os.makedirs(empty)
    assert harness.main(["--fresh", empty]) == 0
    assert "no fresh BENCH_" in capsys.readouterr().out


def test_emit_bench_respects_repro_bench_dir(tmp_path, monkeypatch):
    out_dir = str(tmp_path / "redirect")
    monkeypatch.setenv("REPRO_BENCH_DIR", out_dir)
    timing = harness.measure(lambda: None, repeats=1)
    path = harness.emit_bench("redirect_probe", timing)
    assert path == os.path.join(out_dir, "BENCH_redirect_probe.json")
    assert harness.load_bench(path)["bench"] == "redirect_probe"
