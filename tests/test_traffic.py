"""Tests for workload generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.traffic.attack import SpoofedFlood
from repro.traffic.generators import NewFlowSource, flow_key_sequence
from repro.traffic.sizes import FixedSize, HeavyTailedSizes


def build_host_pair():
    sim = Simulator(seed=1)
    net = Network(sim)
    a = net.add(Host(sim, "a", "10.20.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.100"))
    net.link("a", "b", rate_bps=1e9)
    return sim, a, b


class TestFlowKeySequence:
    def test_unique_over_many_draws(self):
        gen = flow_key_sequence("10.0.0.100")
        keys = [next(gen) for _ in range(100_000)]
        assert len(set(keys)) == len(keys)

    def test_destination_fixed(self):
        gen = flow_key_sequence("10.0.0.100", dst_port=443)
        for _ in range(10):
            key = next(gen)
            assert key.dst_ip == "10.0.0.100"
            assert key.dst_port == 443

    def test_source_net_prefix(self):
        gen = flow_key_sequence("10.0.0.100", src_net=33)
        assert next(gen).src_ip.startswith("10.33.")


class TestNewFlowSource:
    def test_rate_respected(self):
        sim, a, b = build_host_pair()
        source = NewFlowSource(sim, a, "10.0.0.100", rate_fps=100.0)
        source.start(at=0.0, stop_at=2.0)
        sim.run(until=3.0)
        assert 180 <= source.flows_started <= 220

    def test_flows_reach_destination(self):
        sim, a, b = build_host_pair()
        source = NewFlowSource(sim, a, "10.0.0.100", rate_fps=50.0)
        source.start(at=0.0, stop_at=1.0)
        sim.run(until=2.0)
        assert len(b.recv_tap.received_flow_keys()) == source.flows_started

    def test_poisson_mode_randomizes_gaps(self):
        sim, a, b = build_host_pair()
        source = NewFlowSource(sim, a, "10.0.0.100", rate_fps=100.0, poisson=True)
        source.start(at=0.0, stop_at=2.0)
        sim.run(until=3.0)
        assert 120 <= source.flows_started <= 280

    def test_stop_halts_generation(self):
        sim, a, b = build_host_pair()
        source = NewFlowSource(sim, a, "10.0.0.100", rate_fps=100.0)
        source.start(at=0.0)
        sim.schedule(0.5, source.stop)
        sim.run(until=2.0)
        assert source.flows_started <= 60

    def test_validation(self):
        sim, a, b = build_host_pair()
        with pytest.raises(ValueError):
            NewFlowSource(sim, a, "x", rate_fps=0)
        with pytest.raises(ValueError):
            NewFlowSource(sim, a, "x", rate_fps=1, jitter=1.5)


class TestSpoofedFlood:
    def test_every_packet_is_a_new_flow(self):
        sim, a, b = build_host_pair()
        flood = SpoofedFlood(sim, a, "10.0.0.100", rate_fps=500.0)
        flood.start(at=0.0, stop_at=1.0)
        sim.run(until=2.0)
        keys = b.recv_tap.received_flow_keys()
        assert len(keys) == flood.packets_sent
        assert all(k.dst_ip == "10.0.0.100" for k in keys)

    def test_sources_spoofed_outside_lab_space(self):
        sim, a, b = build_host_pair()
        flood = SpoofedFlood(sim, a, "10.0.0.100", rate_fps=100.0)
        flood.start(at=0.0, stop_at=0.5)
        sim.run(until=1.0)
        assert all(not k.src_ip.startswith("10.20.") for k in b.recv_tap.received_flow_keys())

    def test_rate_change_applies(self):
        sim, a, b = build_host_pair()
        flood = SpoofedFlood(sim, a, "10.0.0.100", rate_fps=10.0)
        flood.start(at=0.0, stop_at=2.0)
        sim.schedule(1.0, flood.set_rate, 1000.0)
        sim.run(until=3.0)
        assert flood.packets_sent > 500

    def test_syn_packets_small(self):
        sim, a, b = build_host_pair()
        sizes = []
        b.on_receive = lambda p: sizes.append(p.size)
        flood = SpoofedFlood(sim, a, "10.0.0.100", rate_fps=50.0)
        flood.start(at=0.0, stop_at=0.2)
        sim.run(until=1.0)
        assert all(s == 60 for s in sizes)


class TestSizes:
    def test_fixed_size(self):
        sample = FixedSize(size_packets=3, packet_size=100).sample(random.Random(1))
        assert sample.size_packets == 3
        assert sample.packet_size == 100

    def test_heavy_tail_mice_majority(self):
        rng = random.Random(2)
        sizes = HeavyTailedSizes(elephant_fraction=0.05)
        samples = [sizes.sample(rng) for _ in range(2000)]
        elephants = [s for s in samples if s.is_elephant]
        assert 0.02 < len(elephants) / len(samples) < 0.09

    def test_heavy_tail_elephants_carry_most_bytes(self):
        """The §5.3 premise: few flows, most bytes."""
        rng = random.Random(3)
        sizes = HeavyTailedSizes()
        samples = [sizes.sample(rng) for _ in range(5000)]
        total = sum(s.size_packets for s in samples)
        elephant_bytes = sum(s.size_packets for s in samples if s.is_elephant)
        assert elephant_bytes / total > 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyTailedSizes(elephant_fraction=1.5)
        with pytest.raises(ValueError):
            HeavyTailedSizes(pareto_alpha=1.0)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_valid(self, seed):
        sample = HeavyTailedSizes().sample(random.Random(seed))
        assert sample.size_packets >= 1
        assert sample.rate_pps > 0
