"""Tests for bounded queues and the round-robin scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.queues import BoundedQueue, QueueFullError, RoundRobinScheduler


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue()
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_tail_takes_newest(self):
        q = BoundedQueue()
        for i in range(5):
            q.push(i)
        assert q.pop_tail() == 4
        assert q.pop() == 0

    def test_capacity_enforced(self):
        q = BoundedQueue(capacity=2)
        q.push(1)
        q.push(2)
        with pytest.raises(QueueFullError):
            q.push(3)
        assert q.dropped == 1

    def test_offer_returns_false_when_full(self):
        q = BoundedQueue(capacity=1)
        assert q.offer("a") is True
        assert q.offer("b") is False
        assert q.dropped == 1
        assert q.enqueued == 1

    def test_unbounded_by_default(self):
        q = BoundedQueue()
        for i in range(10_000):
            q.push(i)
        assert len(q) == 10_000
        assert not q.full

    def test_zero_capacity_drops_everything(self):
        q = BoundedQueue(capacity=0)
        assert q.offer("x") is False

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=-1)

    def test_peek_and_clear(self):
        q = BoundedQueue()
        q.push("a")
        q.push("b")
        assert q.peek() == "a"
        q.clear()
        assert len(q) == 0

    def test_bool(self):
        q = BoundedQueue()
        assert not q
        q.push(1)
        assert q

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=10))
    def test_never_exceeds_capacity(self, items, capacity):
        q = BoundedQueue(capacity=capacity)
        for item in items:
            q.offer(item)
        assert len(q) <= capacity
        assert q.enqueued + q.dropped == len(items)


class TestRoundRobinScheduler:
    def _make(self, n):
        rr = RoundRobinScheduler()
        queues = {}
        for key in range(n):
            queues[key] = BoundedQueue()
            rr.add_queue(key, queues[key])
        return rr, queues

    def test_duplicate_key_rejected(self):
        rr, _ = self._make(1)
        with pytest.raises(ValueError):
            rr.add_queue(0, BoundedQueue())

    def test_select_none_when_all_empty(self):
        rr, _ = self._make(3)
        assert rr.select() is None
        assert rr.pop_next() is None

    def test_round_robin_rotation(self):
        rr, queues = self._make(3)
        for key in range(3):
            for i in range(2):
                queues[key].push(f"{key}.{i}")
        served = [rr.pop_next()[0] for _ in range(6)]
        assert served == [0, 1, 2, 0, 1, 2]

    def test_skips_empty_queues(self):
        rr, queues = self._make(3)
        queues[1].push("only")
        key, item = rr.pop_next()
        assert (key, item) == (1, "only")

    def test_fair_share_under_asymmetric_load(self):
        # One flooded queue must not starve the others.
        rr, queues = self._make(2)
        for i in range(100):
            queues[0].push(i)
        queues[1].push("legit-1")
        queues[1].push("legit-2")
        served = [rr.pop_next()[0] for _ in range(4)]
        assert served.count(1) == 2

    def test_total_backlog(self):
        rr, queues = self._make(2)
        queues[0].push(1)
        queues[1].push(2)
        queues[1].push(3)
        assert rr.total_backlog() == 3

    def test_rotation_resumes_after_last_served(self):
        rr, queues = self._make(3)
        queues[0].push("a")
        assert rr.pop_next()[0] == 0
        queues[0].push("b")
        queues[2].push("c")
        # After serving 0, the rotation prefers 1, then 2, then 0.
        assert rr.pop_next()[0] == 2
        assert rr.pop_next()[0] == 0

    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=60))
    def test_conservation(self, arrivals):
        """Everything pushed is eventually served exactly once."""
        rr, queues = self._make(5)
        pushed = []
        for index, key in enumerate(arrivals):
            queues[key].push((key, index))
            pushed.append((key, index))
        served = []
        while True:
            popped = rr.pop_next()
            if popped is None:
                break
            served.append(popped[1])
        assert sorted(served) == sorted(pushed)
