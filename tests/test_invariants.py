"""System-level invariants, including randomized-topology properties."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.controller.controller import OpenFlowController
from repro.controller.reactive_app import ReactiveForwardingApp
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def test_no_forwarding_loops_under_scotch():
    """No delivered packet visits any node more than a small constant
    number of times, even with overlay detours and middlebox legs."""
    dep = build_deployment(seed=81, with_firewall=True)
    sim = dep.sim
    max_revisits = []

    for server in dep.servers:
        def on_rx(packet):
            counts = {}
            for hop in packet.hops:
                counts[hop] = counts.get(hop, 0) + 1
            max_revisits.append(max(counts.values()))
        server.on_receive = on_rx

    flood = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=1800.0)
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=80.0)
    flood.start(at=0.5, stop_at=10.0)
    client.start(at=0.5, stop_at=10.0)
    sim.run(until=12.0)
    assert max_revisits
    # A node may legitimately appear several times — e.g. a ToR carries
    # the switch->entry tunnel, the entry->S_U tunnel, the S_D->agg
    # tunnel, and the delivery tunnel of one middlebox-chained overlay
    # route (4 transits) — but the count is bounded by the fixed number
    # of tunnel legs, never unbounded (a loop would explode it).
    assert max(max_revisits) <= 5


def test_packet_conservation():
    """The server never receives more packets of a flow than were sent
    (no duplication from reinjection/buffering)."""
    dep = build_deployment(seed=82)
    sim = dep.sim
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=100.0)
    flood = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    client.start(at=0.5, stop_at=10.0)
    flood.start(at=0.5, stop_at=10.0)
    sim.run(until=14.0)
    recv = dep.servers[0].recv_tap
    for key, sent_record in dep.client.sent_tap.records.items():
        got = recv.flow(key)
        if got is not None:
            assert got.packets_received <= sent_record.packets_sent


def test_controller_rate_never_exceeds_install_budget():
    """FlowMods actually sent toward a managed switch respect ~R
    (plus the direct first-hop installs, also paced by the service)."""
    dep = build_deployment(seed=83)
    sim = dep.sim
    flood = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=3000.0)
    flood.start(at=0.5, stop_at=10.0)
    sim.run(until=10.5)
    duration = 10.0
    for name in ("spine", "tor0", "tor1"):
        scheduler = dep.scotch.schedulers[name]
        assert scheduler.mods_sent <= 200 * duration * 1.15


@st.composite
def tree_topology(draw):
    """A random tree of 2-5 switches with 2-4 hosts on random switches."""
    n_switches = draw(st.integers(min_value=2, max_value=5))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n_switches)]
    n_hosts = draw(st.integers(min_value=2, max_value=4))
    attachments = [draw(st.integers(min_value=0, max_value=n_switches - 1))
                   for _ in range(n_hosts)]
    return parents, attachments


@given(tree_topology(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reactive_forwarding_delivers_on_any_tree(topology, sport):
    """Property: on any tree topology of ideal switches, a reactive
    controller delivers a multi-packet flow between any two hosts."""
    parents, attachments = topology
    sim = Simulator(seed=7)
    net = Network(sim)
    controller = OpenFlowController(sim, net)
    for index in range(len(parents) + 1):
        switch = net.add(PhysicalSwitch(sim, f"s{index}", IDEAL_SWITCH))
        controller.register_switch(switch)
    for child, parent in enumerate(parents, start=1):
        net.link(f"s{child}", f"s{parent}")
    hosts = []
    for index, attach in enumerate(attachments):
        host = net.add(Host(sim, f"h{index}", f"10.0.0.{index + 1}"))
        net.link(host.name, f"s{attach}")
        hosts.append(host)
    controller.add_app(ReactiveForwardingApp())

    src, dst = hosts[0], hosts[-1]
    if src.ip == dst.ip:
        return
    key = FlowKey(src.ip, dst.ip, 6, 1024 + sport % 60000, 80)
    src.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=8, rate_pps=50.0))
    sim.run(until=2.0)
    record = dst.recv_tap.flow(key)
    assert record is not None
    assert record.packets_received >= 6  # early packets may race the rules
